#!/usr/bin/env python
"""Compare selecting strategies and deciding policies on one workload.

Run:  python examples/strategy_comparison.py

The accelerator's selecting function (which peer to ask for AV) and
deciding function (how much to ask/grant) are pluggable. This example
replays one frozen trace through every combination the library ships
and prints the cost matrix — the data behind the paper's §3.4 remark
that each site "has its own strategy" and our ablation benches.
"""

from repro.cluster import DistributedSystem, paper_config
from repro.core.policies import ExactPolicy, GrantAllPolicy, Soda99Policy
from repro.core.strategies import (
    BelievedRichestStrategy,
    RandomStrategy,
    RoundRobinStrategy,
)
from repro.core.types import UPDATE_TAGS
from repro.experiments import make_paper_trace, run_counted
from repro.metrics.report import text_table

N_UPDATES, N_ITEMS, SEED = 800, 10, 5
trace = make_paper_trace(N_UPDATES, SEED, n_items=N_ITEMS)

strategies = {
    "believed-richest": lambda name, rngs: BelievedRichestStrategy(),
    "round-robin": lambda name, rngs: RoundRobinStrategy(),
    "random": lambda name, rngs: RandomStrategy(rngs.stream(f"{name}.sel")),
}
policies = {
    "soda99-half": lambda name, rngs: Soda99Policy(),
    "grant-all": lambda name, rngs: GrantAllPolicy(),
    "exact": lambda name, rngs: ExactPolicy(),
}

rows = []
for strat_label, strat_factory in strategies.items():
    for pol_label, pol_factory in policies.items():
        system = DistributedSystem.build(
            paper_config(n_items=N_ITEMS, seed=SEED),
            strategy_factory=strat_factory,
            policy_factory=pol_factory,
        )
        run = run_counted(
            system, trace, f"{strat_label}/{pol_label}",
            checkpoints=[N_UPDATES],
        )
        committed = sum(1 for r in run.results if r.committed)
        local = sum(1 for r in run.results if r.local_only)
        rows.append([
            strat_label,
            pol_label,
            run.final().total_correspondences,
            f"{local / len(run.results):.1%}",
            f"{committed / len(run.results):.1%}",
        ])

print(
    text_table(
        ["selecting", "deciding", "correspondences", "local", "committed"],
        rows,
        title=f"Strategy × policy cost matrix ({N_UPDATES} updates, seed {SEED})",
    )
)
print(
    "\nThe paper's pair (believed-richest + soda99-half) minimises"
    "\ncorrespondences while keeping every update committed."
)
