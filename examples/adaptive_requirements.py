#!/usr/bin/env python
"""Adapting to changing requirements at runtime.

Run:  python examples/adaptive_requirements.py

The paper's abstract promises "adaptation to unpredictable user
requirements". This example plays a season of it:

  1. `gadget` launches as a made-to-order (non-regular) product — every
     sale runs the globally-consistent Immediate protocol.
  2. It goes viral. The maker reclassifies it to regular: stock headroom
     is split into Allowable Volume and sales drop to the local,
     zero-message Delay path. A proactive rebalancer streams freshly
     manufactured AV toward the busy retailers.
  3. A recall notice makes precise global counts mandatory again: the
     item is reclassified back, replicas are reconciled to the exact
     ground truth in the same operation.
"""

from repro.cluster import build_paper_system
from repro.core import AVRebalancer
from repro.core.types import UPDATE_TAGS

system = build_paper_system(
    n_items=1, initial_stock=400.0, regular_fraction=0.0, seed=13
)
ITEM = "item0"
rng = system.rngs.stream("demand")


def phase_cost(label, fn):
    """Run a demand phase, print its per-update correspondence cost."""
    before = system.stats.correspondences_for_tags(UPDATE_TAGS)
    count = fn()
    after = system.stats.correspondences_for_tags(UPDATE_TAGS)
    print(f"  {label:<42} {(after - before) / count:5.2f} corr/update")


def sales(n):
    def run():
        def driver(env):
            for i in range(n):
                site = f"site{(i % 2) + 1}"
                qty = -float(rng.integers(1, 5))
                result = yield system.update(site, ITEM, qty)
                assert result.committed
            result = yield system.update("site0", ITEM, +120.0)  # restock
            assert result.committed

        proc = system.env.process(driver(system.env))
        # run *until the driver finishes* — the rebalancer daemon keeps
        # the event queue alive forever, so an unbounded run would hang.
        system.run(until=proc)
        return n + 1

    return run


print("Phase 1 — made to order (Immediate Updates everywhere)")
phase_cost("40 sales + 1 restock", sales(40))

print("\n*** gadget goes viral: reclassify to regular ***")
proc = system.maker.accelerator.make_regular(ITEM)
system.run(until=proc)
print(f"  AV split installed: { {s: int(v) for s, v in proc.value.items()} }")

rebalancer = AVRebalancer(
    system.maker.accelerator, interval=25.0,
    surplus_factor=1.2, needy_factor=0.9,
)
rebalancer.start()

print("\nPhase 2 — stocked product (Delay Updates, AV circulating)")
phase_cost("40 sales + 1 restock", sales(40))

print("\n*** recall notice: reclassify back to non-regular ***")
rebalancer.stop()
proc = system.maker.accelerator.make_non_regular(ITEM)
system.run(until=proc)
print(f"  replicas reconciled to exactly {proc.value:g} units")
for name, site in system.sites.items():
    assert site.value(ITEM) == proc.value

print("\nPhase 3 — recall handling (Immediate again)")
phase_cost("40 precise decrements + 1 restock", sales(40))

system.check_invariants()
print("\ninvariants OK;", system.stats)
