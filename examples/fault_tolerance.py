#!/usr/bin/env python
"""Fault tolerance: retailers keep selling through a maker outage.

Run:  python examples/fault_tolerance.py

The paper's §2 motivation: a centralized system dies with its server,
while the autonomous approach lets every site keep updating locally.
Here we crash the maker for a window mid-run and watch the retailers:
Delay Updates covered by local AV keep committing; only the updates
that need an AV transfer from the dead maker fail (with a timeout),
and everything recovers when the maker returns.
"""

from repro.cluster import build_paper_system
from repro.metrics.availability import AvailabilityTracker
from repro.workload import PaperWorkload, run_open, split_by_site
from repro.workload.trace import WorkloadTrace

FAULT_START, FAULT_END = 300.0, 900.0

system = build_paper_system(
    n_items=8,
    initial_stock=150.0,
    seed=3,
    request_timeout=10.0,  # AV requests to a dead maker must not hang
)
config = system.config

workload = PaperWorkload(
    maker=config.maker,
    retailers=config.retailers,
    items=system.catalog.items(),
    initial_stock=config.initial_stock,
    rng=system.rngs.stream("workload"),
)
trace = WorkloadTrace.capture(workload, 600)
tracker = AvailabilityTracker(FAULT_START, FAULT_END)


def crash_the_maker(env):
    yield env.timeout(FAULT_START)
    print(f"[t={env.now:6.1f}] *** maker crashes ***")
    system.network.faults.crash(config.maker)
    yield env.timeout(FAULT_END - FAULT_START)
    system.network.faults.recover(config.maker)
    print(f"[t={env.now:6.1f}] *** maker recovers ***")


system.env.process(crash_the_maker(system.env))
run_open(
    system,
    split_by_site(trace),
    interarrival=5.0,
    on_complete=lambda i, e, r: tracker.record(r),
)

print("\nAvailability (fraction of attempted updates that committed)")
print(f"fault window: t in [{FAULT_START:g}, {FAULT_END:g}]\n")
header = f"{'site':8} {'normal':>8} {'in fault':>9}"
print(header)
print("-" * len(header))
for site in config.site_names:
    normal = tracker.availability(site, False)
    fault = tracker.availability(site, True)
    attempted = tracker.stats(site, True).attempted
    note = "(crashed, no demand)" if site == config.maker else f"({attempted} attempts)"
    print(f"{site:8} {normal:8.1%} {fault:9.1%}  {note}")

print(
    "\nA centralized deployment scores 0% for every site during the"
    "\noutage — compare: python -m repro faults"
)
