#!/usr/bin/env python
"""Supply-chain scenario: the paper's §1.1 SCM actors end to end.

Run:  python examples/scm_supply_chain.py

A maker manufactures in periodic batches while three retailers serve
Zipf-skewed customer demand. Regular products ship from stock via Delay
Updates (real-time, usually zero messages); non-regular products are
made to order via Immediate Updates (globally consistent). The run
reports the business outcome — service level, lost sales — next to the
systems numbers — correspondences and local-completion ratio.
"""

from repro.cluster import build_paper_system
from repro.metrics.report import text_table
from repro.workload import SCMSimulation

# 3 retailers, 20 products; 80% regular, the rest made to order.
system = build_paper_system(
    n_retailers=3,
    n_items=20,
    initial_stock=200.0,
    regular_fraction=0.8,
    seed=11,
)

sim = SCMSimulation(
    system,
    mean_interarrival=4.0,   # one customer order every ~4 time units/retailer
    maker_interval=8.0,      # manufacturing batches
    max_quantity=6,
    zipf_skew=1.4,           # skewed demand: a few hot products
    replenish=True,          # §1.1: out-of-stock retailers order from the maker
)

HORIZON = 2000.0
outcome = sim.run(until=HORIZON)

print(f"Simulated {HORIZON:g} time units\n")
print(
    text_table(
        ["retailer", "served", "lost", "service level", "units sold",
         "backorders filled"],
        [
            [site, rep.served, rep.lost, f"{rep.service_level:.1%}",
             rep.revenue_units, rep.backorders_filled]
            for site, rep in sorted(outcome.retailer_reports.items())
        ],
        title="Business outcome",
    )
)
print(f"\nmaker manufactured: {sim.maker_agent.manufactured_units:g} units")
print(f"overall service level: {outcome.service_level:.1%}")

print("\nSystems outcome")
print(f"  update correspondences: {outcome.correspondences:g}")
print(f"  delay updates completed locally: {outcome.local_ratio:.1%}")
print(f"  messages by protocol: {dict(system.stats.by_tag)}")

system.check_invariants()
print("  invariants: OK")
