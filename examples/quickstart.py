#!/usr/bin/env python
"""Quickstart: build the paper's 3-site system and watch AV at work.

Run:  python examples/quickstart.py

Walks through the core ideas in ~40 lines of user code:
  * a maker (site0, the base) and two retailers share a replicated
    stock database;
  * each site holds an Allowable Volume (AV) per item — its budget for
    autonomous local decrements;
  * updates covered by local AV complete with ZERO network messages;
  * when a retailer runs dry it pulls AV from the believed-richest peer
    (one request/reply correspondence), exactly the paper's mechanism.
"""

from repro.cluster import build_paper_system

system = build_paper_system(n_items=3, initial_stock=90.0, seed=7)
ITEM = "item0"

print("Initial state")
print(f"  stock({ITEM}) everywhere: {system.maker.value(ITEM):g}")
for name, site in system.sites.items():
    print(f"  AV at {name}: {site.av_table.get(ITEM):g}")


def scenario(env):
    # A retailer ships 10 units: covered by its own AV -> purely local.
    result = yield system.update("site1", ITEM, -10)
    print(f"\n1) {result}")
    print(f"   site1 AV now {system.site('site1').av_table.get(ITEM):g},"
          f" messages so far: {system.stats.sent_total}")

    # A big order exceeds site1's remaining AV -> it requests a transfer
    # from the peer it believes richest, then completes.
    result = yield system.update("site1", ITEM, -25)
    print(f"\n2) {result}")
    print(f"   AV requests: {result.av_requests},"
          f" obtained: {result.av_obtained:g},"
          f" messages so far: {system.stats.sent_total}")

    # The maker manufactures 30 units: local apply + AV minting.
    result = yield system.update("site0", ITEM, +30)
    print(f"\n3) {result}")
    print(f"   site0 AV now {system.site('site0').av_table.get(ITEM):g}")


system.env.process(scenario(system.env))
system.run()

print("\nFinal accounting")
print(f"  ground-truth stock({ITEM}): "
      f"{system.collector.ledger.true_value(ITEM):g}")
print(f"  AV summed over sites:      {system.av_total(ITEM):g}")
print(f"  total correspondences:     "
      f"{system.stats.correspondences_total:g}  (2 messages = 1)")
system.check_invariants()
print("  invariants: OK")
