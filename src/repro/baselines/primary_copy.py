"""All-immediate baseline: primary-copy locking for *every* item.

What the integrated system would do without the AV mechanism while still
being decentralized: treat every product as non-regular, so each update
runs the full Immediate Update protocol (``2(n-1)`` correspondences per
update for ``n`` sites — even worse than centralized for ``n > 2``).
Contrasting this against both the proposal and the centralized baseline
shows that the saving comes from the AV mechanism itself, not merely
from decentralisation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.cluster.config import SystemConfig
from repro.cluster.system import DistributedSystem


def build_all_immediate_system(
    config: Optional[SystemConfig] = None,
) -> DistributedSystem:
    """A :class:`DistributedSystem` whose catalogue is all non-regular.

    Identical topology and workload surface to the proposal; only the
    checking function's verdict differs (no AV entry ⇒ Immediate).
    """
    config = config if config is not None else SystemConfig()
    return DistributedSystem.build(replace(config, regular_fraction=0.0))
