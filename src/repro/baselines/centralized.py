"""The conventional centralized baseline (the paper's Fig. 6 "conventional").

Sites hold no update authority: every update — wherever it originates —
is a request/reply round trip to a central database server, i.e. exactly
**one correspondence per update**, growing linearly. This is the
"centralized approach" the paper's §1 criticises for fault-tolerance,
real-time and flexibility, and the line its Fig. 6 compares against.

:class:`CentralizedSystem` exposes the same driving surface as
:class:`~repro.cluster.system.DistributedSystem` (``env``, ``update``,
``run``, ``stats``, ``collector``, ``rngs``, ``sites``) so workload
drivers and the experiment harness treat both uniformly.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.catalog import ProductCatalog, make_catalog
from repro.cluster.config import SystemConfig
from repro.core.types import (
    TAG_CENTRAL,
    UpdateKind,
    UpdateOutcome,
    UpdateRequest,
    UpdateResult,
)
from repro.core.columns import make_store, resolve_kernel
from repro.db.transaction import TransactionManager
from repro.metrics.collector import MetricsCollector
from repro.net.endpoint import CrashedEndpointError, Endpoint, RequestTimeout
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.engine import Environment
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.tracing import NullTracer, Tracer

#: endpoint name of the central database server
CENTER = "center"


class CentralClient:
    """A site in the centralized deployment: no local authority."""

    def __init__(self, system: "CentralizedSystem", endpoint: Endpoint) -> None:
        self.system = system
        self.endpoint = endpoint
        self.env = endpoint.env
        # Read-only replica, refreshed only when the server replicates.
        self.store = make_store(endpoint.name, kernel=system.kernel)
        endpoint.on("central.replicate", self._handle_replicate)
        from itertools import count as _count

        self._req_ids = _count(1)

    @property
    def name(self) -> str:
        return self.endpoint.name

    @property
    def crashed(self) -> bool:
        return self.endpoint.crashed

    def _handle_replicate(self, msg) -> None:
        self.store.apply_delta(
            msg.payload["item"], msg.payload["delta"], now=self.env.now, force=True
        )

    def update(self, item: str, delta: float) -> Process:
        req = UpdateRequest(
            site=self.name,
            item=item,
            delta=delta,
            issued_at=self.env.now,
            request_id=next(self._req_ids),
        )
        # Id-based name: str(req) costs a float render per update and
        # the name is only read by reprs and error messages.
        return self.env.process(
            self._run(req), name=f"{self.name}.upd#{req.request_id}"
        )

    def _run(self, req: UpdateRequest):
        try:
            reply = yield self.endpoint.request(
                CENTER,
                "central.update",
                {"item": req.item, "delta": req.delta},
                tag=TAG_CENTRAL,
                timeout=self.system.request_timeout,
            )
        except (RequestTimeout, CrashedEndpointError):
            outcome = UpdateOutcome.FAILED
        else:
            outcome = (
                UpdateOutcome.COMMITTED
                if reply["committed"]
                else UpdateOutcome.REJECTED
            )
        result = UpdateResult(
            request=req,
            kind=UpdateKind.IMMEDIATE,  # every update is globally synchronous
            outcome=outcome,
            local_only=False,
            finished_at=self.env.now,
        )
        self.system.collector.record(result)
        return result


class CentralServer:
    """The central database server endpoint."""

    def __init__(self, system: "CentralizedSystem", endpoint: Endpoint) -> None:
        self.system = system
        self.endpoint = endpoint
        self.store = make_store(CENTER, kernel=system.kernel)
        self.txns = TransactionManager(
            self.store, clock=lambda: endpoint.env.now
        )
        endpoint.on("central.update", self._handle_update)

    def _handle_update(self, msg) -> dict:
        item, delta = msg.payload["item"], msg.payload["delta"]
        if self.store.value(item) + delta < 0:
            return {"committed": False}
        self.txns.apply_atomic(item, delta)
        if self.system.replicate:
            for client in self.system.clients.values():
                self.endpoint.send(
                    client.name,
                    "central.replicate",
                    {"item": item, "delta": delta},
                    tag=TAG_CENTRAL,
                )
        return {"committed": True}


class CentralizedSystem:
    """Fully assembled centralized deployment.

    Parameters
    ----------
    config:
        Reuses :class:`SystemConfig` for topology/catalogue/latency/seed.
    replicate:
        When ``True`` the server pushes every committed delta to all
        clients (keeps their read replicas fresh at extra message cost).
        The paper's conventional line corresponds to ``False`` (clients
        read through the server).
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        catalog: Optional[ProductCatalog] = None,
        replicate: bool = False,
        request_timeout: Optional[float] = None,
    ) -> None:
        self.config = config if config is not None else SystemConfig()
        #: resolved hot-state kernel (matches the proposal system's)
        self.kernel = resolve_kernel(self.config.kernel)
        self.replicate = replicate
        self.request_timeout = request_timeout
        self.env = Environment()
        self.rngs = RngRegistry(self.config.seed)
        self.tracer: Tracer = Tracer() if self.config.trace else NullTracer()
        from repro.net.sizes import SizeModel

        self.network = Network(
            self.env,
            latency=ConstantLatency(self.config.latency_mean),
            rng=self.rngs.stream("net.latency"),
            tracer=self.tracer,
            size_model=SizeModel() if self.config.count_bytes else None,
        )
        self.catalog = (
            catalog
            if catalog is not None
            else make_catalog(
                self.config.n_items,
                initial_stock=self.config.initial_stock,
                regular_fraction=self.config.regular_fraction,
            )
        )
        self.collector = MetricsCollector()

        self.server = CentralServer(self, self.network.endpoint(CENTER))
        self.clients: Dict[str, CentralClient] = {
            name: CentralClient(self, self.network.endpoint(name))
            for name in self.config.site_names
        }
        #: drivers expect a ``sites`` mapping with ``.crashed``
        self.sites = self.clients

        for product in self.catalog:
            self.collector.ledger.set_initial(product.item, product.initial_stock)
            self.server.store.insert(product.item, product.initial_stock)
            for client in self.clients.values():
                client.store.insert(product.item, product.initial_stock)

    @property
    def stats(self):
        return self.network.stats

    def update(self, site: str, item: str, delta: float) -> Process:
        return self.clients[site].update(item, delta)

    def run(self, until=None):
        return self.env.run(until=until)

    def __repr__(self) -> str:
        return (
            f"<CentralizedSystem clients={len(self.clients)}"
            f" replicate={self.replicate}>"
        )
