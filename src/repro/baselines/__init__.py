"""Baselines: centralized (the paper's "conventional"), all-immediate, escrow."""

from repro.baselines.centralized import (
    CENTER,
    CentralClient,
    CentralizedSystem,
    CentralServer,
)
from repro.baselines.escrow import build_static_escrow_system
from repro.baselines.primary_copy import build_all_immediate_system

__all__ = [
    "CENTER",
    "CentralClient",
    "CentralServer",
    "CentralizedSystem",
    "build_all_immediate_system",
    "build_static_escrow_system",
]
