"""Static escrow baseline: AV without circulation (ablation D).

Classic escrow (O'Neil-style) partitions the headroom once; a site that
exhausts its share must reject updates even while peers sit on unused
volume. The paper's contribution over static escrow is precisely the
autonomous *circulation* of AV — this baseline isolates that delta: same
checking function, same local fast path, but the selecting/deciding
machinery is disabled.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.cluster.config import SystemConfig
from repro.cluster.system import DistributedSystem


def build_static_escrow_system(
    config: Optional[SystemConfig] = None,
) -> DistributedSystem:
    """A :class:`DistributedSystem` with AV transfers disabled."""
    config = config if config is not None else SystemConfig()
    return DistributedSystem.build(replace(config, allow_transfers=False))
