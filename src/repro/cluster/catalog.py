"""Product catalogue: items, their class, and initial stock.

The paper's SCM model (§1.1) distinguishes **regular** products (stocked
at retailers; Delay Update) from **non-regular** products (made to
order; Immediate Update). "The classification between regular and
non-regular products is known" (§3.2) — the catalogue *is* that shared
knowledge, identical at every site.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List


class ProductClass(enum.Enum):
    REGULAR = "regular"
    NON_REGULAR = "non-regular"


@dataclass(frozen=True, slots=True)
class Product:
    """One catalogue entry."""

    item: str
    product_class: ProductClass
    initial_stock: float

    @property
    def regular(self) -> bool:
        return self.product_class is ProductClass.REGULAR


class ProductCatalog:
    """Ordered, immutable-after-build collection of products."""

    def __init__(self) -> None:
        self._products: Dict[str, Product] = {}

    def add(self, product: Product) -> None:
        if product.item in self._products:
            raise ValueError(f"duplicate product {product.item!r}")
        if product.initial_stock < 0:
            raise ValueError(f"negative initial stock for {product.item!r}")
        self._products[product.item] = product

    def get(self, item: str) -> Product:
        return self._products[item]

    def __contains__(self, item: str) -> bool:
        return item in self._products

    def __len__(self) -> int:
        return len(self._products)

    def __iter__(self) -> Iterator[Product]:
        return iter(self._products.values())

    def items(self) -> List[str]:
        return list(self._products)

    def regular_items(self) -> List[str]:
        return [p.item for p in self if p.regular]

    def non_regular_items(self) -> List[str]:
        return [p.item for p in self if not p.regular]

    def __repr__(self) -> str:
        return (
            f"<ProductCatalog {len(self)} products,"
            f" {len(self.regular_items())} regular>"
        )


def make_catalog(
    n_items: int,
    initial_stock: float = 100.0,
    regular_fraction: float = 1.0,
    prefix: str = "item",
) -> ProductCatalog:
    """Build a uniform catalogue.

    The first ``round(n_items * regular_fraction)`` items are regular
    (deterministic, so experiments are reproducible by construction).
    The paper's Fig. 6 simulation uses only Delay Updates, i.e.
    ``regular_fraction=1.0``; the immediate/delay-mix ablation sweeps it.
    """
    if n_items <= 0:
        raise ValueError(f"n_items must be positive, got {n_items}")
    if not 0.0 <= regular_fraction <= 1.0:
        raise ValueError(f"regular_fraction {regular_fraction} not in [0, 1]")
    catalog = ProductCatalog()
    n_regular = round(n_items * regular_fraction)
    width = len(str(n_items - 1))
    for i in range(n_items):
        cls = ProductClass.REGULAR if i < n_regular else ProductClass.NON_REGULAR
        catalog.add(
            Product(
                item=f"{prefix}{i:0{width}d}",
                product_class=cls,
                initial_stock=initial_stock,
            )
        )
    return catalog
