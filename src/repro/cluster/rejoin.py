"""Crash-recovery rejoin: anti-entropy before accepting new updates.

Only active when the robustness layer is on
(:class:`~repro.cluster.config.SystemConfig` ``reliability``). A
recovering :class:`~repro.cluster.site.Site` first repairs its local
store (WAL compensation — done synchronously in ``Site.restart``), then
runs the rejoin round as a process while a **gate** on the accelerator
holds new updates back:

1. resolve in-doubt 2PC participants (termination protocol);
2. catch up on Immediate Updates committed while we were down;
3. replay lease acks for transfers we received but may not have acked;
4. push our own retained propagation balances to the live peers;
5. ask each live peer to **flush** what it owes us (``prop.flush`` —
   the per-peer owed ledger retained our balances while we were
   unreachable);
6. reconcile our AV catalogue against the base site (``av.catalog``):
   define items that went regular while we were down, undefine ones
   that went non-regular, and refresh beliefs from the base's levels.

The gate then opens. A site that crashes again mid-rejoin abandons the
round — the next restart runs a fresh one — and the gate opens so
blocked updates can fail fast instead of hanging on a dead site.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.endpoint import CrashedEndpointError, RequestTimeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.site import Site

#: message tag for rejoin control traffic (flush/catalog round-trips);
#: never counted as update traffic. Canonically declared in the
#: protocol registry.
from repro.net.protocol import TAG_REJOIN  # noqa: F401

#: bounded attempts for each flush/catalog request — a peer that stays
#: silent is skipped (its balances arrive when *it* next syncs/rejoins)
FLUSH_ATTEMPTS = 3


def install_rejoin_handlers(site: "Site") -> None:
    """Register the serving side of the rejoin protocol on a site."""
    accel = site.accelerator

    def handle_flush(msg):
        """A recovered peer asks for everything we owe it."""
        pushed = accel.sync_to(msg.src)
        return {"pushed": pushed}

    def handle_catalog(msg):
        """Serve our AV catalogue (the base's is authoritative)."""
        levels = dict(sorted(accel.av_table.items()))
        return {"items": sorted(levels), "levels": levels}

    accel.endpoint.on("prop.flush", handle_flush)
    accel.endpoint.on("av.catalog", handle_catalog)


def rejoin(site: "Site"):
    """Generator driving one rejoin round (spawned by ``Site.restart``).

    ``Site.restart`` sets ``accel._rejoin_gate`` *before* spawning this
    process so no update can slip in between; this generator owns the
    gate and always opens it on the way out.
    """
    accel = site.accelerator
    env = site.env
    gate = accel._rejoin_gate
    timeout = accel.reliability.ack_timeout
    try:
        # In-doubt txns MUST resolve before any snapshot pull: a
        # post-pull abort compensation would corrupt the fresh value.
        resolutions = accel.immediate.resolve_pending()
        if resolutions:
            yield env.all_of(resolutions)
        yield from accel.immediate.catch_up()

        # Transfers we applied before dying may never have been acked;
        # replaying the acks discharges the grantors' leases (idempotent
        # for leases a probe already discharged).
        if accel.leases is not None:
            accel.leases.re_ack()

        # Share what we committed before dying, then pull what the live
        # peers retained for us while we were unreachable. Only peers
        # sharing an item with us can owe anything (partial replication).
        accel.sync_all()
        for peer in sorted(accel.live_neighbors()):
            for _attempt in range(FLUSH_ATTEMPTS):
                try:
                    flushed = yield accel.endpoint.request(
                        peer, "prop.flush", {}, tag=TAG_REJOIN, timeout=timeout
                    )
                    if flushed["pushed"]:
                        accel.trace(
                            "rejoin.flush",
                            f"{peer} replayed {flushed['pushed']} update(s)",
                        )
                    break
                except RequestTimeout:
                    continue

        # Catalogue reconciliation against the base: reclassifications
        # that completed while we were down must be folded in before we
        # classify new updates.
        if accel.site != accel.base_site and not site.endpoint.network.faults.is_crashed(accel.base_site):
            reply = None
            for _attempt in range(FLUSH_ATTEMPTS):
                try:
                    reply = yield accel.endpoint.request(
                        accel.base_site, "av.catalog", {},
                        tag=TAG_REJOIN, timeout=timeout,
                    )
                    break
                except RequestTimeout:
                    continue
            if reply is not None:
                # The base's catalogue is authoritative but covers the
                # whole universe; we fold in only our own slice — a site
                # must never define (or believe about) an item outside
                # its interest set.
                base_items = {
                    i for i in reply["items"] if accel.serves_item(i)
                }
                mine = {item for item, _volume in accel.av_table.items()}
                for item in sorted(base_items - mine):
                    # Went regular while we were down: start managing it
                    # with zero AV (transfers refill on demand).
                    accel.av_table.define(item, 0.0)
                demoted = sorted(mine - base_items)
                for item in demoted:
                    accel.av_table.undefine(item)
                    accel.clear_owed_item(item)
                if demoted:
                    # Newly non-regular items need the primary-copy
                    # value; the earlier catch-up skipped them because
                    # they still looked regular here.
                    yield from accel.immediate.catch_up()
                for item in sorted(base_items):
                    accel.beliefs.observe(
                        accel.base_site, item, reply["levels"][item], env.now
                    )
        accel.trace("rejoin.done", f"{accel.site} rejoined")
    except CrashedEndpointError:
        # Crashed again mid-rejoin: abandon; the next restart runs a
        # fresh round over whatever state this one reached.
        accel.trace("rejoin.abort", f"{accel.site} crashed mid-rejoin")
    finally:
        if accel._rejoin_gate is gate:
            accel._rejoin_gate = None
        if not gate.triggered:
            gate.succeed()
