"""Initial data delivery (paper §3.2).

"All data are assumed to be delivered to all the sites initially from
the base." We model that assumption directly: bootstrap installs the
catalogue into every site's store, defines AV entries for regular items,
splits the AV pool according to the configured weights, and seeds every
site's belief table with the initial allocation (each site knows the
split it was dealt). Bootstrap is setup, not protocol — it sends no
messages, matching the paper's accounting, which counts only
correspondences *for update*.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.cluster.catalog import ProductCatalog
from repro.metrics.collector import GlobalLedger


def split_volume(
    total: float, weights: Dict[str, float], order: Sequence[str]
) -> Dict[str, float]:
    """Split ``total`` across sites proportionally to ``weights``.

    Integral totals stay integral: each site gets the floor of its share
    and the leftover units go to the earliest sites in ``order`` (the
    base site first, by convention), so ``sum(result) == total`` exactly.
    """
    if total < 0:
        raise ValueError(f"negative total {total}")
    missing = [s for s in order if s not in weights]
    if missing:
        raise ValueError(f"no AV weight for sites {missing}")
    weight_sum = sum(weights[s] for s in order)
    if weight_sum <= 0:
        raise ValueError("AV weights must sum to a positive value")

    if not float(total).is_integer():
        return {s: total * weights[s] / weight_sum for s in order}

    shares = {s: math.floor(total * weights[s] / weight_sum) for s in order}
    leftover = int(total) - sum(shares.values())
    for site in order:
        if leftover <= 0:
            break
        shares[site] += 1
        leftover -= 1
    return {s: float(v) for s, v in shares.items()}


def bootstrap(
    sites,  # Dict[str, Site]; untyped to avoid an import cycle
    catalog: ProductCatalog,
    ledger: GlobalLedger,
    av_fraction: float = 1.0,
    av_weights: Dict[str, float] | None = None,
    base: str | None = None,
    topology=None,  # Optional[Topology]
) -> None:
    """Install catalogue data, AV allocation and initial beliefs.

    Parameters
    ----------
    sites:
        ``{name: Site}`` for every participant.
    catalog:
        The shared product catalogue.
    ledger:
        Receives every item's initial (ground-truth) value.
    av_fraction:
        Fraction of each regular item's initial stock distributed as AV.
    av_weights:
        Relative share per site; equal when omitted.
    base:
        Name of the base site (gets leftover units first); defaults to
        the first site.
    topology:
        Partial-replication shape: each item is installed, AV-split and
        belief-seeded only across its interest set (base first, then
        aggregators, then leaves — so leftover units pool upward).
        ``None`` delivers everything to every site, as the paper assumes.
    """
    names = list(sites)
    if base is None:
        base = names[0]
    weights = av_weights if av_weights is not None else {n: 1.0 for n in names}

    for product in catalog:
        ledger.set_initial(product.item, product.initial_stock)
        interested = (
            list(topology.sites_for(product.item))
            if topology is not None else names
        )
        for name in interested:
            sites[name].store.insert(product.item, product.initial_stock)

        if not product.regular:
            continue

        order = [base] + [n for n in interested if n != base]
        pool = product.initial_stock * av_fraction
        if float(product.initial_stock).is_integer():
            pool = float(math.floor(pool))
        shares = split_volume(pool, weights, order)
        for name in interested:
            sites[name].av_table.define(product.item, shares[name])
        # The interest set knows the initial deal (it came from the base).
        for name in interested:
            beliefs = sites[name].accelerator.beliefs
            for peer, share in shares.items():
                if peer != name:
                    beliefs.observe(peer, product.item, share, now=0.0)
