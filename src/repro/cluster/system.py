"""System assembly: the paper's Fig. 2 model as one object.

:class:`DistributedSystem` wires the environment, network, sites
(maker + retailers), accelerators, catalogue, bootstrap and metrics into
a ready-to-run simulation, and exposes the invariant checks the property
tests rely on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cluster.bootstrap import bootstrap
from repro.cluster.catalog import ProductCatalog, make_catalog
from repro.cluster.config import SystemConfig
from repro.cluster.site import Site, SiteRole
from repro.core.accelerator import Accelerator
from repro.core.policies import DecidingPolicy
from repro.core.strategies import SelectionStrategy
from repro.db.snapshot import stores_equal
from repro.metrics.collector import MetricsCollector
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.obs.hub import NULL_OBS, Observability
from repro.sim.engine import Environment
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.tracing import NullTracer, Tracer

StrategyFactory = Callable[[str, RngRegistry], SelectionStrategy]
PolicyFactory = Callable[[str, RngRegistry], DecidingPolicy]


class InvariantViolation(AssertionError):
    """An AV-conservation or consistency invariant failed."""


class DistributedSystem:
    """A fully wired simulated deployment."""

    def __init__(
        self,
        config: SystemConfig,
        env: Environment,
        network: Network,
        rngs: RngRegistry,
        tracer: Tracer,
        catalog: ProductCatalog,
        sites: Dict[str, Site],
        collector: MetricsCollector,
        obs: Optional[Observability] = None,
    ) -> None:
        self.config = config
        self.env = env
        self.network = network
        self.rngs = rngs
        self.tracer = tracer
        self.catalog = catalog
        self.sites = sites
        self.collector = collector
        #: the run's observability hub (NULL_OBS when config.observe off)
        self.obs = obs if obs is not None else NULL_OBS
        #: the runtime sanitizer (set by build() when config.sanitize)
        self.sanitizer = None

    # ---------------------------------------------------------------- #
    # construction
    # ---------------------------------------------------------------- #

    @classmethod
    def build(
        cls,
        config: Optional[SystemConfig] = None,
        catalog: Optional[ProductCatalog] = None,
        strategy_factory: Optional[StrategyFactory] = None,
        policy_factory: Optional[PolicyFactory] = None,
    ) -> "DistributedSystem":
        """Assemble a system from configuration.

        ``strategy_factory`` / ``policy_factory`` produce per-site
        instances (strategies may be stateful); omitted, every site uses
        the paper's believed-richest / SODA'99 pair.
        """
        config = config if config is not None else SystemConfig()
        env = Environment()
        rngs = RngRegistry(config.seed)
        tracer = Tracer() if config.trace else NullTracer()
        from repro.net.sizes import SizeModel

        network = Network(
            env,
            latency=ConstantLatency(config.latency_mean),
            rng=rngs.stream("net.latency"),
            tracer=tracer,
            size_model=SizeModel() if config.count_bytes else None,
        )
        if catalog is None:
            catalog = make_catalog(
                config.n_items,
                initial_stock=config.initial_stock,
                regular_fraction=config.regular_fraction,
            )
        # NULL_OBS is a shared singleton, so the collector must only be
        # handed the registry of a run-private (enabled) hub — otherwise
        # every unobserved run would accumulate into one global registry.
        # The sanitizer subscribes to the hub's event bus, so it too
        # needs a run-private hub (possibly with recording disabled).
        if config.observe:
            obs = Observability(enabled=True)
        elif config.sanitize:
            obs = Observability(enabled=False)
        else:
            obs = NULL_OBS
        collector = MetricsCollector(
            registry=obs.registry if config.observe else None
        )

        topology = config.topology
        if topology is not None:
            catalog_items = [p.item for p in catalog]
            if list(topology.items) != catalog_items:
                raise ValueError(
                    "topology item universe does not match the catalogue"
                    f" ({len(topology.items)} vs {len(catalog_items)} items)"
                )

        from repro.core.columns import make_store, resolve_kernel

        kernel = resolve_kernel(config.kernel)
        sites: Dict[str, Site] = {}
        for name in config.site_names:
            endpoint = network.endpoint(name)
            store = make_store(name, kernel=kernel)
            accel = Accelerator(
                endpoint,
                store,
                base_site=config.maker,
                strategy=(
                    strategy_factory(name, rngs) if strategy_factory else None
                ),
                policy=(policy_factory(name, rngs) if policy_factory else None),
                rng=rngs.stream(f"{name}.protocol"),
                tracer=tracer,
                obs=obs,
                propagate=config.propagate,
                request_timeout=config.request_timeout,
                max_rounds=config.max_rounds,
                max_immediate_retries=config.max_immediate_retries,
                allow_transfers=config.allow_transfers,
                reliability=config.reliability,
                inject=config.inject,
                overload=config.overload,
                interest=topology.view(name) if topology is not None else None,
                kernel=kernel,
            )
            if kernel == "columnar":
                # Interest-set slicing: pre-size the site's columns to
                # exactly its catalogue slice so bootstrap never
                # reallocates mid-load (full replication = whole
                # catalogue; a topology = the site's interest set).
                n_slice = (
                    len(topology.view(name).items)
                    if topology is not None else len(catalog)
                )
                store.reserve(n_slice)
                accel.av_table.reserve(n_slice)
            if topology is not None:
                role = SiteRole(topology.role_of(name))
            else:
                role = (
                    SiteRole.MAKER if name == config.maker
                    else SiteRole.RETAILER
                )
            sites[name] = Site(endpoint, store, accel, role, collector)
            if config.reliability is not None:
                from repro.cluster.rejoin import install_rejoin_handlers

                install_rejoin_handlers(sites[name])

        bootstrap(
            sites,
            catalog,
            collector.ledger,
            av_fraction=config.av_fraction,
            av_weights=config.av_weights,
            base=config.maker,
            topology=topology,
        )
        system = cls(
            config, env, network, rngs, tracer, catalog, sites, collector,
            obs=obs,
        )
        if config.sanitize:
            # Attach after bootstrap so the sanitizer baselines from the
            # settled AV allocation.
            from repro.analysis.sanitizer import ProtocolSanitizer

            system.sanitizer = ProtocolSanitizer().attach(system)
        return system

    # ---------------------------------------------------------------- #
    # access
    # ---------------------------------------------------------------- #

    @property
    def maker(self) -> Site:
        return self.sites[self.config.maker]

    @property
    def retailers(self) -> List[Site]:
        return [self.sites[n] for n in self.config.retailers]

    def site(self, name: str) -> Site:
        return self.sites[name]

    @property
    def stats(self):
        """The network's message/correspondence counters."""
        return self.network.stats

    # ---------------------------------------------------------------- #
    # driving
    # ---------------------------------------------------------------- #

    def update(self, site: str, item: str, delta: float) -> Process:
        """Issue one update at ``site``."""
        return self.sites[site].update(item, delta)

    def run(self, until=None):
        """Run the simulation (see :meth:`Environment.run`)."""
        return self.env.run(until=until)

    # ---------------------------------------------------------------- #
    # invariants (property-tested; see DESIGN.md §7)
    # ---------------------------------------------------------------- #

    def av_total(self, item: str) -> float:
        """AV for ``item`` summed over all sites (transfers conserve it)."""
        return sum(
            s.av_table.get(item)
            for s in self.sites.values()
            if s.av_table.defined(item)
        )

    def interested_sites(self, item: str) -> List[Site]:
        """The sites replicating ``item`` — everyone without a topology,
        the item's interest set with one."""
        topology = self.config.topology
        if topology is None:
            return list(self.sites.values())
        return [self.sites[n] for n in topology.sites_for(item)]

    def check_invariants(self, quiescent: bool = False) -> None:
        """Raise :class:`InvariantViolation` on any broken invariant.

        ``quiescent=True`` additionally requires replica convergence —
        only valid when propagation is enabled and the event queue has
        drained.
        """
        ledger = self.collector.ledger
        eps = 1e-6
        for item in ledger.items():
            true_value = ledger.true_value(item)
            if true_value < -eps:
                raise InvariantViolation(
                    f"ground-truth value of {item!r} is negative: {true_value}"
                )
            # Class is defined by AV-entry existence (the checking
            # function's source of truth) — the static catalogue can be
            # superseded by dynamic reclassification. The item's interest
            # set must agree on the class (sites outside it never hold
            # the item at all).
            replicas = self.interested_sites(item)
            definedness = {s.av_table.defined(item) for s in replicas}
            if len(definedness) != 1:
                raise InvariantViolation(
                    f"sites disagree on whether {item!r} is regular"
                )
            regular = definedness.pop()
            if regular:
                total_av = self.av_total(item)
                for site in replicas:
                    av = site.av_table.get(item)
                    if av < -eps:
                        raise InvariantViolation(
                            f"{site.name} holds negative AV for {item!r}: {av}"
                        )
                if total_av > true_value + eps:
                    raise InvariantViolation(
                        f"AV total {total_av} exceeds true value"
                        f" {true_value} for {item!r}"
                    )
            else:
                # Non-regular items are kept globally consistent by the
                # Immediate Update protocol: all replicas identical.
                values = {s.store.value(item) for s in replicas}
                if len(values) != 1:
                    raise InvariantViolation(
                        f"non-regular item {item!r} diverged: {values}"
                    )

        if quiescent:
            if self.config.topology is None:
                stores = [s.store for s in self.sites.values()]
                for other in stores[1:]:
                    if not stores_equal(stores[0], other):
                        raise InvariantViolation(
                            f"replicas {stores[0].name} and {other.name}"
                            " diverged at quiescence"
                        )
                for item in ledger.items():
                    replica = stores[0].value(item)
                    if abs(replica - ledger.true_value(item)) > eps:
                        raise InvariantViolation(
                            f"converged replica value {replica} != ledger"
                            f" {ledger.true_value(item)} for {item!r}"
                        )
            else:
                # Partial replication: convergence is promised per item
                # across its interest set, against the ledger.
                for item in ledger.items():
                    truth = ledger.true_value(item)
                    for site in self.interested_sites(item):
                        replica = site.store.value(item)
                        if abs(replica - truth) > eps:
                            raise InvariantViolation(
                                f"replica {site.name} value {replica} !="
                                f" ledger {truth} for {item!r} at quiescence"
                            )

    def __repr__(self) -> str:
        return (
            f"<DistributedSystem sites={len(self.sites)}"
            f" items={len(self.catalog)} t={self.env.now:g}>"
        )
