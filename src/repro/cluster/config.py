"""System configuration.

One :class:`SystemConfig` fully determines a simulated system (given a
seed): topology, catalogue shape, AV allocation, latency, and protocol
knobs. The defaults reproduce the paper's §4 setup: one maker (site 0,
the base) plus two retailers, 100 items, all regular, AV split equally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.topology import Topology
from repro.core.overload import OverloadParams
from repro.net.reliable import ReliabilityParams


@dataclass
class SystemConfig:
    """Everything needed to assemble a :class:`DistributedSystem`.

    Attributes
    ----------
    n_retailers:
        Number of retailer sites (the maker/base is always ``site0``).
    n_items, initial_stock, regular_fraction:
        Catalogue shape (see :func:`repro.cluster.catalog.make_catalog`).
    av_fraction:
        Fraction of each item's initial stock turned into allowable
        volume at bootstrap (1.0 = all headroom distributed).
    av_weights:
        Relative AV share per site name; defaults to equal shares.
    latency_mean:
        One-way message latency (constant model). Experiments that need
        other models construct the network themselves.
    seed:
        Root seed for every RNG stream in the run.
    propagate:
        Asynchronously push committed Delay deltas to peers.
    request_timeout:
        AV-request timeout (``None`` = wait forever; set for fault runs).
    max_rounds, max_immediate_retries:
        Protocol retry bounds (see :class:`~repro.core.accelerator.Accelerator`).
    trace:
        Record a structured event trace (costs memory; on for debugging
        and the determinism tests).
    """

    n_retailers: int = 2
    n_items: int = 100
    initial_stock: float = 100.0
    regular_fraction: float = 1.0
    av_fraction: float = 1.0
    av_weights: Optional[Dict[str, float]] = None
    latency_mean: float = 1.0
    seed: int = 0
    propagate: bool = False
    request_timeout: Optional[float] = None
    max_rounds: int = 8
    max_immediate_retries: int = 10
    #: False = static escrow ablation (no AV circulation)
    allow_transfers: bool = True
    trace: bool = False
    #: install a SizeModel so NetworkStats also counts wire bytes
    count_bytes: bool = False
    #: record causal spans + metric registry (repro.obs); off by default
    #: so unobserved runs pay only null-recorder calls
    observe: bool = False
    #: attach the runtime protocol sanitizer (repro.analysis): audits AV
    #: conservation, hold lifecycle, lock order/deadlock and belief
    #: staleness on every event. Off by default — each hook site then
    #: costs one ``is None`` check
    sanitize: bool = False
    #: robustness layer (repro.net.reliable + repro.core.leases +
    #: crash-recovery rejoin). ``None`` keeps the seed's honest-loss
    #: behaviour; a ReliabilityParams turns on reliable propagation,
    #: AV grant leases, and rejoin-gated recovery at every site
    reliability: Optional[ReliabilityParams] = None
    #: overload robustness layer (repro.core.overload): admission
    #: control + backpressure budgets, a 2PC circuit breaker, and the
    #: NORMAL→STRAINED→DEGRADED→RECOVERING degradation state machine.
    #: ``None`` keeps the seed's unbounded behaviour byte-identical
    overload: Optional[OverloadParams] = None
    #: TEST-ONLY: name of a deliberately broken protocol variant, used
    #: by the fuzz harness to validate that its oracles actually catch
    #: planted bugs. ``"av-double-grant"`` makes every grantor ship AV
    #: without deducting it from its own table (the volume then exists
    #: twice). Empty string = correct protocol. Never set in
    #: experiments; see repro.testkit.
    inject: str = ""
    #: declarative N-site deployment shape (roles, region tree, per-item
    #: interest sets; see :mod:`repro.cluster.topology`). ``None`` keeps
    #: the paper's flat maker+retailers layout byte-identical; a
    #: Topology overrides ``n_retailers`` and must cover exactly
    #: ``n_items`` catalogue items
    topology: Optional[Topology] = None
    #: hot-state kernel: ``"columnar"`` (struct-of-arrays columns, the
    #: default) or ``"object"`` (per-item dict/object tables, the
    #: original core kept as the differential-testing reference).
    #: ``None`` defers to the ``REPRO_KERNEL`` env var, then the
    #: default — see :func:`repro.core.columns.resolve_kernel`. Both
    #: kernels are byte-identical by contract
    #: (tests/test_kernel_differential.py)
    kernel: Optional[str] = None

    #: names the fuzz harness accepts for ``inject``.
    #: ``"av-double-grant"`` — grantor ships AV without deducting it;
    #: ``"col-alias"`` — columnar AV grants land one slot over
    #: (columnar kernel only; a no-op on the object kernel)
    KNOWN_INJECTIONS = ("av-double-grant", "col-alias")

    def __post_init__(self) -> None:
        if self.n_retailers < 1:
            raise ValueError("need at least one retailer")
        if self.kernel is not None:
            from repro.core.columns import KERNELS

            if self.kernel not in KERNELS:
                raise ValueError(
                    f"unknown kernel {self.kernel!r};"
                    f" choose from {KERNELS}"
                )
        if self.topology is not None and len(self.topology.items) != self.n_items:
            raise ValueError(
                f"topology covers {len(self.topology.items)} items but"
                f" n_items={self.n_items}"
            )
        if self.inject and self.inject not in self.KNOWN_INJECTIONS:
            raise ValueError(
                f"unknown injection {self.inject!r};"
                f" choose from {self.KNOWN_INJECTIONS}"
            )
        if not 0.0 <= self.av_fraction <= 1.0:
            raise ValueError(f"av_fraction {self.av_fraction} not in [0, 1]")
        if self.latency_mean < 0:
            raise ValueError("negative latency")

    @property
    def n_sites(self) -> int:
        if self.topology is not None:
            return self.topology.n_sites
        return self.n_retailers + 1

    @property
    def site_names(self) -> list[str]:
        """``site0`` (maker/base) then ``site1..siteN`` (retailers);
        with a topology, its deployment order (maker first)."""
        if self.topology is not None:
            return self.topology.names
        return [f"site{i}" for i in range(self.n_sites)]

    @property
    def maker(self) -> str:
        if self.topology is not None:
            return self.topology.maker
        return "site0"

    @property
    def retailers(self) -> list[str]:
        """Every non-maker site (aggregators included, when present);
        use ``topology.leaves`` for just the user-facing sites."""
        return self.site_names[1:]


def paper_config(**overrides) -> SystemConfig:
    """The §4 simulation configuration, with keyword overrides."""
    return SystemConfig(**overrides)
