"""A site: local DB + accelerator + network endpoint (paper Fig. 2)."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.core.accelerator import Accelerator
from repro.core.types import UpdateResult
from repro.db.storage import Store
from repro.net.endpoint import Endpoint
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collector import MetricsCollector


class SiteRole(enum.Enum):
    MAKER = "maker"
    #: regional AV pool in a hierarchical topology: holds AV on behalf
    #: of its subtree and re-grants downward; no user traffic
    AGGREGATOR = "aggregator"
    RETAILER = "retailer"


class Site:
    """One participant in the distributed database.

    Thin composition object: owns the store, the endpoint and the
    accelerator, and reports finished updates to the shared collector.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        store: Store,
        accelerator: Accelerator,
        role: SiteRole,
        collector: Optional["MetricsCollector"] = None,
    ) -> None:
        self.endpoint = endpoint
        self.store = store
        self.accelerator = accelerator
        self.role = role
        self.collector = collector
        self.env = endpoint.env

    @property
    def name(self) -> str:
        return self.endpoint.name

    @property
    def is_maker(self) -> bool:
        return self.role is SiteRole.MAKER

    @property
    def av_table(self):
        return self.accelerator.av_table

    @property
    def crashed(self) -> bool:
        return self.endpoint.crashed

    def update(self, item: str, delta: float) -> Process:
        """Issue an update; the returned process yields an UpdateResult."""
        proc = self.accelerator.update(item, delta)
        if self.collector is not None:
            proc.callbacks.append(self._record)
        return proc

    def _record(self, event) -> None:
        if event.ok and isinstance(event.value, UpdateResult):
            self.collector.record(event.value)

    def value(self, item: str) -> float:
        """The site's current replica value for ``item``."""
        return self.store.value(item)

    def restart(self):
        """Recover this site after a crash.

        Brings the endpoint back, then repairs local state exactly as a
        restarting database would:

        * WAL recovery compensates every in-flight transaction — except
          in-doubt 2PC participants, which stay prepared;
        * each in-doubt participant runs the 2PC termination protocol:
          it queries the token's coordinator for the logged decision and
          commits or aborts accordingly (spawned as processes; they
          retry while the coordinator itself is down — textbook 2PC
          blocking, surfaced rather than hidden);
        * pending lazy-sync balances are pushed so peers catch up on
          what this site committed before the crash.

        With the robustness layer on (``accelerator.reliability``), the
        whole post-WAL sequence instead runs as the gated **rejoin**
        round (:mod:`repro.cluster.rejoin`): in-doubt resolution,
        immediate catch-up, lease re-acks, a push of retained balances,
        a pull of everything live peers owe us, and AV-catalogue
        reconciliation against the base — new updates wait at the gate
        until the round completes.

        Returns the :class:`~repro.db.recovery.RecoveryReport`.
        """
        from repro.db.recovery import recover

        accel = self.accelerator
        self.endpoint.network.faults.recover(self.name)

        in_doubt = frozenset(
            txn.txn_id for txn, _item in accel.immediate._pending.values()
        )
        report = recover(
            self.store, accel.txns.wal, now=self.env.now, exclude=in_doubt
        )
        if accel.overload is not None:
            # Our peer-degradation map is stale by a whole outage; ask
            # every live peer where it stands before steering AV asks.
            self.env.process(
                accel.overload.probe_peers(), name=f"{self.name}.ovl.probe"
            )
        if accel.reliability is not None:
            from repro.cluster.rejoin import rejoin
            from repro.sim.events import Event

            # Close the gate before the process is spawned so no update
            # issued this very step can slip past the rejoin round.
            accel._rejoin_gate = Event(self.env)
            self.env.process(rejoin(self), name=f"{self.name}.rejoin")
            return report

        def sequence(env):
            # In-doubt txns MUST resolve before the snapshot pull: a
            # post-pull abort compensation would corrupt the fresh value.
            resolutions = accel.immediate.resolve_pending()
            if resolutions:
                yield env.all_of(resolutions)
            # Catch up on Immediate Updates that committed among the
            # live members while we were down (re-delivery from the
            # base, §3.2).
            yield from accel.immediate.catch_up()

        self.env.process(sequence(self.env), name=f"{self.name}.restart")

        # Share what we committed before dying.
        accel.sync_all()
        return report

    def __repr__(self) -> str:
        return f"<Site {self.name!r} role={self.role.value}>"
