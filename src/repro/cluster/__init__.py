"""Cluster assembly: sites, catalogue, configuration, bootstrap, system."""

from repro.cluster.bootstrap import bootstrap, split_volume
from repro.cluster.catalog import (
    Product,
    ProductCatalog,
    ProductClass,
    make_catalog,
)
from repro.cluster.config import SystemConfig, paper_config
from repro.cluster.rejoin import TAG_REJOIN, install_rejoin_handlers, rejoin
from repro.cluster.site import Site, SiteRole
from repro.cluster.system import DistributedSystem, InvariantViolation
from repro.cluster.topology import InterestView, SiteSpec, Topology


def build_paper_system(**overrides) -> DistributedSystem:
    """One-liner for the paper's §4 deployment (3 sites, 100 items)."""
    return DistributedSystem.build(paper_config(**overrides))


__all__ = [
    "DistributedSystem",
    "InterestView",
    "InvariantViolation",
    "Product",
    "ProductCatalog",
    "ProductClass",
    "Site",
    "SiteRole",
    "SiteSpec",
    "SystemConfig",
    "TAG_REJOIN",
    "Topology",
    "bootstrap",
    "build_paper_system",
    "install_rejoin_handlers",
    "make_catalog",
    "paper_config",
    "rejoin",
    "split_volume",
]
