"""Declarative N-site topologies: roles, region tree, interest sets.

The paper's §4 deployment is one maker plus two fully-replicated
retailers. A :class:`Topology` generalises that shape declaratively:

* **roles** — exactly one ``maker`` (the base / primary-copy site), any
  number of ``aggregator`` sites (regional AV pools, no user traffic)
  and ``retailer`` leaves (the sites users update);
* **region tree** — every non-maker site names a *parent*, forming a
  supply tree rooted at the maker. Leaves ask their parent aggregator
  for AV first (``av.pool.request``); a dry aggregator refills from its
  own parent (``av.pool.refill``) before answering;
* **interest sets** — each leaf serves a *slice* of the catalogue. An
  item's interest set is the set of sites that replicate it: the maker
  (which holds everything), the leaves whose slice contains it, and the
  aggregators on those leaves' supply paths. Sites instantiate stores,
  AV entries, beliefs and sync balances only for their slice, and no
  protocol message may reference an item outside the receiver's
  interest set (property-tested in ``tests/test_properties_topology.py``).

The paper's layout is :meth:`Topology.paper` — a flat, fully-replicated
tree whose behaviour is byte-identical to a topology-free build
(``tests/test_topology_differential.py`` pins that).

Conservation statement (see ``docs/topology.md``): aggregator pools are
ordinary per-site AV tables, so the sanitizer's invariant

    Σ(leaf tables + aggregator pools + holds + in-transit) ≤ headroom

holds at every level of the tree with no extra bookkeeping — pool grants
and refills move volume between tables exactly like peer grants do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

ROLE_MAKER = "maker"
ROLE_AGGREGATOR = "aggregator"
ROLE_RETAILER = "retailer"
ROLES = (ROLE_MAKER, ROLE_AGGREGATOR, ROLE_RETAILER)


@dataclass(frozen=True)
class SiteSpec:
    """One site's place in the topology.

    ``parent`` is the AV-supply parent (``None`` only for the maker);
    ``region`` is a human-readable label for reports and has no protocol
    meaning.
    """

    name: str
    role: str
    parent: Optional[str] = None
    region: str = ""

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ValueError(f"unknown role {self.role!r} for {self.name!r}")
        if (self.parent is None) != (self.role == ROLE_MAKER):
            raise ValueError(
                f"{self.name!r}: exactly the maker has no parent"
                f" (role={self.role!r}, parent={self.parent!r})"
            )


class InterestView:
    """One site's slice of a :class:`Topology` (consumed by the
    accelerator): which items it serves, whom it asks per item, and its
    place in the supply tree."""

    def __init__(self, topology: "Topology", name: str) -> None:
        self.topology = topology
        self.name = name
        #: items this site replicates
        self.items = frozenset(topology.interest_of(name))
        #: AV-supply parent (None for the maker)
        self.parent = topology.parent_of(name)
        #: direct children in the supply tree
        self.children = topology.children_of(name)
        #: parent to ask FIRST in the Delay gather loop — only set when
        #: the parent is an aggregator, so flat (paper-shaped) topologies
        #: keep the seed's strategy-driven gather byte-identical
        self.pool_parent = (
            self.parent
            if self.parent is not None
            and topology.role_of(self.parent) == ROLE_AGGREGATOR
            else None
        )
        self._peers: Dict[str, Tuple[str, ...]] = {}
        self._neighbors: Optional[Tuple[str, ...]] = None

    def serves(self, item: str) -> bool:
        return item in self.items

    @property
    def neighbors(self) -> Tuple[str, ...]:
        """Sites sharing at least one item with this one (topology
        order) — the only peers sync/rejoin traffic can concern."""
        if self._neighbors is None:
            shared: Dict[str, None] = {}
            for item in self.topology.interest_of(self.name):
                for site in self.topology.sites_for(item):
                    if site != self.name:
                        shared.setdefault(site)
            order = {n: i for i, n in enumerate(self.topology.names)}
            self._neighbors = tuple(sorted(shared, key=order.__getitem__))
        return self._neighbors

    def peers_for(self, item: str) -> Tuple[str, ...]:
        """Interested peers for ``item`` (excluding this site), in
        topology order (maker, aggregators, then leaves)."""
        cached = self._peers.get(item)
        if cached is None:
            cached = tuple(
                s for s in self.topology.sites_for(item) if s != self.name
            )
            self._peers[item] = cached
        return cached


class Topology:
    """An immutable N-site deployment shape.

    Parameters
    ----------
    specs:
        Site specs in deployment order — the maker first by convention
        (builders guarantee it; direct construction must too).
    slices:
        ``{leaf name: item ids served}``. Keys must be exactly the
        retailer leaves; the maker always serves every item and each
        aggregator serves the union of its descendant leaves' slices.
    items:
        Catalogue order for the item universe; defaults to first-seen
        order across the slices.
    spec:
        The parse string this topology came from, if any (diagnostics,
        fuzz-case serialisation).
    """

    def __init__(
        self,
        specs: Sequence[SiteSpec],
        slices: Mapping[str, Sequence[str]],
        items: Optional[Sequence[str]] = None,
        spec: str = "",
    ) -> None:
        self.spec = spec
        self._specs: Dict[str, SiteSpec] = {}
        for s in specs:
            if s.name in self._specs:
                raise ValueError(f"duplicate site {s.name!r}")
            self._specs[s.name] = s
        makers = [s.name for s in specs if s.role == ROLE_MAKER]
        if len(makers) != 1:
            raise ValueError(f"need exactly one maker, got {makers}")
        self.maker = makers[0]
        if specs[0].name != self.maker:
            raise ValueError("the maker must be the first site spec")

        self._children: Dict[str, List[str]] = {s.name: [] for s in specs}
        for s in specs:
            if s.parent is not None:
                if s.parent not in self._specs:
                    raise ValueError(
                        f"{s.name!r} names unknown parent {s.parent!r}"
                    )
                self._children[s.parent].append(s.name)
        self._depth: Dict[str, int] = {}
        for s in specs:
            self._depth[s.name] = self._walk_depth(s.name, hops=len(specs))

        self.leaves = [s.name for s in specs if s.role == ROLE_RETAILER]
        self.aggregators = [
            s.name for s in specs if s.role == ROLE_AGGREGATOR
        ]
        for name in self.aggregators:
            if not self._descendant_leaves(name):
                raise ValueError(f"aggregator {name!r} has no leaves")

        extra = [n for n in slices if n not in self.leaves]
        if extra:
            raise ValueError(f"slices for non-leaf sites {extra}")
        missing = [n for n in self.leaves if n not in slices]
        if missing:
            raise ValueError(f"no slice for leaves {missing}")

        if items is None:
            seen: Dict[str, None] = {}
            for leaf in self.leaves:
                for item in slices[leaf]:
                    seen.setdefault(item)
            items = list(seen)
        self.items: Tuple[str, ...] = tuple(items)
        universe = set(self.items)
        for leaf in self.leaves:
            stray = [i for i in slices[leaf] if i not in universe]
            if stray:
                raise ValueError(f"{leaf!r} slice has unknown items {stray}")

        # Per-site interest: maker = everything; leaf = its slice;
        # aggregator = union over descendant leaves, in catalogue order.
        self._interest: Dict[str, Tuple[str, ...]] = {
            self.maker: self.items
        }
        for leaf in self.leaves:
            in_slice = set(slices[leaf])
            self._interest[leaf] = tuple(
                i for i in self.items if i in in_slice
            )
        for name in self.aggregators:
            union = set()
            for leaf in self._descendant_leaves(name):
                union.update(self._interest[leaf])
            self._interest[name] = tuple(i for i in self.items if i in union)

        orphaned = [
            i for i in self.items
            if not any(i in set(self._interest[leaf]) for leaf in self.leaves)
        ]
        if orphaned:
            raise ValueError(f"items served by no leaf: {orphaned}")

        # item -> interested sites, in topology (maker-first) order.
        self._sites_for: Dict[str, Tuple[str, ...]] = {}
        interest_sets = {n: set(v) for n, v in self._interest.items()}
        for item in self.items:
            self._sites_for[item] = tuple(
                n for n in self._specs if item in interest_sets[n]
            )
        self._views: Dict[str, InterestView] = {}

    # ------------------------------------------------------------- #
    # tree walks
    # ------------------------------------------------------------- #

    def _walk_depth(self, name: str, hops: int) -> int:
        depth = 0
        cursor: Optional[str] = name
        while cursor is not None:
            cursor = self._specs[cursor].parent
            depth += 1
            if depth > hops:
                raise ValueError(f"parent cycle through {name!r}")
        return depth - 1

    def _descendant_leaves(self, name: str) -> List[str]:
        found: List[str] = []
        frontier = [name]
        while frontier:
            cursor = frontier.pop()
            for child in self._children[cursor]:
                if self._specs[child].role == ROLE_RETAILER:
                    found.append(child)
                else:
                    frontier.append(child)
        return found

    # ------------------------------------------------------------- #
    # queries
    # ------------------------------------------------------------- #

    @property
    def names(self) -> List[str]:
        """Site names in deployment order (maker first)."""
        return list(self._specs)

    @property
    def n_sites(self) -> int:
        return len(self._specs)

    @property
    def levels(self) -> int:
        """Depth of the supply tree (1 = flat maker→leaves)."""
        return max(self._depth.values())

    @property
    def full_replication(self) -> bool:
        """Every site replicates every item (the paper's assumption)."""
        n = len(self.items)
        return all(len(v) == n for v in self._interest.values())

    def role_of(self, name: str) -> str:
        return self._specs[name].role

    def parent_of(self, name: str) -> Optional[str]:
        return self._specs[name].parent

    def children_of(self, name: str) -> Tuple[str, ...]:
        return tuple(self._children[name])

    def depth_of(self, name: str) -> int:
        """Distance from the maker (maker = 0)."""
        return self._depth[name]

    def interest_of(self, name: str) -> Tuple[str, ...]:
        """Items ``name`` replicates, in catalogue order."""
        return self._interest[name]

    def sites_for(self, item: str) -> Tuple[str, ...]:
        """The item's interest set, in topology (maker-first) order."""
        return self._sites_for[item]

    def view(self, name: str) -> InterestView:
        """The per-site view the accelerator consumes (cached)."""
        view = self._views.get(name)
        if view is None:
            view = InterestView(self, name)
            self._views[name] = view
        return view

    # ------------------------------------------------------------- #
    # serialisation
    # ------------------------------------------------------------- #

    def to_dict(self) -> Dict:
        return {
            "spec": self.spec,
            "items": list(self.items),
            "sites": [
                [s.name, s.role, s.parent, s.region]
                for s in self._specs.values()
            ],
            "slices": {
                leaf: list(self._interest[leaf]) for leaf in self.leaves
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Topology":
        specs = [
            SiteSpec(name, role, parent, region)
            for name, role, parent, region in data["sites"]
        ]
        return cls(
            specs,
            {leaf: list(items) for leaf, items in data["slices"].items()},
            items=list(data["items"]),
            spec=data.get("spec", ""),
        )

    def __repr__(self) -> str:
        return (
            f"<Topology {self.spec or 'custom'!s}: {self.n_sites} sites"
            f" ({len(self.aggregators)} aggregators,"
            f" {len(self.leaves)} leaves),"
            f" {len(self.items)} items, levels={self.levels}>"
        )

    # ------------------------------------------------------------- #
    # builders
    # ------------------------------------------------------------- #

    @classmethod
    def paper(cls, n_retailers: int, items: Sequence[str]) -> "Topology":
        """The paper's flat layout: maker ``site0`` + fully-replicated
        retailers ``site1..siteN``. Behaviourally byte-identical to a
        topology-free build."""
        if n_retailers < 1:
            raise ValueError("need at least one retailer")
        specs = [SiteSpec("site0", ROLE_MAKER)]
        specs += [
            SiteSpec(f"site{i}", ROLE_RETAILER, parent="site0")
            for i in range(1, n_retailers + 1)
        ]
        slices = {s.name: list(items) for s in specs[1:]}
        return cls(specs, slices, items=items, spec=f"flat:{n_retailers}")

    @classmethod
    def regional(
        cls,
        items: Sequence[str],
        n_regions: int,
        leaves_per_region: int,
        spread: int = 2,
    ) -> "Topology":
        """Two-level tree: maker → ``n_regions`` aggregators → leaves.

        Items are dealt round-robin across the leaves; ``spread`` leaves
        replicate each item (clamped to the leaf count), so an item's
        interest set is those leaves, their aggregators, and the maker.
        """
        return cls._tree(items, [n_regions], leaves_per_region, spread,
                         spec=f"regional:{n_regions}x{leaves_per_region}"
                              f":s{spread}")

    @classmethod
    def deep(
        cls,
        items: Sequence[str],
        n_regions: int,
        subs_per_region: int,
        leaves_per_sub: int,
        spread: int = 2,
    ) -> "Topology":
        """Three-level tree: maker → regions → sub-regions → leaves."""
        return cls._tree(
            items, [n_regions, subs_per_region], leaves_per_sub, spread,
            spec=f"deep:{n_regions}x{subs_per_region}x{leaves_per_sub}"
                 f":s{spread}",
        )

    @classmethod
    def _tree(
        cls,
        items: Sequence[str],
        fanouts: Sequence[int],
        leaves_per_tail: int,
        spread: int,
        spec: str,
    ) -> "Topology":
        if any(f < 1 for f in fanouts) or leaves_per_tail < 1:
            raise ValueError(f"tree fanouts must be >= 1: {spec}")
        if spread < 1:
            raise ValueError("spread must be >= 1")
        specs = [SiteSpec("site0", ROLE_MAKER)]
        # Breadth-first aggregator layers: agg0.., then agg0.0.. under
        # them, region labels mirror the path.
        tails = ["site0"]
        labels = [""]
        for level, fanout in enumerate(fanouts):
            next_tails: List[str] = []
            next_labels: List[str] = []
            for parent, label in zip(tails, labels):
                for r in range(fanout):
                    sub = f"{label}.{r}" if label else str(r)
                    name = f"agg{sub}"
                    specs.append(SiteSpec(
                        name, ROLE_AGGREGATOR, parent=parent,
                        region=f"region{sub}",
                    ))
                    next_tails.append(name)
                    next_labels.append(sub)
            tails, labels = next_tails, next_labels

        leaves: List[str] = []
        k = 1
        for parent, label in zip(tails, labels):
            for _ in range(leaves_per_tail):
                name = f"site{k}"
                specs.append(SiteSpec(
                    name, ROLE_RETAILER, parent=parent,
                    region=f"region{label}",
                ))
                leaves.append(name)
                k += 1

        spread = min(spread, len(leaves))
        slices: Dict[str, List[str]] = {leaf: [] for leaf in leaves}
        for i, item in enumerate(items):
            for j in range(spread):
                slices[leaves[(i + j) % len(leaves)]].append(item)
        return cls(specs, slices, items=items, spec=spec)

    @classmethod
    def parse(cls, spec: str, items: Sequence[str]) -> "Topology":
        """Build a topology from a compact spec string.

        * ``flat:N`` — the paper's shape with N retailers;
        * ``regional:RxL[:sS]`` — maker → R aggregators → R·L leaves,
          S-way item spread (default 2);
        * ``deep:RxSxL[:sS]`` — three-level tree.
        """
        parts = spec.split(":")
        kind = parts[0]
        spread = 2
        dims = parts[1] if len(parts) > 1 else ""
        for extra in parts[2:]:
            if extra.startswith("s"):
                spread = int(extra[1:])
            else:
                raise ValueError(f"unknown topology option {extra!r}")
        try:
            if kind == "flat":
                return cls.paper(int(dims), items)
            counts = [int(d) for d in dims.split("x")]
            if kind == "regional" and len(counts) == 2:
                return cls.regional(items, counts[0], counts[1], spread)
            if kind == "deep" and len(counts) == 3:
                return cls.deep(
                    items, counts[0], counts[1], counts[2], spread
                )
        except ValueError as exc:
            raise ValueError(f"bad topology spec {spec!r}: {exc}") from None
        raise ValueError(f"unknown topology spec {spec!r}")
