"""Correspondence-growth series — the data behind the paper's Fig. 6.

A :class:`CorrespondenceSeries` samples the network's correspondence
count at update-count checkpoints, producing the ``(number of updates,
number of correspondences)`` curve the paper plots for both the proposal
and the conventional approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple


@dataclass
class CorrespondenceSeries:
    """One labelled growth curve."""

    label: str
    points: List[Tuple[int, float]] = field(default_factory=list)

    def sample(self, updates: int, correspondences: float) -> None:
        """Append a checkpoint; update counts must be nondecreasing."""
        if self.points and updates < self.points[-1][0]:
            raise ValueError(
                f"update counts must be nondecreasing "
                f"({updates} after {self.points[-1][0]})"
            )
        self.points.append((updates, correspondences))

    @property
    def updates(self) -> List[int]:
        return [u for u, _ in self.points]

    @property
    def correspondences(self) -> List[float]:
        return [c for _, c in self.points]

    def final(self) -> Tuple[int, float]:
        """The last checkpoint (total updates, total correspondences)."""
        if not self.points:
            raise ValueError(f"series {self.label!r} has no samples")
        return self.points[-1]

    def slope(self) -> float:
        """Average correspondences per update over the whole run."""
        updates, corr = self.final()
        return corr / updates if updates else 0.0

    def __len__(self) -> int:
        return len(self.points)


def reduction_ratio(
    proposal: CorrespondenceSeries, conventional: CorrespondenceSeries
) -> float:
    """Fractional reduction of the proposal vs the baseline at run end.

    The paper reports "the proposed way decreases the correspondences by
    75%" — this is that number.
    """
    _, conv = conventional.final()
    _, prop = proposal.final()
    if conv == 0:
        return 0.0
    return 1.0 - prop / conv


def is_monotonic(series: CorrespondenceSeries) -> bool:
    """Correspondence counts can only grow."""
    cs = series.correspondences
    return all(b >= a for a, b in zip(cs, cs[1:]))
