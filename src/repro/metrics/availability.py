"""Availability accounting for the fault-tolerance experiments.

The paper's fault-tolerance claim: because Delay Updates complete within
the local site, retailers keep serving customers while the maker (or the
network) is down. :class:`AvailabilityTracker` measures exactly that —
per-site success ratios inside and outside a fault window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.types import UpdateResult


@dataclass
class WindowStats:
    """Attempt/commit counters for one (site, window) cell."""

    attempted: int = 0
    committed: int = 0

    @property
    def availability(self) -> float:
        """Commit ratio; a silent site counts as available (no demand)."""
        return self.committed / self.attempted if self.attempted else 1.0


class AvailabilityTracker:
    """Classifies update results into fault / no-fault windows.

    Parameters
    ----------
    fault_start, fault_end:
        Simulation-time bounds of the fault window (``end=None`` = open).
    """

    def __init__(self, fault_start: float, fault_end: Optional[float] = None) -> None:
        if fault_end is not None and fault_end < fault_start:
            raise ValueError("fault_end before fault_start")
        self.fault_start = fault_start
        self.fault_end = fault_end
        self._cells: Dict[Tuple[str, bool], WindowStats] = {}

    def in_fault_window(self, time: float) -> bool:
        if time < self.fault_start:
            return False
        return self.fault_end is None or time <= self.fault_end

    def record(self, result: UpdateResult) -> None:
        key = (result.request.site, self.in_fault_window(result.request.issued_at))
        cell = self._cells.get(key)
        if cell is None:
            cell = WindowStats()
            self._cells[key] = cell
        cell.attempted += 1
        if result.committed:
            cell.committed += 1

    def stats(self, site: str, during_fault: bool) -> WindowStats:
        return self._cells.get((site, during_fault), WindowStats())

    def availability(self, site: str, during_fault: bool) -> float:
        return self.stats(site, during_fault).availability

    def sites(self) -> List[str]:
        return sorted({site for site, _ in self._cells})

    def __repr__(self) -> str:
        return f"<AvailabilityTracker cells={len(self._cells)}>"
