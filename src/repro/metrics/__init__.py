"""Instrumentation: collectors, correspondence series, latency, availability."""

from repro.metrics.availability import AvailabilityTracker, WindowStats
from repro.metrics.collector import GlobalLedger, MetricsCollector
from repro.metrics.correspondence import (
    CorrespondenceSeries,
    is_monotonic,
    reduction_ratio,
)
from repro.metrics.latency import EMPTY_SUMMARY, LatencySummary, summarize
from repro.metrics.report import csv_table, format_cell, series_block, text_table

__all__ = [
    "AvailabilityTracker",
    "CorrespondenceSeries",
    "EMPTY_SUMMARY",
    "GlobalLedger",
    "LatencySummary",
    "MetricsCollector",
    "WindowStats",
    "csv_table",
    "format_cell",
    "is_monotonic",
    "reduction_ratio",
    "series_block",
    "summarize",
    "text_table",
]
