"""Plain-text table and CSV rendering for experiment output.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

import io
from typing import Any, Iterable, Optional, Sequence


def format_cell(value: Any, ndigits: int = 2) -> str:
    """Human formatting: floats rounded, ints plain, rest ``str()``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value.is_integer():
            return str(int(value))
        return f"{value:.{ndigits}f}"
    return str(value)


def text_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
    ndigits: int = 2,
) -> str:
    """Render an aligned monospace table.

    >>> print(text_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.50
    """
    str_rows = [[format_cell(c, ndigits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip() + "\n")
    out.write("-+-".join("-" * w for w in widths) + "\n")
    for row in str_rows:
        out.write(
            " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip() + "\n"
        )
    return out.getvalue().rstrip("\n")


def csv_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Minimal CSV rendering (no quoting needed for our numeric output)."""
    lines = [",".join(headers)]
    for row in rows:
        cells = [format_cell(c, ndigits=6) for c in row]
        if any("," in c for c in cells):
            raise ValueError("cell contains a comma; use text_table instead")
        lines.append(",".join(cells))
    return "\n".join(lines)


def series_block(label: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """Render one labelled (x, y) series as two aligned columns."""
    if len(xs) != len(ys):
        raise ValueError("series length mismatch")
    return text_table(["updates", label], zip(xs, ys))
