"""Update-level metrics collection and the global ledger.

:class:`GlobalLedger` tracks ground truth — the value every replica would
converge to if all committed deltas were applied — independently of any
site's partial view. The conservation and non-negativity invariants are
checked against it.

:class:`MetricsCollector` accumulates one
:class:`~repro.core.types.UpdateResult` per finished update and offers
the aggregates the experiment harness reports.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional

from repro.core.types import UpdateKind, UpdateOutcome, UpdateResult
from repro.obs.registry import MetricRegistry


class GlobalLedger:
    """Ground-truth item values: initial + every committed delta."""

    def __init__(self) -> None:
        self._initial: Dict[str, float] = {}
        self._delta_sum: Dict[str, float] = {}
        self.committed_deltas = 0

    def set_initial(self, item: str, value: float) -> None:
        self._initial[item] = value
        self._delta_sum.setdefault(item, 0.0)

    def record_delta(self, item: str, delta: float) -> None:
        if item not in self._initial:
            raise KeyError(f"ledger has no initial value for {item!r}")
        self._delta_sum[item] += delta
        self.committed_deltas += 1

    def true_value(self, item: str) -> float:
        return self._initial[item] + self._delta_sum[item]

    def initial_value(self, item: str) -> float:
        return self._initial[item]

    def items(self) -> Iterable[str]:
        return self._initial.keys()

    def total(self) -> float:
        return sum(self.true_value(i) for i in self._initial)

    def __contains__(self, item: str) -> bool:
        return item in self._initial

    def __len__(self) -> int:
        return len(self._initial)


class MetricsCollector:
    """Aggregates finished updates for one simulation run.

    Parameters
    ----------
    registry:
        Metric registry receiving streaming aggregates (latency
        histograms per update kind, outcome counters). A private one is
        created when omitted; observed systems share the run's
        :class:`~repro.obs.hub.Observability` registry instead.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.results: List[UpdateResult] = []
        self.ledger = GlobalLedger()
        self.by_site: Dict[str, List[UpdateResult]] = defaultdict(list)
        self.registry = registry if registry is not None else MetricRegistry()
        # record() runs once per finished update; resolving a metric by
        # name costs an f-string build plus a registry dict probe every
        # time. The handles are stable objects, so memoise them per
        # enum value / kind the first time each is seen.
        self._outcome_counters: Dict[UpdateOutcome, object] = {}
        self._kind_histograms: Dict[UpdateKind, object] = {}
        self._av_counter = None
        self._latency_histogram = None

    # ---------------------------------------------------------------- #
    # recording
    # ---------------------------------------------------------------- #

    def record(self, result: UpdateResult) -> None:
        """Account one finished update (and its delta, if committed)."""
        self.results.append(result)
        outcome = result.outcome
        kind = result.kind
        self.by_site[result.request.site].append(result)
        counter = self._outcome_counters.get(outcome)
        if counter is None:
            counter = self.registry.counter(f"updates.{outcome.value}")
            self._outcome_counters[outcome] = counter
        counter.inc()
        if result.av_requests:
            av_counter = self._av_counter
            if av_counter is None:
                av_counter = self._av_counter = self.registry.counter(
                    "av.requests"
                )
            av_counter.inc(result.av_requests)
        if result.committed:
            self.ledger.record_delta(result.request.item, result.request.delta)
            latency = result.latency
            histogram = self._latency_histogram
            if histogram is None:
                histogram = self._latency_histogram = self.registry.histogram(
                    "update.latency"
                )
            histogram.observe(latency)
            kind_histogram = self._kind_histograms.get(kind)
            if kind_histogram is None:
                kind_histogram = self.registry.histogram(
                    f"update.latency.{kind.value}"
                )
                self._kind_histograms[kind] = kind_histogram
            kind_histogram.observe(latency)

    # ---------------------------------------------------------------- #
    # aggregates
    # ---------------------------------------------------------------- #

    @property
    def total(self) -> int:
        return len(self.results)

    # by_outcome / by_kind are derived at report time rather than
    # maintained per record: enum-keyed Counter updates go through the
    # Python-level ``Enum.__hash__`` on every finished update, and no
    # caller reads these during the run — only summaries do.

    @property
    def by_outcome(self) -> Counter:
        return Counter(r.outcome for r in self.results)

    @property
    def by_kind(self) -> Counter:
        return Counter(r.kind for r in self.results)

    @property
    def committed(self) -> int:
        return self.by_outcome[UpdateOutcome.COMMITTED]

    @property
    def rejected(self) -> int:
        return self.by_outcome[UpdateOutcome.REJECTED]

    def count(self, kind: Optional[UpdateKind] = None, outcome: Optional[UpdateOutcome] = None) -> int:
        # Single-axis queries answer from the maintained counters; only
        # the (kind AND outcome) combination needs the O(n) scan.
        if kind is None and outcome is None:
            return len(self.results)
        if outcome is None:
            return self.by_kind[kind]
        if kind is None:
            return self.by_outcome[outcome]
        n = 0
        for r in self.results:
            if r.kind is kind and r.outcome is outcome:
                n += 1
        return n

    def latency_summary(self, kind: Optional[UpdateKind] = None) -> Dict[str, float]:
        """Streaming p50/p90/p99/max of committed-update latency.

        Served from the registry's log-bucketed histograms — no scan
        over :attr:`results`, percentiles accurate to the histogram's
        bucket growth (~2.5% relative).
        """
        name = "update.latency" if kind is None else f"update.latency.{kind.value}"
        return self.registry.histogram(name).summary()

    @property
    def local_delay_updates(self) -> int:
        """Delay updates completed with zero communication."""
        return sum(
            1 for r in self.results if r.kind is UpdateKind.DELAY and r.local_only
        )

    @property
    def delay_updates(self) -> int:
        return self.by_kind[UpdateKind.DELAY]

    @property
    def local_ratio(self) -> float:
        """Fraction of delay updates that never touched the network."""
        delay = self.delay_updates
        return self.local_delay_updates / delay if delay else 1.0

    def latencies(
        self,
        site: Optional[str] = None,
        kind: Optional[UpdateKind] = None,
        committed_only: bool = True,
    ) -> List[float]:
        out = []
        for r in self.results:
            if site is not None and r.request.site != site:
                continue
            if kind is not None and r.kind is not kind:
                continue
            if committed_only and not r.committed:
                continue
            out.append(r.latency)
        return out

    def av_requests_total(self) -> int:
        return sum(r.av_requests for r in self.results)

    def __repr__(self) -> str:
        return (
            f"<MetricsCollector total={self.total} committed={self.committed}"
            f" rejected={self.rejected} local_ratio={self.local_ratio:.2f}>"
        )
