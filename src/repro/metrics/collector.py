"""Update-level metrics collection and the global ledger.

:class:`GlobalLedger` tracks ground truth — the value every replica would
converge to if all committed deltas were applied — independently of any
site's partial view. The conservation and non-negativity invariants are
checked against it.

:class:`MetricsCollector` accumulates one
:class:`~repro.core.types.UpdateResult` per finished update and offers
the aggregates the experiment harness reports.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional

from repro.core.types import UpdateKind, UpdateOutcome, UpdateResult


class GlobalLedger:
    """Ground-truth item values: initial + every committed delta."""

    def __init__(self) -> None:
        self._initial: Dict[str, float] = {}
        self._delta_sum: Dict[str, float] = {}
        self.committed_deltas = 0

    def set_initial(self, item: str, value: float) -> None:
        self._initial[item] = value
        self._delta_sum.setdefault(item, 0.0)

    def record_delta(self, item: str, delta: float) -> None:
        if item not in self._initial:
            raise KeyError(f"ledger has no initial value for {item!r}")
        self._delta_sum[item] += delta
        self.committed_deltas += 1

    def true_value(self, item: str) -> float:
        return self._initial[item] + self._delta_sum[item]

    def initial_value(self, item: str) -> float:
        return self._initial[item]

    def items(self) -> Iterable[str]:
        return self._initial.keys()

    def total(self) -> float:
        return sum(self.true_value(i) for i in self._initial)

    def __contains__(self, item: str) -> bool:
        return item in self._initial

    def __len__(self) -> int:
        return len(self._initial)


class MetricsCollector:
    """Aggregates finished updates for one simulation run."""

    def __init__(self) -> None:
        self.results: List[UpdateResult] = []
        self.ledger = GlobalLedger()
        self.by_outcome: Counter = Counter()
        self.by_kind: Counter = Counter()
        self.by_site: Dict[str, List[UpdateResult]] = defaultdict(list)

    # ---------------------------------------------------------------- #
    # recording
    # ---------------------------------------------------------------- #

    def record(self, result: UpdateResult) -> None:
        """Account one finished update (and its delta, if committed)."""
        self.results.append(result)
        self.by_outcome[result.outcome] += 1
        self.by_kind[result.kind] += 1
        self.by_site[result.request.site].append(result)
        if result.committed:
            self.ledger.record_delta(result.request.item, result.request.delta)

    # ---------------------------------------------------------------- #
    # aggregates
    # ---------------------------------------------------------------- #

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def committed(self) -> int:
        return self.by_outcome[UpdateOutcome.COMMITTED]

    @property
    def rejected(self) -> int:
        return self.by_outcome[UpdateOutcome.REJECTED]

    def count(self, kind: Optional[UpdateKind] = None, outcome: Optional[UpdateOutcome] = None) -> int:
        n = 0
        for r in self.results:
            if kind is not None and r.kind is not kind:
                continue
            if outcome is not None and r.outcome is not outcome:
                continue
            n += 1
        return n

    @property
    def local_delay_updates(self) -> int:
        """Delay updates completed with zero communication."""
        return sum(
            1 for r in self.results if r.kind is UpdateKind.DELAY and r.local_only
        )

    @property
    def delay_updates(self) -> int:
        return self.by_kind[UpdateKind.DELAY]

    @property
    def local_ratio(self) -> float:
        """Fraction of delay updates that never touched the network."""
        delay = self.delay_updates
        return self.local_delay_updates / delay if delay else 1.0

    def latencies(
        self,
        site: Optional[str] = None,
        kind: Optional[UpdateKind] = None,
        committed_only: bool = True,
    ) -> List[float]:
        out = []
        for r in self.results:
            if site is not None and r.request.site != site:
                continue
            if kind is not None and r.kind is not kind:
                continue
            if committed_only and not r.committed:
                continue
            out.append(r.latency)
        return out

    def av_requests_total(self) -> int:
        return sum(r.av_requests for r in self.results)

    def __repr__(self) -> str:
        return (
            f"<MetricsCollector total={self.total} committed={self.committed}"
            f" rejected={self.rejected} local_ratio={self.local_ratio:.2f}>"
        )
