"""Latency summarisation helpers (simulated-time units)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Standard percentile summary of a latency sample."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} p50={self.p50:.3f}"
            f" p90={self.p90:.3f} p99={self.p99:.3f} max={self.max:.3f}"
        )


EMPTY_SUMMARY = LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)


def summarize(latencies: Sequence[float]) -> LatencySummary:
    """Compute a :class:`LatencySummary`; an empty sample yields zeros."""
    if len(latencies) == 0:
        return EMPTY_SUMMARY
    arr = np.asarray(latencies, dtype=float)
    if np.any(arr < 0):
        raise ValueError("negative latency in sample")
    return LatencySummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        max=float(arr.max()),
    )
