"""Command-line entry point: ``python -m repro <experiment>``.

Regenerates any of the paper's artifacts (and our ablations) from the
shell. Every experiment prints the same aligned tables its benchmark
target does.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro._version import __version__


def _write_trace(obs, path: str) -> None:
    from repro.obs.export import write_chrome_trace

    document = write_chrome_trace(path, obs.recorder)
    print(f"wrote {len(document['traceEvents'])} trace events to {path}")


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig6

    result = run_fig6(
        n_updates=args.updates, seed=args.seed, n_items=args.items,
        observe=bool(args.trace_out),
    )
    print(result.render())
    if args.trace_out:
        _write_trace(result.obs, args.trace_out)
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import run_table1

    result = run_table1(
        n_updates=args.updates, seed=args.seed, n_items=args.items,
        observe=bool(args.trace_out),
    )
    print(result.render())
    if args.trace_out:
        _write_trace(result.obs, args.trace_out)
    return 0


def _cmd_observe(args: argparse.Namespace) -> int:
    from repro.experiments import run_observed

    run = run_observed(
        experiment=args.experiment,
        n_updates=args.updates,
        seed=args.seed,
        n_items=args.items,
        sample_interval=args.sample_interval,
    )
    print(run.render())
    if args.trace_out:
        _write_trace(run.obs, args.trace_out)
    if args.jsonl_out:
        n = run.write_jsonl(args.jsonl_out)
        print(f"wrote {n} JSONL records to {args.jsonl_out}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.profile import COVERAGE_TARGET, run_profiled
    from repro.obs.report import render_profile_text

    run = run_profiled(
        args.experiment,
        n_updates=args.updates,
        seed=args.seed,
        small=args.small,
        verify_digest=args.check,
        # coverage is a wall-time ratio, so under --check take the best
        # of a few attempts (OS preemption noise, not code, is what a
        # single low reading usually measures)
        best_of=3 if args.check else 1,
    )
    report = run.report
    print(render_profile_text(report))

    if args.flame:
        with open(args.flame, "w", encoding="utf-8") as fh:
            for line in run.flame:
                fh.write(line + "\n")
        print(f"\nwrote {len(run.flame)} collapsed-stack lines to {args.flame}")
    if args.trace_out:
        from repro.obs.export import SIM_UNIT_US
        from repro.obs.profile import profiled_chrome_trace

        events = []
        for group in run.span_groups:
            events.extend(profiled_chrome_trace(group))
        document = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "exporter": "repro.obs.profile",
                "sim_unit_us": SIM_UNIT_US,
            },
        }
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
        print(f"wrote {len(events)} trace events to {args.trace_out}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, sort_keys=True, indent=1)
            fh.write("\n")
        print(f"wrote profile report to {args.out}")

    if args.check:
        attributed = [
            name for name, row in report["subsystems"].items()
            if row["events"] > 0
        ]
        failures = []
        if len(attributed) < 4:
            failures.append(
                f"only {len(attributed)} subsystems attributed"
                f" ({', '.join(attributed)}); expected >= 4"
            )
        if report["wall"]["coverage"] < COVERAGE_TARGET:
            failures.append(
                f"attribution coverage {report['wall']['coverage']:.1%}"
                f" below the {COVERAGE_TARGET:.0%} gate"
            )
        if not report.get("digest_match", False):
            failures.append(
                "profiled digest differs from the unprofiled run"
            )
        if failures:
            for failure in failures:
                print(f"profile check FAILED: {failure}")
            return 1
        print(
            f"\nprofile check ok: {len(attributed)} subsystems,"
            f" coverage {report['wall']['coverage']:.1%},"
            " digest identical to unprofiled run"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import load_report, render_html, render_text

    payload = load_report(args.path)
    print(render_text(payload))
    if args.html:
        document = render_html(payload)
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(document)
        print(f"\nwrote HTML dossier to {args.html}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    if args.static:
        return _static_check()
    if args.experiment is None:
        print("check: an experiment is required unless --static is given")
        return 2
    from repro.analysis import run_check

    updates = args.updates
    if args.small:
        updates = min(updates, 150)
    run = run_check(
        experiment=args.experiment,
        n_updates=updates,
        seed=args.seed,
        n_items=args.items,
    )
    print(run.render())
    return 0 if run.ok else 1


def _static_check() -> int:
    """The whole static suite in one parse: lint rules + protoflow.

    Lint covers ``src`` and ``tests``; the protocol-flow checks cover
    ``src`` only (fixtures under ``tests/`` plant deliberate protocol
    defects). Honours a committed ``protoflow-baseline.json`` when one
    exists in the working directory.
    """
    from pathlib import Path

    from repro.analysis.lint import default_rules
    from repro.analysis.protoflow import run_checks
    from repro.analysis.protoflow.ir import index_project
    from repro.analysis.protoflow.report import apply_baseline, load_baseline
    from repro.net.protocol import PROTOCOL

    lint_findings, ir = index_project(
        ["src", "tests"], rules=default_rules(), flow_paths=["src"]
    )
    flow_findings = run_checks(ir, PROTOCOL)
    baseline = Path("protoflow-baseline.json")
    if baseline.exists():
        flow_findings = apply_baseline(flow_findings, load_baseline(baseline))
    findings = sorted(
        [*lint_findings, *flow_findings],
        key=lambda f: (f.path, f.line, f.col, f.rule),
    )
    for finding in findings:
        print(finding.render())
    print(
        f"static check: {len(findings)} finding(s)"
        f" ({len(lint_findings)} lint, {len(flow_findings)} protocol-flow,"
        f" {len(ir.files)} protocol file(s))"
    )
    return 1 if findings else 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ABLATION_HEADERS,
        ablate_escrow,
        ablate_grant_policy,
        ablate_selection_strategy,
        ablate_update_mix,
    )
    from repro.metrics.report import text_table

    runs = {
        "grant policy (A)": ablate_grant_policy,
        "selection strategy (B)": ablate_selection_strategy,
        "static escrow (D)": ablate_escrow,
        "update mix (E)": ablate_update_mix,
    }
    for title, fn in runs.items():
        rows = fn(n_updates=args.updates, seed=args.seed)
        print(text_table(ABLATION_HEADERS, rows, title=f"Ablation — {title}"))
        print()
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments import FAULT_HEADERS, run_fault_experiment
    from repro.metrics.report import text_table

    result = run_fault_experiment(n_updates=args.updates, seed=args.seed)
    print(
        text_table(
            FAULT_HEADERS,
            result.rows(),
            title=(
                f"Availability (fault window t="
                f"[{result.fault_start:g}, {result.fault_end:g}])"
            ),
        )
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos import run_chaos

    report = run_chaos(
        small=args.small, n_updates=args.updates, seed=args.seed,
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.testkit.fuzzer import _parse_budget, replay_artifact, run_fuzz

    if args.replay:
        reproduced, text = replay_artifact(args.replay)
        print(text)
        return 0 if reproduced else 1

    budget = _parse_budget(args.budget)
    if budget is None and args.cases is None:
        budget = 10.0
    report = run_fuzz(
        root_seed=args.seed,
        budget_s=budget,
        max_cases=args.cases,
        shards=args.shards,
        n_ops=args.ops,
        inject=args.inject,
        artifact_dir=args.artifact_dir,
        do_shrink=not args.no_shrink,
        log=print,
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.experiments import LATENCY_HEADERS, run_latency_experiment
    from repro.metrics.report import text_table

    result = run_latency_experiment(n_updates=args.updates, seed=args.seed)
    print(text_table(LATENCY_HEADERS, result.rows(), title="Update latency"))
    print(f"mean speedup vs centralized: {result.speedup():.1f}x")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.dimension in ("items", "sites", "av-fraction"):
        from repro.experiments import (
            SWEEP_HEADERS,
            sweep_av_fraction,
            sweep_items,
            sweep_rows,
            sweep_scale,
        )
        from repro.metrics.report import text_table

        sweeps = {
            "items": sweep_items,
            # "sites" is the retailer-count ablation (historically named
            # "scale"; renamed so the topology grid can own that name).
            "sites": sweep_scale,
            "av-fraction": sweep_av_fraction,
        }
        fn = sweeps[args.dimension]
        print(
            text_table(
                SWEEP_HEADERS,
                sweep_rows(fn(seed=args.seed)),
                title=f"Sweep over {args.dimension}",
            )
        )
        return 0
    return _run_grid_sweep(args)


#: grids below this task count run sequentially under ``--shards auto``:
#: per-worker process start-up dominates and sharding is a slowdown
#: (the committed benches measured a 0.726x "speedup" on the -small
#: grids — see ROADMAP item 2)
AUTO_SHARD_MIN_TASKS = 16


def _shards_arg(value: str):
    """``--shards`` value: a positive int, or ``auto``."""
    if value == "auto":
        return "auto"
    try:
        shards = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        )
    if shards < 1:
        raise argparse.ArgumentTypeError("shard count must be >= 1")
    return shards


def resolve_shards(spec, n_tasks: int) -> int:
    """Concrete shard count for a sweep of ``n_tasks`` tasks.

    ``auto`` picks sequential for small grids (results are
    byte-identical for any shard count, so this is purely a wall-clock
    decision) and otherwise caps fan-out at the smaller of the task
    count and available cores.
    """
    if spec != "auto":
        return int(spec)
    if n_tasks < AUTO_SHARD_MIN_TASKS:
        return 1
    import os

    return max(2, min(4, os.cpu_count() or 1, n_tasks))


def _run_grid_sweep(args: argparse.Namespace) -> int:
    """Sharded seed × config grid sweep (see repro.perf)."""
    import time

    from repro.metrics.report import text_table
    from repro.perf import build_grid, run_sweep

    tasks = build_grid(
        args.dimension,
        root_seed=args.seed,
        replicates=args.replicates,
        check=args.check,
    )
    shards = resolve_shards(args.shards, len(tasks))
    started = time.perf_counter()  # repro-lint: disable=wall-clock (host timing of the sweep harness, not simulation)
    sweep = run_sweep(
        tasks,
        shards=shards,
        grid=args.dimension,
        root_seed=args.seed,
        crash=None,
    )
    wall = time.perf_counter() - started  # repro-lint: disable=wall-clock (host timing of the sweep harness, not simulation)

    rows = []
    for task, result in zip(sweep.tasks, sweep.results):
        telemetry = result.get("telemetry", {})
        rows.append(
            [
                task.index,
                task.experiment + (f":{task.scenario}" if task.scenario else ""),
                task.seed,
                task.n_updates,
                telemetry.get("events_processed", ""),
                round(result["reduction"], 3) if "reduction" in result else "",
                (
                    "ok"
                    if result.get("ok", True)
                    and result.get("sanitizer", {}).get("violations", 0) == 0
                    else "FAIL"
                ),
            ]
        )
    print(
        text_table(
            ["task", "experiment", "seed", "updates", "events", "reduction", "status"],
            rows,
            title=(
                f"Sweep {args.dimension} (root seed {args.seed},"
                f" shards={shards}, retries={sweep.retries})"
            ),
        )
    )
    events = sweep.events_processed
    print(
        f"\n{len(sweep.results)} tasks, {events} kernel events,"
        f" {wall:.2f}s wall ({events / wall:,.0f} events/s)"
        f"\nresult digest: {sweep.digest()}"
    )
    from repro.obs.snapshot import telemetry_rows

    t_rows = telemetry_rows(sweep.telemetry())
    if t_rows:
        print()
        print(
            text_table(
                ["metric", "kind", "value"], t_rows,
                title="Merged telemetry (shard-count invariant)",
            )
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(sweep.canonical())
            fh.write("\n")
        print(f"wrote canonical results to {args.out}")
    bad = [r for r in rows if r[-1] == "FAIL"]
    return 1 if bad else 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis import record_scenario
    from repro.cluster import build_paper_system

    print("Fig. 3 — Delay Update within the local site (no messages)\n")
    system = build_paper_system(n_items=1, initial_stock=90.0, seed=args.seed)

    def fig3(env):
        yield system.update("site1", "item0", -10)

    print(record_scenario(system, fig3, width=24) or "(empty)")

    print("\nFig. 4 — Delay Update with AV transfer\n")
    system = build_paper_system(n_items=1, initial_stock=90.0, seed=args.seed)

    def fig4(env):
        yield system.update("site1", "item0", -45)

    print(record_scenario(system, fig4, width=24))

    print("\nFig. 5 — Immediate Update (primary-copy commit)\n")
    system = build_paper_system(
        n_items=1, initial_stock=90.0, regular_fraction=0.0, seed=args.seed
    )

    def fig5(env):
        yield system.update("site1", "item0", -5)

    print(record_scenario(system, fig5, width=24))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Autonomous Consistency Technique in"
            " Distributed Database with Heterogeneous Requirements'"
            " (IPPS 2000)."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--updates", type=int, default=1000,
                       help="total updates to issue (default 1000)")
        p.add_argument("--seed", type=int, default=0, help="root seed")
        p.add_argument("--items", type=int, default=10,
                       help="catalogue size (default 10, the calibrated value)")

    def trace_out(p):
        p.add_argument(
            "--trace-out", default=None, metavar="PATH",
            help=(
                "also record causal spans and write a Chrome trace-event"
                " JSON file (open in Perfetto)"
            ),
        )

    p = sub.add_parser("fig6", help="reproduce Fig. 6")
    common(p)
    trace_out(p)
    p.set_defaults(fn=_cmd_fig6)

    p = sub.add_parser("table1", help="reproduce Table 1")
    common(p)
    trace_out(p)
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser(
        "observe",
        help="replay an experiment with the observability layer on",
    )
    p.add_argument(
        "experiment", choices=["fig6", "table1"],
        help="whose workload to replay",
    )
    p.add_argument("--updates", type=int, default=300,
                   help="total updates to issue (default 300)")
    p.add_argument("--seed", type=int, default=0, help="root seed")
    p.add_argument("--items", type=int, default=10,
                   help="catalogue size (default 10, the calibrated value)")
    p.add_argument("--sample-interval", type=float, default=25.0,
                   help="sim-time between state snapshots (default 25)")
    trace_out(p)
    p.add_argument(
        "--jsonl-out", default=None, metavar="PATH",
        help="write spans + metrics + samples as line-delimited JSON",
    )
    p.set_defaults(fn=_cmd_observe)

    p = sub.add_parser(
        "profile",
        help=(
            "run an experiment under the subsystem profiler: wall-time"
            " attribution, span rollups, flamegraph + Chrome-trace export"
        ),
    )
    p.add_argument(
        "experiment", choices=["fig6", "table1", "chaos"],
        help="which experiment to profile",
    )
    p.add_argument(
        "--updates", type=int, default=None,
        help="total updates (default: experiment's profile default)",
    )
    p.add_argument("--seed", type=int, default=0, help="root seed")
    p.add_argument(
        "--small", action="store_true",
        help="CI-smoke workload size (and the chaos small suite)",
    )
    p.add_argument(
        "--flame", default=None, metavar="PATH",
        help="write flamegraph collapsed stacks (flamegraph.pl/speedscope)",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the subsystem-enriched Chrome trace JSON",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the profile report JSON (input to `repro report`)",
    )
    p.add_argument(
        "--check", action="store_true",
        help=(
            "gate the run: >= 4 subsystems attributed, coverage >= 95%%,"
            " and digest byte-identical to an unprofiled rerun"
        ),
    )
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "report",
        help=(
            "render a run dossier (text or HTML) from a profile report"
            " JSON, a sweep canonical JSON, or a run directory"
        ),
    )
    p.add_argument(
        "path",
        help="profile JSON, sweep JSON, or directory with profile.json",
    )
    p.add_argument(
        "--html", default=None, metavar="PATH",
        help="also write a self-contained HTML dossier",
    )
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "check",
        help="replay an experiment under the runtime protocol sanitizer,"
        " or run the static suite with --static",
    )
    p.add_argument(
        "experiment", choices=["fig6", "table1"], nargs="?", default=None,
        help="whose workload to replay (omit with --static)",
    )
    p.add_argument(
        "--static", action="store_true",
        help="run the static suite instead: lint rules + protocol-flow"
        " analysis in one parse (honours protoflow-baseline.json)",
    )
    p.add_argument("--updates", type=int, default=1000,
                   help="total updates to issue (default 1000)")
    p.add_argument("--seed", type=int, default=0, help="root seed")
    p.add_argument("--items", type=int, default=10,
                   help="catalogue size (default 10, the calibrated value)")
    p.add_argument(
        "--small", action="store_true",
        help="cap the workload at 150 updates (quick CI gate)",
    )
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("ablations", help="run design-choice ablations")
    common(p)
    p.set_defaults(fn=_cmd_ablations)

    p = sub.add_parser("faults", help="fault-tolerance experiment")
    common(p)
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser(
        "chaos",
        help=(
            "chaos suite: crash/partition/loss schedules must end in"
            " converged replicas with a clean sanitizer audit"
        ),
    )
    p.add_argument(
        "--updates", type=int, default=None,
        help="total updates per scenario (default 120 small / 300 full)",
    )
    p.add_argument("--seed", type=int, default=0, help="root seed")
    p.add_argument(
        "--small", action="store_true",
        help="run the 3-scenario CI smoke variant",
    )
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("latency", help="latency comparison")
    common(p)
    p.set_defaults(fn=_cmd_latency)

    p = sub.add_parser(
        "fuzz",
        help=(
            "schedule-space fuzzing: perturbed deterministic runs under"
            " the sanitizer + end-state oracles, with automatic"
            " counterexample shrinking (see repro.testkit)"
        ),
    )
    p.add_argument("--seed", type=int, default=0, help="campaign root seed")
    p.add_argument(
        "--budget", default=None, metavar="TIME",
        help="wall-clock budget, e.g. 10s / 2m (default 10s)",
    )
    p.add_argument(
        "--cases", type=int, default=None,
        help="stop after N cases instead of (or as well as) --budget",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="fan case batches across N worker processes",
    )
    p.add_argument(
        "--ops", type=int, default=36, help="workload ops per case"
    )
    p.add_argument(
        "--inject", default="", choices=["", "av-double-grant", "col-alias"],
        help="TEST-ONLY: plant a known protocol bug to validate oracles",
    )
    p.add_argument(
        "--artifact-dir", default="fuzz-artifacts", metavar="DIR",
        help="where shrunk repro artifacts are written",
    )
    p.add_argument(
        "--no-shrink", action="store_true",
        help="report the first violating case without minimising it",
    )
    p.add_argument(
        "--replay", default=None, metavar="ARTIFACT",
        help="replay a repro artifact and verify byte-identity",
    )
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser(
        "sweep",
        help=(
            "parameter sweeps (items/sites/av-fraction) and sharded"
            " seed-grid sweeps (fig6[-small|-wide], table1[-small],"
            " chaos[-small], scale[-small])"
        ),
    )
    from repro.perf.grids import GRID_NAMES

    p.add_argument(
        "dimension",
        choices=["items", "sites", "av-fraction", *GRID_NAMES],
    )
    p.add_argument("--seed", type=int, default=0, help="root seed")
    p.add_argument(
        "--shards", type=_shards_arg, default=1,
        help=(
            "fan the grid across N worker processes, or 'auto' to pick"
            " sequential for small grids (grid sweeps only; results are"
            " byte-identical for any N)"
        ),
    )
    p.add_argument(
        "--replicates", type=int, default=None,
        help="override the grid's replicate count (grid sweeps only)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="also replay each task under the protocol sanitizer",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the canonical JSON results (determinism surface)",
    )
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "figures", help="regenerate Figs. 3-5 (protocol sequence diagrams)"
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_figures)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
