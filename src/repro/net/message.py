"""Message model for the simulated network.

A :class:`Message` is an immutable envelope. ``kind`` names the protocol
verb (e.g. ``"av.request"``), ``tag`` attributes the message to a protocol
family for accounting (the paper's Fig. 6 counts messages per mechanism),
and ``reply_to`` carries the correlation id for request/reply RPC.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Optional

_msg_ids = count(1)


@dataclass(frozen=True, slots=True)
class Message:
    """One network message.

    Attributes
    ----------
    src, dst:
        Endpoint names of sender and receiver.
    kind:
        Protocol verb, dispatched on by the receiving endpoint.
    payload:
        Arbitrary (treat-as-immutable) message body.
    tag:
        Accounting category; defaults to ``kind``'s prefix before the dot.
    msg_id:
        Unique id assigned at construction.
    reply_to:
        If set, this message is the reply to the request with that id.
    expects_reply:
        ``True`` for messages sent via the RPC helper; tells the receiving
        endpoint to route the handler's return value back.
    """

    src: str
    dst: str
    kind: str
    payload: Any = None
    tag: str = ""
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    reply_to: Optional[int] = None
    expects_reply: bool = False

    def __post_init__(self) -> None:
        # Kinds and tags come from a small fixed vocabulary but are
        # compared and hashed on every dispatch/accounting step; intern
        # them so those operations hit the pointer-equality fast path.
        object.__setattr__(self, "kind", sys.intern(self.kind))
        if self.tag:
            object.__setattr__(self, "tag", sys.intern(self.tag))
        else:
            object.__setattr__(
                self, "tag", sys.intern(self.kind.split(".", 1)[0])
            )

    @property
    def is_reply(self) -> bool:
        return self.reply_to is not None

    def __str__(self) -> str:
        arrow = f"{self.src}->{self.dst}"
        suffix = f" reply_to={self.reply_to}" if self.is_reply else ""
        return f"<{self.kind} #{self.msg_id} {arrow}{suffix}>"
