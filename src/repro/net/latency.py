"""Link latency models.

The paper's metric (message/correspondence counts) is latency-independent,
but latency models matter for the latency benchmarks and for realistic
interleavings of the AV-transfer protocol. All models draw from an injected
:class:`numpy.random.Generator` so simulations stay deterministic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class LatencyModel(ABC):
    """Strategy producing a one-way delay for a (src, dst) message."""

    @abstractmethod
    def sample(self, src: str, dst: str, rng: np.random.Generator) -> float:
        """Return a nonnegative delay in simulated time units."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.delay = float(delay)

    def sample(self, src: str, dst: str, rng: np.random.Generator) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"<ConstantLatency {self.delay}>"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid range [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, src: str, dst: str, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def __repr__(self) -> str:
        return f"<UniformLatency [{self.low}, {self.high}]>"


class LognormalLatency(LatencyModel):
    """Heavy-tailed delay: ``exp(N(mu, sigma))``, typical of WANs."""

    def __init__(self, mu: float = 0.0, sigma: float = 0.5) -> None:
        if sigma < 0:
            raise ValueError(f"negative sigma {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, src: str, dst: str, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def __repr__(self) -> str:
        return f"<LognormalLatency mu={self.mu} sigma={self.sigma}>"


class PairwiseLatency(LatencyModel):
    """Different latency per (src, dst) pair with a fallback default.

    Useful to model a maker in a remote data centre: retailer↔retailer
    links fast, retailer↔maker links slow.
    """

    def __init__(
        self,
        default: LatencyModel,
        overrides: dict[tuple[str, str], LatencyModel] | None = None,
        symmetric: bool = True,
    ) -> None:
        self.default = default
        self.overrides = dict(overrides or {})
        self.symmetric = symmetric

    def set(self, src: str, dst: str, model: LatencyModel) -> None:
        self.overrides[(src, dst)] = model

    def sample(self, src: str, dst: str, rng: np.random.Generator) -> float:
        model = self.overrides.get((src, dst))
        if model is None and self.symmetric:
            model = self.overrides.get((dst, src))
        if model is None:
            model = self.default
        return model.sample(src, dst, rng)

    def __repr__(self) -> str:
        return f"<PairwiseLatency default={self.default!r} overrides={len(self.overrides)}>"
