"""Per-pair FIFO channels.

Random latency samples can reorder messages between the same pair of
sites; real transport links (and the paper's implicit LAN) deliver in
order. :class:`Channel` enforces FIFO by clamping each delivery time to be
no earlier than the previous delivery on the same directed pair.
"""

from __future__ import annotations


class Channel:
    """Directed (src → dst) link state: last scheduled delivery time."""

    __slots__ = ("src", "dst", "fifo", "_last_delivery", "delivered")

    def __init__(self, src: str, dst: str, fifo: bool = True) -> None:
        self.src = src
        self.dst = dst
        self.fifo = fifo
        self._last_delivery = float("-inf")
        #: messages scheduled over this channel (diagnostic)
        self.delivered = 0

    def delivery_time(self, now: float, latency: float) -> float:
        """Compute (and remember) the delivery time of the next message."""
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        when = now + latency
        if self.fifo and when < self._last_delivery:
            when = self._last_delivery
        self._last_delivery = when
        self.delivered += 1
        return when

    def __repr__(self) -> str:
        return f"<Channel {self.src}->{self.dst} fifo={self.fifo} n={self.delivered}>"


class ChannelTable:
    """Lazy registry of directed channels."""

    def __init__(self, fifo: bool = True) -> None:
        self.fifo = fifo
        self._channels: dict[tuple[str, str], Channel] = {}

    def get(self, src: str, dst: str) -> Channel:
        key = (src, dst)
        chan = self._channels.get(key)
        if chan is None:
            chan = Channel(src, dst, fifo=self.fifo)
            self._channels[key] = chan
        return chan

    def __len__(self) -> int:
        return len(self._channels)

    def __iter__(self):
        return iter(self._channels.values())
