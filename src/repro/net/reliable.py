"""Reliable delivery sessions: ack/retransmit over :class:`Endpoint`.

The base network is honest about loss: a dropped message is gone. That
is the right substrate for the paper's measurements, but the robustness
layer (lazy propagation that must eventually converge) needs one-way
messages that are *eventually delivered, effectively once*. A
:class:`ReliableSession` provides exactly that on top of the existing
request/reply machinery:

* every reliable message carries a per-destination **sequence number**;
* the receiver records ``(src, seq)`` **at delivery time** and invokes
  the wrapped handler only for fresh sequence numbers — retransmitted
  copies are acknowledged but not re-applied (effectively-once);
* the RPC reply doubles as the **ack**; a missing ack triggers
  retransmission with exponential backoff and jitter drawn from the
  site's own rng stream (two sites never share a stream);
* when the retry budget is exhausted the sender switches to **probing**:
  ``rel.probe`` asks the receiver whether the sequence number was ever
  seen. The per-pair FIFO channel makes the answer *definitive* — every
  copy was sent before the probe on the same directed channel, so any
  copy that will ever arrive has arrived by the time the probe is
  served. A "no" therefore licenses the sender to safely resend the
  payload later under a fresh sequence number without risking double
  application.

A sender that crashes mid-delivery does not lose the delivery: the
driving process survives the crash (crash = network isolation in this
simulation) and resolves the outcome by probing once the endpoint is
back. Deliveries to a peer that never becomes reachable again probe
forever; bound such runs with ``run(until=...)`` — any schedule that
eventually heals drains cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Callable, Optional

import numpy as np

from repro.net.endpoint import (
    CrashedEndpointError,
    Endpoint,
    Handler,
    RequestTimeout,
)
from repro.net.message import Message
from repro.sim.process import Process

#: tag for session control traffic (probes); never counted as update
#: traffic — Fig. 6's accounting must not change when reliability is on.
#: Canonically declared in the protocol registry.
from repro.net.protocol import TAG_RELIABLE  # noqa: F401


@dataclass(frozen=True)
class ReliabilityParams:
    """Tuning knobs for the robustness layer (sessions *and* leases).

    Attributes
    ----------
    ack_timeout:
        Initial wait for an ack before the first retransmission.
    backoff:
        Multiplier applied to the timeout after each unacked attempt.
    jitter:
        Each retransmission waits an extra ``uniform(0, jitter × timeout)``
        drawn from the site's rng stream, de-synchronising retry storms.
    max_attempts:
        Transmissions (first send + retries) before switching to probing.
    probe_interval:
        Idle time between probe attempts (and between liveness re-checks
        while the sender itself is crashed).
    lease_timeout:
        How long a grantor holds granted-but-unacked AV under a lease
        before probing the holder (see :mod:`repro.core.leases`). Must
        comfortably exceed the maximum one-way latency so a probe can
        never overtake the grant it asks about.
    """

    ack_timeout: float = 6.0
    backoff: float = 2.0
    jitter: float = 0.5
    max_attempts: int = 5
    probe_interval: float = 15.0
    lease_timeout: float = 40.0

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0 or self.probe_interval <= 0:
            raise ValueError("ack_timeout and probe_interval must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")


class ReliableSession:
    """Ack/retransmit/dedup layer for one endpoint.

    Parameters
    ----------
    endpoint:
        The owning endpoint; ``rel.probe`` is registered on it.
    rng:
        The site's rng stream (retransmission jitter).
    params:
        See :class:`ReliabilityParams`.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        rng: np.random.Generator,
        params: Optional[ReliabilityParams] = None,
    ) -> None:
        self.endpoint = endpoint
        self.env = endpoint.env
        self.rng = rng
        self.params = params if params is not None else ReliabilityParams()
        #: next outbound sequence number, per destination
        self._seq: dict[str, count] = {}
        #: sequence numbers seen, per source (dedup + probe answers)
        self._seen: dict[str, set[int]] = {}
        #: diagnostics
        self.delivered = 0
        self.undelivered = 0
        self.retransmissions = 0
        self.probes = 0
        self.dups_suppressed = 0
        endpoint.on("rel.probe", self._handle_probe)

    # ---------------------------------------------------------------- #
    # receiver side
    # ---------------------------------------------------------------- #

    def on(self, kind: str, handler: Handler) -> None:
        """Register ``handler`` behind duplicate suppression.

        The wrapped handler marks ``(src, seq)`` as seen *before* the
        inner handler runs — within the same delivery step, so a probe
        arriving any later observes the truth. Duplicates are
        acknowledged (the sender needs the ack) without re-invoking the
        handler. Messages without a ``_rel`` envelope (a peer running
        without the reliability layer) pass straight through.
        """

        def wrapped(msg: Message) -> Any:
            rel = msg.payload.get("_rel") if isinstance(msg.payload, dict) else None
            if rel is None:
                return handler(msg)
            seen = self._seen.setdefault(msg.src, set())
            if rel["seq"] in seen:
                self.dups_suppressed += 1
                return {"dup": True}
            seen.add(rel["seq"])
            return handler(msg)

        self.endpoint.on(kind, wrapped)

    def _handle_probe(self, msg: Message) -> dict:
        """Answer whether the given sender sequence number ever arrived.

        Definitive by FIFO: every copy of the probed message travelled
        the same directed channel before this probe did.
        """
        return {"seen": msg.payload["seq"] in self._seen.get(msg.src, ())}

    def seen_from(self, src: str, seq: int) -> bool:
        """Local dedup-table lookup (test/diagnostic helper)."""
        return seq in self._seen.get(src, ())

    # ---------------------------------------------------------------- #
    # sender side
    # ---------------------------------------------------------------- #

    def deliver(
        self, dst: str, kind: str, payload: dict, tag: str = ""
    ) -> Process:
        """Start a reliable delivery; the process returns ``True``/``False``.

        ``True`` means the receiver processed (or deduplicated) the
        message; ``False`` is the probe's definitive "never arrived" —
        the caller may safely resend the content under a new delivery.
        The process only completes once the outcome is certain, waiting
        out sender crashes and unreachable receivers along the way.
        """
        seq = next(self._seq.setdefault(dst, count(1)))
        payload = dict(payload)
        payload["_rel"] = {"seq": seq}
        return self.env.process(
            self._deliver(dst, kind, payload, tag, seq),
            name=f"{self.endpoint.name}.rel.{kind}->{dst}#{seq}",
        )

    def _deliver(self, dst: str, kind: str, payload: dict, tag: str, seq: int):
        params = self.params
        timeout = params.ack_timeout
        attempts = 0
        while attempts < params.max_attempts:
            if self.endpoint.crashed:
                # We are isolated; the delivery is ambiguous until we
                # return and can talk to the receiver again.
                yield self.env.timeout(params.probe_interval)
                continue
            attempts += 1
            if attempts > 1:
                self.retransmissions += 1
            try:
                yield self.endpoint.request(
                    dst, kind, payload, tag=tag, timeout=timeout
                )
            except RequestTimeout:
                # Exponential backoff with jitter before the next copy.
                if params.jitter > 0:
                    yield self.env.timeout(
                        float(self.rng.uniform(0.0, params.jitter * timeout))
                    )
                timeout *= params.backoff
                continue
            except CrashedEndpointError:
                attempts -= 1
                yield self.env.timeout(params.probe_interval)
                continue
            self.delivered += 1
            return True

        # Retry budget exhausted: determine the outcome by probing. All
        # copies were sent before the first probe on the same FIFO
        # channel, so the receiver's answer is final.
        while True:
            if self.endpoint.crashed:
                yield self.env.timeout(params.probe_interval)
                continue
            try:
                reply = yield self.endpoint.request(
                    dst,
                    "rel.probe",
                    {"seq": seq},
                    tag=TAG_RELIABLE,
                    timeout=params.ack_timeout,
                )
            except RequestTimeout:
                self.probes += 1
                yield self.env.timeout(
                    params.probe_interval
                    + float(self.rng.uniform(0.0, params.jitter * params.probe_interval))
                )
                continue
            except CrashedEndpointError:
                yield self.env.timeout(params.probe_interval)
                continue
            self.probes += 1
            if reply["seen"]:
                self.delivered += 1
                return True
            self.undelivered += 1
            return False

    def __repr__(self) -> str:
        return (
            f"<ReliableSession {self.endpoint.name!r}"
            f" delivered={self.delivered} retx={self.retransmissions}"
            f" dups={self.dups_suppressed}>"
        )
