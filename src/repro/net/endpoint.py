"""Endpoints: named parties that exchange messages over the network.

An endpoint dispatches incoming messages to registered *handlers* by
``kind``. A handler may

* return a plain value — sent back immediately when the message expects a
  reply;
* return a generator — spawned as a simulation process whose return value
  becomes the reply (this is how multi-step protocol handlers run).

The request/reply helper hides correlation ids: ``reply = yield
endpoint.request(dst, kind, payload)`` reads like an RPC while every
message is still individually transmitted, latency-delayed, and counted.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Callable, Optional

from repro.net.message import Message
from repro.net.network import Network
from repro.sim.events import Event

Handler = Callable[[Message], Any]


class RequestTimeout(Exception):
    """Failure value of a request event whose reply did not arrive in time."""

    def __init__(self, msg: Message, timeout: float) -> None:
        super().__init__(f"no reply to {msg} within {timeout}")
        self.request = msg
        self.timeout = timeout


class CrashedEndpointError(Exception):
    """Raised when a crashed endpoint attempts to communicate."""


class Endpoint:
    """One network party (a *site* in the paper's terms).

    Construction registers the endpoint with the network.
    """

    def __init__(self, network: Network, name: str) -> None:
        self.network = network
        self.name = name
        self.env = network.env
        self._handlers: dict[str, Handler] = {}
        self._pending: dict[int, Event] = {}
        #: count of handler invocations by kind (diagnostic)
        self.handled: dict[str, int] = {}
        self._peers_cache: list[str] = []
        self._peers_version = -1
        network.register(self)

    def __repr__(self) -> str:
        return f"<Endpoint {self.name!r}>"

    @property
    def crashed(self) -> bool:
        return self.network.faults.is_crashed(self.name)

    def peers(self) -> list[str]:
        """All other endpoint names (cached; callers must not mutate).

        Rebuilt only when the network has registered new endpoints since
        the last call — the registration set never shrinks, so the
        version check is exact. This sits on the per-update hot path
        (peer selection, fan-out, 2PC participant lists).
        """
        if self._peers_version != self.network.registrations:
            self._peers_cache = [
                n for n in self.network.names() if n != self.name
            ]
            self._peers_version = self.network.registrations
        return self._peers_cache

    # ---------------------------------------------------------------- #
    # handler registration
    # ---------------------------------------------------------------- #

    def on(self, kind: str, handler: Handler) -> None:
        """Register ``handler`` for messages of ``kind`` (one per kind)."""
        if kind in self._handlers:
            raise ValueError(f"handler for {kind!r} already registered on {self.name}")
        self._handlers[kind] = handler

    def handler(self, kind: str) -> Callable[[Handler], Handler]:
        """Decorator form of :meth:`on`."""

        def decorate(fn: Handler) -> Handler:
            self.on(kind, fn)
            return fn

        return decorate

    # ---------------------------------------------------------------- #
    # sending
    # ---------------------------------------------------------------- #

    def send(self, dst: str, kind: str, payload: Any = None, tag: str = "") -> None:
        """Fire-and-forget one-way message."""
        if self.crashed:
            raise CrashedEndpointError(f"{self.name} is crashed")
        self.network.send(
            Message(
                src=self.name,
                dst=dst,
                kind=kind,
                payload=payload,
                tag=tag,
                msg_id=self.network.next_msg_id(),
            )
        )

    def request(
        self,
        dst: str,
        kind: str,
        payload: Any = None,
        tag: str = "",
        timeout: Optional[float] = None,
    ) -> Event:
        """Send a request; returns an event that succeeds with the reply.

        With ``timeout`` set, the event instead *fails* with
        :class:`RequestTimeout` if no reply arrives in time — the caller
        handles it with ``try:/except RequestTimeout:`` around the yield.
        """
        if self.crashed:
            raise CrashedEndpointError(f"{self.name} is crashed")
        msg = Message(
            src=self.name,
            dst=dst,
            kind=kind,
            payload=payload,
            tag=tag,
            expects_reply=True,
            msg_id=self.network.next_msg_id(),
        )
        result = Event(self.env)
        self._pending[msg.msg_id] = result
        self.network.send(msg)

        if timeout is not None:
            from repro.sim.events import LATE

            # The deadline runs at LATE priority so a reply delivered at
            # exactly t+timeout still wins the tie.
            deadline = Event(self.env)
            deadline._ok, deadline._value = True, None

            def expire(_ev: Event, msg=msg, timeout=timeout) -> None:
                if not result.triggered:
                    self._pending.pop(msg.msg_id, None)
                    result.fail(RequestTimeout(msg, timeout))

            deadline.callbacks.append(expire)
            self.env.schedule(deadline, priority=LATE, delay=timeout)
        return result

    def reply(self, to: Message, payload: Any = None) -> None:
        """Send the reply to a request message."""
        if self.crashed:
            raise CrashedEndpointError(f"{self.name} is crashed")
        self.network.send(
            Message(
                src=self.name,
                dst=to.src,
                kind=f"{to.kind}.reply",
                payload=payload,
                tag=to.tag,
                reply_to=to.msg_id,
                msg_id=self.network.next_msg_id(),
            )
        )

    # ---------------------------------------------------------------- #
    # receiving
    # ---------------------------------------------------------------- #

    def _receive(self, msg: Message) -> None:
        if msg.is_reply:
            waiter = self._pending.pop(msg.reply_to, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(msg.payload)
            return

        handler = self._handlers.get(msg.kind)
        if handler is None:
            raise LookupError(
                f"endpoint {self.name!r} has no handler for {msg.kind!r}"
            )
        self.handled[msg.kind] = self.handled.get(msg.kind, 0) + 1
        outcome = handler(msg)

        if isinstance(outcome, GeneratorType):
            proc = self.env.process(outcome, name=f"{self.name}.{msg.kind}")
            if msg.expects_reply:
                proc.callbacks.append(
                    lambda ev, m=msg: self.reply(m, ev.value) if ev.ok else None
                )
        elif msg.expects_reply:
            self.reply(msg, outcome)
