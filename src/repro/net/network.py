"""The simulated message-passing network.

:class:`Network` connects named endpoints over directed FIFO channels with
a pluggable latency model, counts every transmitted message (the paper's
metric), and consults a :class:`~repro.net.faults.FaultInjector` on each
send. Delivery is an event scheduled on the simulation environment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.net.channel import ChannelTable
from repro.net.faults import FaultInjector
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.net.stats import NetworkStats
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.sim.tracing import NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.endpoint import Endpoint


class EndpointNotFound(KeyError):
    """Raised when sending to an unregistered endpoint name."""


class Network:
    """Message fabric between endpoints.

    Parameters
    ----------
    env:
        Simulation environment the network schedules deliveries on.
    latency:
        One-way delay model (default: constant 1 time unit).
    rng:
        Generator used for latency sampling and probabilistic drops.
        Required: pass a dedicated :class:`~repro.sim.rng.RngRegistry`
        stream (e.g. ``rngs.stream("net.latency")``). There is
        deliberately no seeded default — two networks in one simulation
        would silently share stream 0.
    tracer:
        Receives ``msg.send`` / ``msg.drop`` / ``msg.recv`` records.
    fifo:
        Enforce per-directed-pair in-order delivery (default ``True``).
    faults:
        Fault injector; a benign one is created if omitted.
    perturb:
        Optional delivery perturbation hook for schedule-space fuzzing
        (see :mod:`repro.testkit`): called as ``perturb(msg, delay) ->
        delay`` on every non-dropped send, *before* the per-pair FIFO
        clamp — so jittered latencies reorder deliveries across pairs
        but can never violate the per-channel ordering the reliable
        session and lease probes depend on. Must be deterministic given
        its own seed.
    """

    def __init__(
        self,
        env: Environment,
        latency: Optional[LatencyModel] = None,
        rng: Optional[np.random.Generator] = None,
        tracer: Optional[Tracer] = None,
        fifo: bool = True,
        faults: Optional[FaultInjector] = None,
        size_model=None,
        perturb=None,
    ) -> None:
        self.env = env
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        if rng is None:
            raise ValueError(
                "Network requires an explicit rng stream"
                " (e.g. RngRegistry(seed).stream('net.latency'))"
            )
        self.rng = rng
        self.tracer = tracer if tracer is not None else NullTracer()
        self.stats = NetworkStats()
        self.channels = ChannelTable(fifo=fifo)
        self.faults = faults if faults is not None else FaultInjector(rng=self.rng)
        self.perturb = perturb
        #: optional repro.net.sizes.SizeModel enabling byte accounting
        self.size_model = size_model
        self._endpoints: dict[str, "Endpoint"] = {}
        #: bumped on every registration — endpoints key their cached
        #: peer views on this (the set only grows; there is no
        #: unregister, so a version match proves the cache is current)
        self.registrations = 0
        #: observers called as ``fn(event, time, msg)`` for every
        #: ``"send"`` / ``"recv"`` / ``"drop"`` — structured message
        #: taps for analysis tools (sequence diagrams etc.)
        self.observers: list = []
        # Per-network message ids: two identical runs in one process get
        # identical ids (the module-global fallback in Message does not).
        from itertools import count as _count

        self._msg_ids = _count(1)

    def _notify(self, event: str, msg: Message) -> None:
        for observer in self.observers:
            observer(event, self.env.now, msg)

    def next_msg_id(self) -> int:
        """Allocate the next message id for this network."""
        return next(self._msg_ids)

    # ---------------------------------------------------------------- #
    # topology
    # ---------------------------------------------------------------- #

    def register(self, endpoint: "Endpoint") -> None:
        """Attach an endpoint; names must be unique."""
        if endpoint.name in self._endpoints:
            raise ValueError(f"endpoint {endpoint.name!r} already registered")
        self._endpoints[endpoint.name] = endpoint
        self.registrations += 1

    def endpoint(self, name: str) -> "Endpoint":
        """Create, register and return a new endpoint called ``name``."""
        from repro.net.endpoint import Endpoint

        return Endpoint(self, name)

    def names(self) -> list[str]:
        """Registered endpoint names, in registration order."""
        return list(self._endpoints)

    def get(self, name: str) -> "Endpoint":
        try:
            return self._endpoints[name]
        except KeyError:
            raise EndpointNotFound(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._endpoints

    def __len__(self) -> int:
        return len(self._endpoints)

    # ---------------------------------------------------------------- #
    # transmission
    # ---------------------------------------------------------------- #

    def send(self, msg: Message) -> None:
        """Transmit ``msg``: count it, maybe drop it, else schedule delivery."""
        if msg.dst not in self._endpoints:
            raise EndpointNotFound(msg.dst)
        size = (
            self.size_model.message_size(msg)
            if self.size_model is not None
            else None
        )
        self.stats.record_send(msg, size=size)
        # str(msg) is costly on the per-message hot path; only render it
        # when a real tracer is attached. Same for the observer fan-out
        # and the fault verdict: both are skipped outright when no
        # observer is registered / no fault is active.
        if self.tracer.enabled:
            self.tracer.emit(self.env.now, "msg.send", msg.src, str(msg))
        if self.observers:
            self._notify("send", msg)

        faults = self.faults
        if not faults.quiet and faults.should_drop(msg.src, msg.dst):
            self.stats.record_drop(msg, size=size)
            if self.tracer.enabled:
                self.tracer.emit(self.env.now, "msg.drop", msg.src, str(msg))
            if self.observers:
                self._notify("drop", msg)
            return

        delay = self.latency.sample(msg.src, msg.dst, self.rng)
        if self.perturb is not None:
            delay = self.perturb(msg, delay)
            if delay < 0:
                raise ValueError(f"perturbation produced negative delay {delay}")
        when = self.channels.get(msg.src, msg.dst).delivery_time(self.env.now, delay)

        delivery = Event(self.env)
        delivery.callbacks.append(lambda _ev, m=msg: self._deliver(m))
        delivery._ok = True
        delivery._value = None
        self.env.schedule(delivery, delay=when - self.env.now)

    def _deliver(self, msg: Message) -> None:
        endpoint = self._endpoints.get(msg.dst)
        if endpoint is None:  # pragma: no cover - unregister race
            return
        faults = self.faults
        if not faults.quiet and faults.is_crashed(msg.dst):
            # Crashed while the message was in flight.
            size = (
                self.size_model.message_size(msg)
                if self.size_model is not None
                else None
            )
            self.stats.record_drop(msg, size=size)
            if self.tracer.enabled:
                self.tracer.emit(self.env.now, "msg.drop", msg.dst, str(msg))
            self._notify("drop", msg)
            return
        if self.tracer.enabled:
            self.tracer.emit(self.env.now, "msg.recv", msg.dst, str(msg))
        if self.observers:
            self._notify("recv", msg)
        endpoint._receive(msg)

    def __repr__(self) -> str:
        return (
            f"<Network endpoints={len(self._endpoints)}"
            f" sent={self.stats.sent_total} latency={self.latency!r}>"
        )
