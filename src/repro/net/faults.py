"""Fault injection for the simulated network.

The paper claims the autonomous approach keeps retailers operating through
maker failures ("fault tolerance"). :class:`FaultInjector` provides the
three fault classes the experiments use:

* **site crash** — a crashed endpoint neither sends nor receives;
* **network partition** — messages crossing partition groups are dropped;
* **probabilistic message loss** — per-message Bernoulli drop.

All methods may be called mid-simulation; effects apply to messages sent
after the call (in-flight messages are delivered — links have memory).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np


class FaultInjector:
    """Mutable fault state consulted by the network on every send."""

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        drop_probability: float = 0.0,
    ) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(f"drop_probability {drop_probability} not in [0, 1]")
        self._crashed: set[str] = set()
        self._partition: Optional[dict[str, int]] = None
        self.drop_probability = drop_probability
        self._rng = rng
        #: counters for reporting
        self.crashes_injected = 0
        self.messages_dropped = 0

    # ---------------------------------------------------------------- #
    # crash / recover
    # ---------------------------------------------------------------- #

    def crash(self, site: str) -> None:
        """Mark ``site`` as crashed (idempotent)."""
        if site not in self._crashed:
            self._crashed.add(site)
            self.crashes_injected += 1

    def recover(self, site: str) -> None:
        """Bring ``site`` back (idempotent)."""
        self._crashed.discard(site)

    def is_crashed(self, site: str) -> bool:
        return site in self._crashed

    @property
    def crashed_sites(self) -> frozenset[str]:
        return frozenset(self._crashed)

    # ---------------------------------------------------------------- #
    # partitions
    # ---------------------------------------------------------------- #

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network into isolated groups.

        Sites not mentioned in any group form an implicit extra group
        together (group index ``-1``).
        """
        mapping: dict[str, int] = {}
        for idx, group in enumerate(groups):
            for site in group:
                if site in mapping:
                    raise ValueError(f"site {site!r} listed in two groups")
                mapping[site] = idx
        self._partition = mapping

    def heal(self) -> None:
        """Remove any partition."""
        self._partition = None

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def same_partition(self, a: str, b: str) -> bool:
        if self._partition is None:
            return True
        return self._partition.get(a, -1) == self._partition.get(b, -1)

    # ---------------------------------------------------------------- #
    # verdict
    # ---------------------------------------------------------------- #

    def should_drop(self, src: str, dst: str) -> bool:
        """Decide whether a message from ``src`` to ``dst`` is lost now."""
        if src in self._crashed or dst in self._crashed:
            self.messages_dropped += 1
            return True
        if not self.same_partition(src, dst):
            self.messages_dropped += 1
            return True
        if self.drop_probability > 0.0:
            if self._rng is None:
                raise RuntimeError(
                    "drop_probability > 0 requires an rng at construction"
                )
            if self._rng.random() < self.drop_probability:
                self.messages_dropped += 1
                return True
        return False

    def __repr__(self) -> str:
        return (
            f"<FaultInjector crashed={sorted(self._crashed)}"
            f" partitioned={self.partitioned}"
            f" p_drop={self.drop_probability}>"
        )
