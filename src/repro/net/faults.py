"""Fault injection for the simulated network.

The paper claims the autonomous approach keeps retailers operating through
maker failures ("fault tolerance"). :class:`FaultInjector` provides the
three fault classes the experiments use:

* **site crash** — a crashed endpoint neither sends nor receives;
* **network partition** — messages crossing partition groups are dropped;
* **probabilistic message loss** — per-message Bernoulli drop, globally
  or per directed link (overrides the global rate);
* **link outage** — a directed link drops everything (flapping links
  alternate outage and service).

All methods may be called mid-simulation; effects apply to messages sent
after the call (in-flight messages are delivered — links have memory).

:class:`FaultSchedule` is the declarative layer on top: a builder of
timed fault steps (crash/recover/partition/heal/drop-rate/link faults)
installed as one simulation process, replacing ad-hoc per-experiment
crasher generators.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np


class FaultInjector:
    """Mutable fault state consulted by the network on every send."""

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        drop_probability: float = 0.0,
    ) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(f"drop_probability {drop_probability} not in [0, 1]")
        self._crashed: set[str] = set()
        self._partition: Optional[dict[str, int]] = None
        self._drop_probability = drop_probability
        #: per-directed-link drop probability, overriding the global rate
        self._link_drop: dict[tuple[str, str], float] = {}
        #: directed links currently down (flapping, cable pulls)
        self._down_links: set[tuple[str, str]] = set()
        self._rng = rng
        #: counters for reporting
        self.crashes_injected = 0
        self.messages_dropped = 0
        #: no fault of any kind active — senders may skip the per-message
        #: drop verdict entirely. Maintained by every mutator (a plain
        #: attribute, not a property: it is read once per message).
        self.quiet = drop_probability == 0.0

    def _refresh_quiet(self) -> None:
        self.quiet = not (
            self._crashed
            or self._partition is not None
            or self._down_links
            or self._link_drop
            or self._drop_probability > 0.0
        )

    @property
    def drop_probability(self) -> float:
        """Global Bernoulli loss rate (assignment keeps ``quiet`` honest)."""
        return self._drop_probability

    @drop_probability.setter
    def drop_probability(self, probability: float) -> None:
        self._drop_probability = probability
        self._refresh_quiet()

    # ---------------------------------------------------------------- #
    # crash / recover
    # ---------------------------------------------------------------- #

    def crash(self, site: str) -> None:
        """Mark ``site`` as crashed (idempotent)."""
        if site not in self._crashed:
            self._crashed.add(site)
            self.crashes_injected += 1
            self.quiet = False

    def recover(self, site: str) -> None:
        """Bring ``site`` back (idempotent)."""
        self._crashed.discard(site)
        self._refresh_quiet()

    def is_crashed(self, site: str) -> bool:
        return site in self._crashed

    @property
    def any_crashed(self) -> bool:
        """Whether any site is currently down (cheap hot-path gate)."""
        return bool(self._crashed)

    @property
    def crashed_sites(self) -> frozenset[str]:
        return frozenset(self._crashed)

    # ---------------------------------------------------------------- #
    # partitions
    # ---------------------------------------------------------------- #

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network into isolated groups.

        Sites not mentioned in any group form an implicit extra group
        together (group index ``-1``).
        """
        mapping: dict[str, int] = {}
        for idx, group in enumerate(groups):
            for site in group:
                if site in mapping:
                    raise ValueError(f"site {site!r} listed in two groups")
                mapping[site] = idx
        self._partition = mapping
        self.quiet = False

    def heal(self) -> None:
        """Remove any partition."""
        self._partition = None
        self._refresh_quiet()

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def same_partition(self, a: str, b: str) -> bool:
        if self._partition is None:
            return True
        return self._partition.get(a, -1) == self._partition.get(b, -1)

    # ---------------------------------------------------------------- #
    # link faults
    # ---------------------------------------------------------------- #

    def set_drop_probability(self, probability: float) -> None:
        """Change the global Bernoulli loss rate mid-run."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"drop_probability {probability} not in [0, 1]")
        self.drop_probability = probability  # property setter refreshes quiet

    def set_link_drop(self, src: str, dst: str, probability: float) -> None:
        """Override the loss rate of the directed ``src → dst`` link."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"link drop {probability} not in [0, 1]")
        self._link_drop[(src, dst)] = probability
        self._refresh_quiet()

    def clear_link_drop(self, src: str, dst: str) -> None:
        """Remove a per-link override; the global rate applies again."""
        self._link_drop.pop((src, dst), None)
        self._refresh_quiet()

    def link_down(self, src: str, dst: str) -> None:
        """Take the directed ``src → dst`` link down (idempotent)."""
        self._down_links.add((src, dst))
        self.quiet = False

    def link_up(self, src: str, dst: str) -> None:
        """Restore a downed link (idempotent)."""
        self._down_links.discard((src, dst))
        self._refresh_quiet()

    def clear_link_faults(self) -> None:
        """Drop every per-link override and outage (chaos heal phase)."""
        self._link_drop.clear()
        self._down_links.clear()
        self._refresh_quiet()

    def link_is_down(self, src: str, dst: str) -> bool:
        return (src, dst) in self._down_links

    # ---------------------------------------------------------------- #
    # verdict
    # ---------------------------------------------------------------- #

    def should_drop(self, src: str, dst: str) -> bool:
        """Decide whether a message from ``src`` to ``dst`` is lost now."""
        if src in self._crashed or dst in self._crashed:
            self.messages_dropped += 1
            return True
        if not self.same_partition(src, dst):
            self.messages_dropped += 1
            return True
        if (src, dst) in self._down_links:
            self.messages_dropped += 1
            return True
        probability = self._link_drop.get((src, dst), self._drop_probability)
        if probability > 0.0:
            if self._rng is None:
                raise RuntimeError(
                    "drop_probability > 0 requires an rng at construction"
                )
            if self._rng.random() < probability:
                self.messages_dropped += 1
                return True
        return False

    def __repr__(self) -> str:
        return (
            f"<FaultInjector crashed={sorted(self._crashed)}"
            f" partitioned={self.partitioned}"
            f" p_drop={self.drop_probability}"
            f" link_faults={len(self._link_drop) + len(self._down_links)}>"
        )


@dataclass(frozen=True)
class FaultStep:
    """One timed action in a :class:`FaultSchedule`."""

    time: float
    action: str
    args: tuple

    def __str__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"t={self.time:g} {self.action}({inner})"


class FaultSchedule:
    """Declarative, timed fault scenario.

    A chainable builder: each method appends a step, ``install`` spawns
    one process that sleeps between steps and applies them in time order
    (insertion order breaks ties). ``on_recover`` lets the harness hook
    site recovery — the chaos harness passes ``Site.restart`` so a
    recovery runs the full crash-recovery rejoin instead of merely
    clearing the crash flag.

    >>> schedule = (FaultSchedule()
    ...             .crash(100.0, "site0")
    ...             .recover(400.0, "site0")
    ...             .drop(0.0, 0.05))
    """

    def __init__(self) -> None:
        self._steps: list[FaultStep] = []

    # -- builders ---------------------------------------------------- #

    def _add(self, time: float, action: str, *args) -> "FaultSchedule":
        if time < 0:
            raise ValueError(f"negative step time {time}")
        self._steps.append(FaultStep(time, action, args))
        return self

    def crash(self, time: float, site: str) -> "FaultSchedule":
        return self._add(time, "crash", site)

    def recover(self, time: float, site: str) -> "FaultSchedule":
        """Recover ``site`` (through ``install``'s ``on_recover`` hook)."""
        return self._add(time, "recover", site)

    def partition(self, time: float, *groups: Iterable[str]) -> "FaultSchedule":
        return self._add(time, "partition", tuple(tuple(g) for g in groups))

    def heal(self, time: float) -> "FaultSchedule":
        return self._add(time, "heal")

    def drop(self, time: float, probability: float) -> "FaultSchedule":
        """Set the global loss rate at ``time``."""
        return self._add(time, "drop", probability)

    def link_drop(
        self, time: float, src: str, dst: str, probability: Optional[float]
    ) -> "FaultSchedule":
        """Override one directed link's loss rate (``None`` clears it)."""
        return self._add(time, "link_drop", src, dst, probability)

    def link_down(self, time: float, src: str, dst: str) -> "FaultSchedule":
        return self._add(time, "link_down", src, dst)

    def link_up(self, time: float, src: str, dst: str) -> "FaultSchedule":
        return self._add(time, "link_up", src, dst)

    def flap(
        self,
        src: str,
        dst: str,
        start: float,
        end: float,
        period: float,
        both_ways: bool = True,
    ) -> "FaultSchedule":
        """Alternate link outage/service every ``period/2`` in a window.

        Expands into explicit down/up steps and always ends with the
        link up at ``end``.
        """
        if period <= 0:
            raise ValueError("flap period must be positive")
        if end <= start:
            raise ValueError("flap window must have positive length")
        t = start
        down = True
        while t < end:
            action = "link_down" if down else "link_up"
            self._add(t, action, src, dst)
            if both_ways:
                self._add(t, action, dst, src)
            down = not down
            t += period / 2.0
        self._add(end, "link_up", src, dst)
        if both_ways:
            self._add(end, "link_up", dst, src)
        return self

    # -- inspection --------------------------------------------------- #

    @property
    def steps(self) -> list[FaultStep]:
        """Steps in application order (time, then insertion order)."""
        return sorted(self._steps, key=lambda s: s.time)

    def copy(self) -> "FaultSchedule":
        """An independent deep copy (mutation-safe for fuzzing).

        The fuzzer mutates schedules between runs; sharing step storage
        across tasks would let one task's mutation silently rewrite
        another task's scenario.
        """
        clone = FaultSchedule()
        clone._steps = _copy.deepcopy(self._steps)
        return clone

    def to_specs(self) -> list:
        """Plain-data form ``[[time, action, [args...]], ...]``.

        JSON-serialisable (tuples become lists); :meth:`from_specs`
        round-trips it. Steps are listed in application order.
        """

        def plain(value):
            if isinstance(value, tuple):
                return [plain(v) for v in value]
            return value

        return [[s.time, s.action, plain(list(s.args))] for s in self.steps]

    @classmethod
    def from_specs(cls, specs: Iterable) -> "FaultSchedule":
        """Rebuild a schedule written by :meth:`to_specs`.

        Nested lists (partition groups) are re-frozen to tuples so the
        rebuilt steps compare equal to the originals.
        """

        def frozen(value):
            if isinstance(value, list):
                return tuple(frozen(v) for v in value)
            return value

        schedule = cls()
        for time, action, args in specs:
            schedule._add(float(time), str(action), *[frozen(a) for a in args])
        return schedule

    @property
    def last_time(self) -> float:
        """Time of the final step (0.0 for an empty schedule)."""
        return max((s.time for s in self._steps), default=0.0)

    def __len__(self) -> int:
        return len(self._steps)

    # -- execution ---------------------------------------------------- #

    def install(
        self,
        env,
        faults: FaultInjector,
        on_recover: Optional[Callable[[str], None]] = None,
    ):
        """Spawn the process that applies the steps; returns it.

        ``on_recover(site)`` replaces the plain ``faults.recover`` for
        recover steps (it is then responsible for clearing the crash
        flag — :meth:`repro.cluster.site.Site.restart` does).

        The step list is deep-copied at install time: mutating the
        builder afterwards (the fuzzer does, between runs) cannot alias
        the schedule a running simulation already executes.
        """
        steps = _copy.deepcopy(self.steps)

        def runner():
            for step in steps:
                if step.time > env.now:
                    yield env.timeout(step.time - env.now)
                self._apply(step, faults, on_recover)

        return env.process(runner(), name="fault.schedule")

    @staticmethod
    def _apply(
        step: FaultStep,
        faults: FaultInjector,
        on_recover: Optional[Callable[[str], None]],
    ) -> None:
        if step.action == "crash":
            faults.crash(step.args[0])
        elif step.action == "recover":
            if on_recover is not None:
                on_recover(step.args[0])
            else:
                faults.recover(step.args[0])
        elif step.action == "partition":
            faults.partition(step.args[0])
        elif step.action == "heal":
            faults.heal()
        elif step.action == "drop":
            faults.set_drop_probability(step.args[0])
        elif step.action == "link_drop":
            src, dst, probability = step.args
            if probability is None:
                faults.clear_link_drop(src, dst)
            else:
                faults.set_link_drop(src, dst, probability)
        elif step.action == "link_down":
            faults.link_down(step.args[0], step.args[1])
        elif step.action == "link_up":
            faults.link_up(step.args[0], step.args[1])
        else:  # pragma: no cover - builder methods are the only writers
            raise ValueError(f"unknown fault action {step.action!r}")

    def __repr__(self) -> str:
        return f"<FaultSchedule {len(self._steps)} steps last_t={self.last_time:g}>"
