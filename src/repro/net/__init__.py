"""Simulated network substrate: endpoints, channels, latency, faults, stats."""

from repro.net.channel import Channel, ChannelTable
from repro.net.endpoint import CrashedEndpointError, Endpoint, RequestTimeout
from repro.net.faults import FaultInjector, FaultSchedule, FaultStep
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    LognormalLatency,
    PairwiseLatency,
    UniformLatency,
)
from repro.net.message import Message
from repro.net.network import EndpointNotFound, Network
from repro.net.reliable import TAG_RELIABLE, ReliabilityParams, ReliableSession
from repro.net.sizes import DEFAULT_HEADER_BYTES, SizeModel
from repro.net.stats import (
    MESSAGES_PER_CORRESPONDENCE,
    NetworkStats,
    correspondences,
)

__all__ = [
    "Channel",
    "ChannelTable",
    "ConstantLatency",
    "CrashedEndpointError",
    "Endpoint",
    "EndpointNotFound",
    "FaultInjector",
    "FaultSchedule",
    "FaultStep",
    "LatencyModel",
    "LognormalLatency",
    "MESSAGES_PER_CORRESPONDENCE",
    "Message",
    "Network",
    "NetworkStats",
    "PairwiseLatency",
    "ReliabilityParams",
    "ReliableSession",
    "RequestTimeout",
    "SizeModel",
    "TAG_RELIABLE",
    "DEFAULT_HEADER_BYTES",
    "UniformLatency",
    "correspondences",
]
