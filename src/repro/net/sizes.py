"""Message size estimation.

The paper counts *messages*; real deployments also care about *bytes*.
:class:`SizeModel` assigns each message a deterministic wire size from a
simple self-describing encoding model (close to what a compact binary
codec like CBOR/msgpack would produce), so experiments can report a
bytes axis without actually serialising anything. Plug a model into
:class:`~repro.net.network.Network` via ``size_model=`` and the stats
gain ``bytes_*`` counters.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message

#: fixed per-message envelope: src/dst ids, kind tag, msg id, flags
DEFAULT_HEADER_BYTES = 24


@lru_cache(maxsize=65536)
def _str_size(value: str) -> int:
    """Encoded size of one string (length prefix + UTF-8 bytes).

    Payload dict keys and item/site names come from a small vocabulary
    that repeats on every message, so this is the sizing hot path; the
    cache turns a per-call UTF-8 encode into a dict lookup.
    """
    return 2 + len(value.encode("utf-8"))


class SizeModel:
    """Deterministic wire-size estimator.

    Parameters
    ----------
    header_bytes:
        Fixed envelope overhead added to every message.
    """

    def __init__(self, header_bytes: int = DEFAULT_HEADER_BYTES) -> None:
        if header_bytes < 0:
            raise ValueError("negative header size")
        self.header_bytes = header_bytes

    def payload_size(self, payload: Any) -> int:
        """Estimated encoded size of a payload value, in bytes."""
        if payload is None:
            return 1
        if isinstance(payload, bool):
            return 1
        if isinstance(payload, (int, float)):
            return 8
        if isinstance(payload, str):
            return _str_size(payload)
        if isinstance(payload, bytes):
            return 2 + len(payload)
        if isinstance(payload, dict):
            return 2 + sum(
                self.payload_size(k) + self.payload_size(v)
                for k, v in payload.items()
            )
        if isinstance(payload, (list, tuple, set, frozenset)):
            return 2 + sum(self.payload_size(v) for v in payload)
        raise TypeError(
            f"cannot size payload of type {type(payload).__name__}"
        )

    def message_size(self, msg: "Message") -> int:
        """Total wire size of a message (envelope + payload)."""
        return self.header_bytes + self.payload_size(msg.payload)

    def __repr__(self) -> str:
        return f"<SizeModel header={self.header_bytes}B>"
