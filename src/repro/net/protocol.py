"""The declarative protocol registry: every message kind, as a contract.

The accelerator protocol spans 20 dotted message kinds (plus the
derived ``*.reply`` family the request/reply machinery synthesises).
Until this module they existed only as string literals scattered across
``core/``, ``cluster/``, ``net/`` and ``workload/``. Here each kind is
declared once with

* its **direction** — which role talks to which (requester→grantor,
  coordinator→participant, rejoiner→base, client→center, …);
* its **payload schema** — required and optional keys at the send site
  (infrastructure keys ``_obs``/``_rel`` are implicitly allowed on any
  dict payload);
* its **reply schema** — keys the handler's reply dict must/'s allowed
  to carry, for request-class kinds;
* its **pairing** — ``"request"`` (always sent through the RPC helper),
  ``"oneway"`` (fire-and-forget), or ``"mixed"`` (both, e.g.
  ``prop.push`` which is one-way bare but an acked request under the
  reliability layer);
* whether fault-aware senders are expected to pass a **timeout** (and
  therefore carry a ``RequestTimeout`` fallback);
* its accounting **tag** (the Fig. 6 message-count family).

Two consumers:

* the **protoflow static analyzer** (:mod:`repro.analysis.protoflow`)
  checks the whole source tree against this registry — undeclared
  kinds, schema drift, unpaired requests — so the registry can never
  silently rot;
* the planned **runtime-agnostic protocol core** (ROADMAP item 5) will
  use the same registry as the wire contract the asyncio runtime is
  verified against.

This module is intentionally dependency-free (stdlib only) so both
``net/`` and ``analysis/`` can import it without cycles. It is also the
single home of the ``TAG_*`` accounting constants; the historical
definition sites (``core.types``, ``core.reads``, …) re-export them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

# --------------------------------------------------------------------- #
# accounting tags (single source of truth; historical sites re-export)
# --------------------------------------------------------------------- #

TAG_AV = "av"            #: AV transfer traffic (Delay Update coordination)
TAG_IMMEDIATE = "imm"    #: Immediate Update (primary-copy 2PC) traffic
TAG_PROPAGATE = "prop"   #: asynchronous replica propagation
TAG_CENTRAL = "central"  #: conventional centralized baseline traffic
TAG_REBALANCE = "rebal"  #: proactive AV rebalancing pushes
TAG_READ = "read"        #: reconciled-read traffic
TAG_RECLASS = "cls"      #: reclassification (class-change) traffic
TAG_LEASE = "lease"      #: AV lease control traffic (acks, probes)
TAG_REJOIN = "rejoin"    #: crash-recovery rejoin control traffic
TAG_RELIABLE = "rel"     #: reliable-session control traffic (probes)
TAG_SCM = "scm"          #: supply-chain workload traffic (replenish)
TAG_OVERLOAD = "ovl"     #: overload-control traffic (degradation state)

#: infrastructure keys legal on any dict payload: ``_obs`` carries
#: cross-site span context, ``_rel`` the reliable-session envelope.
INFRA_KEYS: FrozenSet[str] = frozenset({"_obs", "_rel"})

#: suffix of the derived reply family (``Endpoint.reply`` synthesises
#: ``f"{request.kind}.reply"``; never declared or handled explicitly)
REPLY_SUFFIX = ".reply"

_KIND_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

PAIRINGS = ("request", "oneway", "mixed")


@dataclass(frozen=True)
class MessageSpec:
    """Declaration of one message kind.

    Attributes
    ----------
    kind:
        The dotted protocol verb (``"av.request"``). Lowercase dotted
        identifiers only; the ``.reply`` suffix is reserved for the
        derived reply family.
    direction:
        ``(sender_role, receiver_role)`` — documentation of who talks
        to whom; the roles come from the paper's vocabulary (site,
        coordinator, participant, maker, rejoiner, base, client,
        center, …).
    tag:
        Primary accounting tag (some kinds are occasionally re-tagged
        at the send site, e.g. a bounced ``av.push`` reuses the
        incoming tag; the registry names the canonical family).
    pairing:
        ``"request"`` | ``"oneway"`` | ``"mixed"`` (see module docs).
    required / optional:
        Payload keys the send site must / may write. An empty pair with
        ``payload_free=True`` means the payload is unconstrained (or
        ``None``).
    reply_required / reply_optional:
        Keys of the handler's reply dict (request-class kinds only).
        Both empty means the reply is a bare ack — the handler need not
        return a value.
    needs_timeout:
        ``True`` when fault-aware senders are expected to pass a
        ``timeout=`` (and carry the ``RequestTimeout`` fallback); the
        analyzer requires at least one such guarded send site.
    handler_required:
        ``False`` only for kinds consumed by machinery rather than a
        registered handler (none currently; the derived reply family is
        handled implicitly and never declared).
    doc:
        One-line description, rendered by the reporters.
    """

    kind: str
    direction: Tuple[str, str]
    tag: str
    pairing: str
    required: FrozenSet[str] = frozenset()
    optional: FrozenSet[str] = frozenset()
    reply_required: FrozenSet[str] = frozenset()
    reply_optional: FrozenSet[str] = frozenset()
    needs_timeout: bool = False
    handler_required: bool = True
    payload_free: bool = False
    doc: str = ""

    def __post_init__(self) -> None:
        if not _KIND_RE.match(self.kind):
            raise ValueError(f"malformed message kind {self.kind!r}")
        if self.kind.endswith(REPLY_SUFFIX):
            raise ValueError(
                f"{self.kind!r}: the {REPLY_SUFFIX!r} family is derived"
                " from request-class kinds, never declared"
            )
        if self.pairing not in PAIRINGS:
            raise ValueError(
                f"{self.kind!r}: pairing {self.pairing!r} not in {PAIRINGS}"
            )
        if len(self.direction) != 2 or not all(self.direction):
            raise ValueError(f"{self.kind!r}: direction must name both roles")
        if not self.tag:
            raise ValueError(f"{self.kind!r}: empty tag")
        overlap = self.required & self.optional
        if overlap:
            raise ValueError(
                f"{self.kind!r}: keys {sorted(overlap)} both required and optional"
            )
        reply_overlap = self.reply_required & self.reply_optional
        if reply_overlap:
            raise ValueError(
                f"{self.kind!r}: reply keys {sorted(reply_overlap)} both"
                " required and optional"
            )
        if self.pairing == "oneway" and (self.reply_required or self.reply_optional):
            raise ValueError(
                f"{self.kind!r}: oneway kinds cannot declare a reply schema"
            )
        bad = {
            k for k in (self.required | self.optional
                        | self.reply_required | self.reply_optional)
            if k in INFRA_KEYS
        }
        if bad:
            raise ValueError(
                f"{self.kind!r}: infrastructure keys {sorted(bad)} are"
                " implicit, never declared"
            )

    @property
    def is_request(self) -> bool:
        return self.pairing in ("request", "mixed")

    @property
    def reply_kind(self) -> Optional[str]:
        """Derived reply kind, for request-class kinds."""
        return self.kind + REPLY_SUFFIX if self.is_request else None

    @property
    def ack_only(self) -> bool:
        """True when the reply carries no data — a bare ack."""
        return self.is_request and not (self.reply_required or self.reply_optional)

    def declared_keys(self) -> FrozenSet[str]:
        return self.required | self.optional

    def declared_reply_keys(self) -> FrozenSet[str]:
        return self.reply_required | self.reply_optional


class ProtocolRegistry:
    """An immutable set of :class:`MessageSpec` declarations."""

    def __init__(self, specs: Iterable[MessageSpec]) -> None:
        self._specs: Dict[str, MessageSpec] = {}
        for spec in specs:
            if spec.kind in self._specs:
                raise ValueError(f"duplicate declaration of {spec.kind!r}")
            self._specs[spec.kind] = spec

    def __contains__(self, kind: str) -> bool:
        return kind in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self.kinds())

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted(self._specs))

    def spec(self, kind: str) -> MessageSpec:
        return self._specs[kind]

    def get(self, kind: str) -> Optional[MessageSpec]:
        return self._specs.get(kind)

    def reply_kinds(self) -> Tuple[str, ...]:
        """The derived ``*.reply`` family (request-class kinds only)."""
        return tuple(
            sorted(
                spec.reply_kind
                for spec in self._specs.values()
                if spec.reply_kind is not None
            )
        )

    def request_kind_of(self, reply_kind: str) -> Optional[str]:
        """Map a derived reply kind back to its request, if declared."""
        if not reply_kind.endswith(REPLY_SUFFIX):
            return None
        base = reply_kind[: -len(REPLY_SUFFIX)]
        spec = self._specs.get(base)
        return base if spec is not None and spec.is_request else None

    def tags(self) -> FrozenSet[str]:
        return frozenset(s.tag for s in self._specs.values())


def make_registry(specs: Iterable[MessageSpec]) -> ProtocolRegistry:
    """Validated construction (alias kept for symmetry with callers)."""
    return ProtocolRegistry(specs)


# --------------------------------------------------------------------- #
# the accelerator protocol, declared
# --------------------------------------------------------------------- #

def _spec(kind, direction, tag, pairing, **kw) -> MessageSpec:
    for key in ("required", "optional", "reply_required", "reply_optional"):
        if key in kw:
            kw[key] = frozenset(kw[key])
    return MessageSpec(kind=kind, direction=direction, tag=tag,
                       pairing=pairing, **kw)


PROTOCOL = make_registry([
    # ---- Delay Update: AV transfer + lazy propagation ---------------- #
    _spec(
        "av.request", ("requester", "grantor"), TAG_AV, "request",
        required={"item", "amount", "requester_av"},
        reply_required={"granted", "av_after"},
        reply_optional={"lease"},
        needs_timeout=True,
        doc="ask a believed-rich peer for AV cover (paper Fig. 4)",
    ),
    _spec(
        "av.pool.request", ("leaf", "aggregator"), TAG_AV, "request",
        required={"item", "amount", "requester_av"},
        reply_required={"granted", "av_after"},
        reply_optional={"lease"},
        needs_timeout=True,
        doc="hierarchical AV: a leaf asks its regional aggregator's pool"
            " before shopping peers (see docs/topology.md)",
    ),
    _spec(
        "av.pool.refill", ("aggregator", "supplier"), TAG_AV, "request",
        required={"item", "amount", "requester_av"},
        reply_required={"granted", "av_after"},
        reply_optional={"lease"},
        needs_timeout=True,
        doc="hierarchical AV: a dry aggregator tops up from its supply"
            " parent (maker or higher aggregator) before answering",
    ),
    _spec(
        "av.push", ("rebalancer", "site"), TAG_REBALANCE, "oneway",
        required={"item", "amount"},
        optional={"sender_av", "bounced", "lease"},
        doc="unsolicited AV transfer (proactive rebalancing, or a bounce)",
    ),
    _spec(
        "prop.push", ("site", "replica"), TAG_PROPAGATE, "mixed",
        required={"item", "delta"},
        reply_optional={"dup"},
        needs_timeout=True,
        doc="committed-delta propagation; an acked request under reliability",
    ),
    # ---- Immediate Update: primary-copy 2PC -------------------------- #
    _spec(
        "imm.prepare", ("coordinator", "participant"), TAG_IMMEDIATE, "request",
        required={"item", "delta", "token"},
        reply_required={"ready"},
        needs_timeout=True,
        doc="phase-1 lock + provisional apply; the reply is the vote",
    ),
    _spec(
        "imm.commit", ("coordinator", "participant"), TAG_IMMEDIATE, "request",
        required={"token"},
        reply_required={"done"},
        needs_timeout=True,
        doc="phase-2 commit decision (idempotent; resent under faults)",
    ),
    _spec(
        "imm.abort", ("coordinator", "participant"), TAG_IMMEDIATE, "request",
        required={"token"},
        reply_required={"done"},
        needs_timeout=True,
        doc="phase-2 abort decision (idempotent; resent under faults)",
    ),
    _spec(
        "imm.status", ("participant", "coordinator"), TAG_IMMEDIATE, "request",
        required={"token"},
        reply_required={"decision"},
        needs_timeout=True,
        doc="2PC termination protocol: learn a token's decision",
    ),
    _spec(
        "imm.snapshot", ("rejoiner", "primary"), TAG_IMMEDIATE, "request",
        payload_free=True,
        reply_required={"values"},
        reply_optional={"withheld"},
        needs_timeout=True,
        doc="pull non-regular values missed while crashed (in-doubt items withheld)",
    ),
    # ---- reclassification -------------------------------------------- #
    _spec(
        "cls.lock", ("coordinator", "participant"), TAG_RECLASS, "request",
        required={"item", "token"},
        reply_required={"unsynced"},
        doc="freeze + quiesce + canonical-order lock for a class change",
    ),
    _spec(
        "cls.to_regular", ("coordinator", "participant"), TAG_RECLASS, "request",
        required={"item", "token", "share"},
        reply_required={"done"},
        doc="install an AV share and unlock (item becomes regular)",
    ),
    _spec(
        "cls.to_nonregular", ("coordinator", "participant"), TAG_RECLASS, "request",
        required={"item", "token", "value"},
        reply_required={"done"},
        doc="install the reconciled value, drop AV, unlock",
    ),
    # ---- reads -------------------------------------------------------- #
    _spec(
        "read.owed", ("reader", "peer"), TAG_READ, "request",
        required={"item"},
        reply_required={"owed"},
        doc="reconciled read: report (without clearing) the owed balance",
    ),
    # ---- leases -------------------------------------------------------- #
    _spec(
        "av.lease.ack", ("holder", "grantor"), TAG_LEASE, "oneway",
        required={"lease"},
        doc="receipt ack for a leased AV transfer; discharges the lease",
    ),
    _spec(
        "av.lease.probe", ("grantor", "holder"), TAG_LEASE, "request",
        required={"lease"},
        reply_required={"received"},
        needs_timeout=True,
        doc="expiry probe: did the leased transfer arrive? (FIFO-definitive)",
    ),
    # ---- reliable sessions -------------------------------------------- #
    _spec(
        "rel.probe", ("sender", "receiver"), TAG_RELIABLE, "request",
        required={"seq"},
        reply_required={"seen"},
        needs_timeout=True,
        doc="retry-budget-exhausted probe: was this seq ever delivered?",
    ),
    # ---- crash-recovery rejoin ---------------------------------------- #
    _spec(
        "prop.flush", ("rejoiner", "peer"), TAG_REJOIN, "request",
        reply_required={"pushed"},
        needs_timeout=True,
        doc="ask a live peer to push everything it owes us",
    ),
    _spec(
        "av.catalog", ("rejoiner", "base"), TAG_REJOIN, "request",
        reply_required={"items", "levels"},
        needs_timeout=True,
        doc="reconcile the AV catalogue against the base's authoritative copy",
    ),
    # ---- workload (supply chain) --------------------------------------- #
    _spec(
        "scm.replenish", ("retailer", "maker"), TAG_SCM, "request",
        required={"item", "quantity"},
        reply_required={"manufactured"},
        doc="order-on-shortfall replenishment from the maker (§1.1)",
    ),
    # ---- overload control ---------------------------------------------- #
    _spec(
        "ovl.state", ("site", "peer"), TAG_OVERLOAD, "oneway",
        required={"state", "since"},
        doc="degradation-state broadcast; peers steer AV asks away from"
            " DEGRADED sites",
    ),
    _spec(
        "ovl.probe", ("rejoiner", "peer"), TAG_OVERLOAD, "request",
        payload_free=True,
        reply_required={"state"},
        needs_timeout=True,
        doc="rebuild the peer degradation-state map after a restart",
    ),
    # ---- centralized baseline ------------------------------------------ #
    _spec(
        "central.update", ("client", "center"), TAG_CENTRAL, "request",
        required={"item", "delta"},
        reply_required={"committed"},
        needs_timeout=True,
        doc="conventional centralized update through the single server",
    ),
    _spec(
        "central.replicate", ("center", "client"), TAG_CENTRAL, "oneway",
        required={"item", "delta"},
        doc="server→client replica refresh (optional replicate mode)",
    ),
])


__all__ = [
    "INFRA_KEYS",
    "MessageSpec",
    "PAIRINGS",
    "PROTOCOL",
    "ProtocolRegistry",
    "REPLY_SUFFIX",
    "TAG_AV",
    "TAG_CENTRAL",
    "TAG_IMMEDIATE",
    "TAG_LEASE",
    "TAG_OVERLOAD",
    "TAG_PROPAGATE",
    "TAG_READ",
    "TAG_REBALANCE",
    "TAG_RECLASS",
    "TAG_REJOIN",
    "TAG_RELIABLE",
    "TAG_SCM",
    "make_registry",
]
