"""Message accounting.

The paper's evaluation metric is the *number of correspondences for
update*, where **2 messages are counted as 1 correspondence** (Fig. 6
caption). :class:`NetworkStats` counts raw transmitted messages along
several axes (per sender, per site-pair, per ``tag``) and converts to
correspondences on demand.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message

#: messages per correspondence, per the paper's Fig. 6 caption
MESSAGES_PER_CORRESPONDENCE = 2


def correspondences(message_count: float) -> float:
    """Convert a raw message count to the paper's correspondence unit."""
    return message_count / MESSAGES_PER_CORRESPONDENCE


@dataclass
class NetworkStats:
    """Counters for every message handed to the network.

    Dropped messages (faults) are counted separately — they were
    transmitted, so they still cost a correspondence half.
    """

    sent_total: int = 0
    dropped_total: int = 0
    by_sender: Counter = field(default_factory=Counter)
    by_receiver: Counter = field(default_factory=Counter)
    by_pair: Counter = field(default_factory=Counter)
    by_tag: Counter = field(default_factory=Counter)
    by_kind: Counter = field(default_factory=Counter)
    #: messages attributed to each site: sent + received (the per-site
    #: numbers in Table 1 count a site's participation in exchanges)
    by_site: Counter = field(default_factory=Counter)
    #: (site, tag) -> messages the site sent or received under that tag
    by_site_tag: Counter = field(default_factory=Counter)
    #: total wire bytes (populated only when the network has a SizeModel)
    bytes_total: int = 0
    #: tag -> wire bytes
    bytes_by_tag: Counter = field(default_factory=Counter)
    #: (src, dst) -> wire bytes
    bytes_by_pair: Counter = field(default_factory=Counter)
    #: wire bytes of dropped messages (transmitted but never delivered;
    #: already included in ``bytes_total``, like dropped message counts)
    bytes_dropped: int = 0

    def record_send(self, msg: "Message", size: Optional[int] = None) -> None:
        """Account one transmitted message (``size`` in wire bytes)."""
        self.sent_total += 1
        self.by_sender[msg.src] += 1
        self.by_receiver[msg.dst] += 1
        self.by_pair[(msg.src, msg.dst)] += 1
        self.by_tag[msg.tag] += 1
        self.by_kind[msg.kind] += 1
        self.by_site[msg.src] += 1
        self.by_site[msg.dst] += 1
        self.by_site_tag[(msg.src, msg.tag)] += 1
        self.by_site_tag[(msg.dst, msg.tag)] += 1
        if size is not None:
            self.bytes_total += size
            self.bytes_by_tag[msg.tag] += size
            self.bytes_by_pair[(msg.src, msg.dst)] += size

    def record_drop(self, msg: "Message", size: Optional[int] = None) -> None:
        """Account a message lost to a fault (already counted as sent).

        ``size`` attributes the wasted wire bytes: the message was
        transmitted, so its bytes stay in ``bytes_total``, and
        ``bytes_dropped`` records how much of that never arrived.
        """
        self.dropped_total += 1
        if size is not None:
            self.bytes_dropped += size

    # -------------------------------------------------------------- #
    # derived views
    # -------------------------------------------------------------- #

    @property
    def correspondences_total(self) -> float:
        """System-wide correspondences (2 messages = 1)."""
        return correspondences(self.sent_total)

    def correspondences_for_site(self, site: str) -> float:
        """Correspondences a site participated in (sent or received)."""
        return correspondences(self.by_site[site])

    def correspondences_for_tag(self, tag: str) -> float:
        return correspondences(self.by_tag[tag])

    def correspondences_for_site_tags(self, site: str, tags) -> float:
        """Correspondences a site participated in, restricted to ``tags``."""
        return correspondences(
            sum(self.by_site_tag[(site, t)] for t in tags)
        )

    def correspondences_for_tags(self, tags) -> float:
        """System-wide correspondences restricted to ``tags``."""
        return correspondences(sum(self.by_tag[t] for t in tags))

    def snapshot(self) -> "NetworkStats":
        """A deep copy usable as a checkpoint."""
        return NetworkStats(
            sent_total=self.sent_total,
            dropped_total=self.dropped_total,
            by_sender=Counter(self.by_sender),
            by_receiver=Counter(self.by_receiver),
            by_pair=Counter(self.by_pair),
            by_tag=Counter(self.by_tag),
            by_kind=Counter(self.by_kind),
            by_site=Counter(self.by_site),
            by_site_tag=Counter(self.by_site_tag),
            bytes_total=self.bytes_total,
            bytes_by_tag=Counter(self.bytes_by_tag),
            bytes_by_pair=Counter(self.bytes_by_pair),
            bytes_dropped=self.bytes_dropped,
        )

    def diff(self, earlier: "NetworkStats") -> "NetworkStats":
        """Counters accumulated since the ``earlier`` snapshot."""
        return NetworkStats(
            sent_total=self.sent_total - earlier.sent_total,
            dropped_total=self.dropped_total - earlier.dropped_total,
            by_sender=self.by_sender - earlier.by_sender,
            by_receiver=self.by_receiver - earlier.by_receiver,
            by_pair=self.by_pair - earlier.by_pair,
            by_tag=self.by_tag - earlier.by_tag,
            by_kind=self.by_kind - earlier.by_kind,
            by_site=self.by_site - earlier.by_site,
            by_site_tag=self.by_site_tag - earlier.by_site_tag,
            bytes_total=self.bytes_total - earlier.bytes_total,
            bytes_by_tag=self.bytes_by_tag - earlier.bytes_by_tag,
            bytes_by_pair=self.bytes_by_pair - earlier.bytes_by_pair,
            bytes_dropped=self.bytes_dropped - earlier.bytes_dropped,
        )

    def reset(self) -> None:
        self.sent_total = 0
        self.dropped_total = 0
        self.bytes_total = 0
        self.bytes_dropped = 0
        self.bytes_by_tag.clear()
        self.bytes_by_pair.clear()
        for counter in (
            self.by_sender,
            self.by_receiver,
            self.by_pair,
            self.by_tag,
            self.by_kind,
            self.by_site,
            self.by_site_tag,
        ):
            counter.clear()

    def __str__(self) -> str:
        tags = ", ".join(f"{t}={n}" for t, n in sorted(self.by_tag.items()))
        return (
            f"NetworkStats(sent={self.sent_total}, dropped={self.dropped_total},"
            f" correspondences={self.correspondences_total:.1f}, tags: {tags})"
        )
