"""The sharded experiment runner.

Fans a sweep (a list of :class:`~repro.perf.tasks.SweepTask`) across
worker processes and merges the results back **in task order**, so the
merged output is independent of shard count, scheduling, and retries —
``--shards 4`` is byte-identical to ``--shards 1`` (asserted by
``tests/test_perf_determinism.py``).

Design choices the determinism guarantee rests on:

* **Deterministic partitioning** — shard *i* of *N* gets tasks
  ``sorted_tasks[i::N]`` (round-robin over the index order). No work
  stealing: which process runs a task is a pure function of the task
  list and the shard count.
* **Self-seeded tasks** — each task builds its entire simulation from
  its own seed, so the result is a function of the task alone and can
  be recomputed anywhere (which is also what makes retry sound).
* **Ordered merge** — workers report ``(task index, payload)``; the
  parent stores results by index and emits them sorted. Arrival order
  (which *does* vary with scheduling) never reaches the output.
* **Crash retry** — a worker that dies without delivering all its
  results (crash, OOM-kill, ``os._exit``) loses nothing but time: the
  parent re-partitions the missing tasks over a fresh wave of workers.
  Because tasks are pure, the retried results are identical to what the
  dead worker would have produced.

Execution modes (``--shards N`` with ``N > 1``):

* **pool** — a *persistent* :class:`WorkerPool`: worker processes are
  spawned once per ``(start method, shard count)`` and reused across
  waves, retries, and subsequent sweeps in the same parent process, so
  fan-out pays process startup once per campaign instead of once per
  wave. Chunks travel to a worker as one message and, with task fusion
  (the default), the chunk's results travel back as one message — two
  IPC hops per chunk, not two per task. Dead workers are detected on
  queue idle and replaced in-slot before the next wave.
* **inline** — single-core hosts cannot win from process fan-out (the
  old runner's sharded mode was *slower* than sequential there), so
  ``mode="auto"`` degrades to fused-chunk execution in the parent
  process: the same deterministic chunking, with the cyclic garbage
  collector suspended for the duration of each chunk and collected at
  chunk boundaries. The protocol engines allocate heavily but create
  no cycles mid-task, so deferring collection to the chunk boundary is
  pure profit — measured ~15–20% over the naive sequential loop —
  while chunk boundaries keep the deferral window bounded.

Both modes produce byte-identical results (the pool-lifecycle tests
assert it): tasks are pure, and the merge is by task index either way.

The ``fork`` start method is preferred (no re-import cost per worker);
``spawn`` is the fallback where fork is unavailable. Results are
per-task dicts either way, so both methods produce identical output.
"""

from __future__ import annotations

import atexit
import gc
import multiprocessing
import os
import queue as queue_mod
from dataclasses import dataclass, field
from itertools import count
from typing import Dict, List, Optional, Tuple

from repro.perf.tasks import SweepTask, canonical_json, digest, run_task


class SweepError(RuntimeError):
    """A sweep could not complete (workers kept crashing)."""


@dataclass(frozen=True)
class ShardCrash:
    """Fault-injection hook for the worker-failure tests.

    The worker running shard ``shard`` hard-exits (``os._exit``) after
    completing ``after`` tasks — but only on the sweep's first attempt,
    so the retry wave observes a healthy worker. Modelling the crash as
    a first-attempt-only property keeps the test deterministic without
    any cross-process handshake.
    """

    shard: int
    after: int = 0
    exit_code: int = 73


@dataclass
class SweepResult:
    """A completed sweep: ordered results plus runner diagnostics."""

    grid: str
    root_seed: int
    shards: int
    tasks: List[SweepTask]
    #: task fingerprints, sorted by task index
    results: List[dict] = field(default_factory=list)
    #: number of retry waves that were needed (0 = no worker crashed)
    retries: int = 0
    #: how the sweep executed: "sequential", "pool", or "inline" —
    #: diagnostic only, deliberately outside the canonical surface
    mode: str = "sequential"

    @property
    def events_processed(self) -> int:
        """Total kernel events across all task simulations.

        Served from the per-task telemetry snapshots (the single
        carrier for worker-side runtime state — see
        :mod:`repro.obs.snapshot`); falls back to the legacy counters
        field for payloads that predate telemetry (e.g. fuzz tasks).
        """
        total = 0
        for r in self.results:
            telemetry = r.get("telemetry")
            if telemetry:
                total += telemetry.get("events_processed", 0)
            else:
                total += r.get("counters", {}).get("events_processed", 0)
        return total

    def telemetry(self) -> dict:
        """The sweep-level merged telemetry report.

        Task snapshots are folded in task-index order (the order of
        :attr:`results`), which makes the merge shard-count invariant —
        byte-identical for ``--shards 1`` and ``--shards 4`` just like
        the result fingerprints (gated in
        ``tests/test_perf_determinism.py``).
        """
        from repro.obs.snapshot import merge_telemetry

        return merge_telemetry(
            r.get("telemetry", {}) for r in self.results
        )

    def canonical(self) -> str:
        """The determinism surface: canonical JSON of the merged results.

        Deliberately excludes ``shards``, ``retries`` and ``mode`` —
        those describe *how* the sweep ran, and the whole point is that
        they must not influence *what* it produced.
        """
        return canonical_json(
            {
                "grid": self.grid,
                "root_seed": self.root_seed,
                "results": self.results,
            }
        )

    def digest(self) -> str:
        """SHA-256 of :meth:`canonical` (what the CLI prints)."""
        return digest(
            {
                "grid": self.grid,
                "root_seed": self.root_seed,
                "results": self.results,
            }
        )


def partition_tasks(
    tasks: List[SweepTask], shards: int
) -> List[List[SweepTask]]:
    """Round-robin tasks over shards, deterministically.

    Tasks are laid out in index order and dealt like cards: shard ``i``
    receives positions ``i, i+shards, i+2·shards, ...``. Round-robin
    balances heterogeneous grids better than contiguous blocks (long
    tasks tend to cluster), and the dealing order is reproducible, which
    the byte-identity guarantee requires.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    ordered = sorted(tasks, key=lambda t: t.index)
    return [ordered[i::shards] for i in range(shards)]


def _pool_worker(worker_id: int, in_queue, out_queue) -> None:
    """Persistent worker body: serve chunk jobs until told to stop.

    A job is ``(chunk_id, tasks, fuse, crash_after, crash_exit)``.
    With ``fuse`` the chunk's results ship back as one
    ``("chunk", chunk_id, [(index, payload), ...])`` message; without
    it each result streams as ``("res", chunk_id, (index, payload))``
    followed by an empty ``"chunk"`` completion marker. ``None`` shuts
    the worker down cleanly.
    """
    while True:
        job = in_queue.get()
        if job is None:
            return
        chunk_id, tasks, fuse, crash_after, crash_exit = job
        completed = 0
        payloads: List[Tuple[int, dict]] = []
        for task in tasks:
            if crash_after is not None and completed >= crash_after:
                # Simulated hard death: bypasses atexit/queue flushing,
                # exactly like a SIGKILL mid-task.
                os._exit(crash_exit)
            payload = run_task(task)
            completed += 1
            if fuse:
                payloads.append((task.index, payload))
            else:
                out_queue.put(("res", chunk_id, (task.index, payload)))
        if crash_after is not None:
            # A crash-injected worker always dies — if its chunk was
            # shorter than `after`, it dies here, before the completion
            # message, so the parent still observes a crashed shard.
            os._exit(crash_exit)
        out_queue.put(("chunk", chunk_id, payloads))


class WorkerPool:
    """A persistent set of worker processes, reused across waves.

    One pool exists per ``(start method, worker count)`` in the parent
    process (see :func:`_get_pool`); :func:`run_sweep` dispatches every
    wave of every sweep through it. Workers that die (crash injection,
    OOM, signals) are detected when the result queue goes idle and
    replaced in their slot at the start of the next wave — the pool
    heals mid-campaign rather than being torn down.
    """

    def __init__(self, ctx, n_workers: int) -> None:
        self.ctx = ctx
        self.n_workers = n_workers
        self.out_queue = ctx.Queue()
        #: slot -> (process, its job queue)
        self.workers: Dict[int, Tuple[object, object]] = {}
        #: dead workers replaced over the pool's lifetime (diagnostic)
        self.respawns = 0
        #: waves dispatched over the pool's lifetime (diagnostic)
        self.waves = 0
        self._chunk_seq = count(1)
        for slot in range(n_workers):
            self._spawn(slot)

    def _spawn(self, slot: int) -> None:
        in_queue = self.ctx.Queue()
        proc = self.ctx.Process(
            target=_pool_worker,
            args=(slot, in_queue, self.out_queue),
            daemon=True,
        )
        proc.start()
        self.workers[slot] = (proc, in_queue)

    def ensure_workers(self) -> int:
        """Replace dead workers in-slot; returns how many were respawned."""
        replaced = 0
        for slot in range(self.n_workers):
            proc, _ = self.workers[slot]
            if not proc.is_alive():
                self._spawn(slot)
                replaced += 1
        self.respawns += replaced
        return replaced

    def run_wave(
        self,
        chunks: List[List[SweepTask]],
        crash: Optional[ShardCrash] = None,
        fuse: bool = True,
    ) -> Tuple[Dict[int, dict], bool]:
        """Dispatch one wave of chunks; returns ``(results, any_dead)``.

        Chunk *i* goes to worker slot *i* (the same slot → shard
        mapping the one-shot runner had, which is what ``ShardCrash``
        targets). Results from a worker that crashes mid-chunk are kept
        if they were streamed (unfused mode); fused chunks are
        all-or-nothing and simply land in the next retry wave.
        """
        if len(chunks) > self.n_workers:
            raise ValueError(
                f"{len(chunks)} chunks for a {self.n_workers}-worker pool"
            )
        self.waves += 1
        self.ensure_workers()
        pending: Dict[int, int] = {}
        for slot, chunk in enumerate(chunks):
            chunk_id = next(self._chunk_seq)
            shard_crash = (
                crash if crash is not None and crash.shard == slot else None
            )
            self.workers[slot][1].put((
                chunk_id,
                chunk,
                fuse,
                shard_crash.after if shard_crash is not None else None,
                shard_crash.exit_code if shard_crash is not None else 0,
            ))
            pending[chunk_id] = slot

        results: Dict[int, dict] = {}
        any_dead = False
        while pending:
            try:
                msg = self.out_queue.get(timeout=0.05)
            except queue_mod.Empty:
                # No data: check for workers that died without their
                # completion message. A clean shutdown flushes the
                # queue first, so only non-zero exit codes are crashes.
                for chunk_id, slot in list(pending.items()):
                    proc = self.workers[slot][0]
                    if not proc.is_alive() and proc.exitcode != 0:
                        any_dead = True
                        del pending[chunk_id]
                continue
            tag, chunk_id, payload = msg
            if tag == "res":
                index, task_payload = payload
                results[index] = task_payload
            else:  # "chunk" completion (fused results ride along)
                for index, task_payload in payload:
                    results[index] = task_payload
                pending.pop(chunk_id, None)

        # Drain results that raced the crash detection (an unfused
        # worker may have streamed results right before dying).
        while True:
            try:
                msg = self.out_queue.get_nowait()
            except queue_mod.Empty:
                break
            tag, _chunk_id, payload = msg
            if tag == "res":
                results[payload[0]] = payload[1]
            else:
                for index, task_payload in payload:
                    results[index] = task_payload
        return results, any_dead

    def shutdown(self) -> None:
        """Stop every worker (best effort; used at interpreter exit)."""
        for proc, in_queue in self.workers.values():
            if proc.is_alive():
                try:
                    in_queue.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for proc, _ in self.workers.values():
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        self.workers.clear()


#: live pools, keyed by (start method, worker count)
_POOLS: Dict[Tuple[str, int], WorkerPool] = {}


def _start_method(start_method: Optional[str]) -> str:
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"
    return start_method


def _get_pool(method: str, n_workers: int) -> WorkerPool:
    """The persistent pool for ``(method, n_workers)`` (created once)."""
    key = (method, n_workers)
    pool = _POOLS.get(key)
    if pool is None:
        pool = WorkerPool(multiprocessing.get_context(method), n_workers)
        _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Tear down every cached pool (atexit; tests use it for isolation)."""
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)


def _run_inline(ordered: List[SweepTask], shards: int) -> List[dict]:
    """Fused-chunk execution in the parent process (single-core mode).

    Same deterministic chunking as the pool, no processes: each chunk
    runs with the cyclic garbage collector suspended and a young-gen
    collection at the chunk boundary. Tasks allocate heavily but drop
    no cycles mid-run, so batching collection at chunk boundaries
    removes pure overhead while the boundary keeps the deferral window
    bounded. (A *full* collection per boundary would re-scan the whole
    loaded module graph and eat the win — hence ``gc.collect(0)``.)
    """
    results: Dict[int, dict] = {}
    was_enabled = gc.isenabled()
    for chunk in partition_tasks(ordered, shards):
        if not chunk:
            continue
        if was_enabled:
            gc.disable()
        try:
            for task in chunk:
                results[task.index] = run_task(task)
        finally:
            if was_enabled:
                gc.enable()
        gc.collect(0)
    return [results[t.index] for t in ordered]


def run_sweep(
    tasks: List[SweepTask],
    shards: int = 1,
    grid: str = "",
    root_seed: int = 0,
    max_attempts: int = 3,
    crash: Optional[ShardCrash] = None,
    start_method: Optional[str] = None,
    mode: Optional[str] = None,
    fuse: bool = True,
) -> SweepResult:
    """Run a sweep, optionally sharded over worker processes.

    Parameters
    ----------
    tasks:
        The grid (see :func:`repro.perf.grids.build_grid`).
    shards:
        ``<= 1`` runs everything in-process (no subprocesses at all);
        ``N > 1`` fans out over ``N`` shards in the resolved mode.
    max_attempts:
        Total waves allowed, i.e. the initial wave plus retries. A
        sweep whose tasks are still missing after this many waves
        raises :class:`SweepError`.
    crash:
        Test-only fault injection, applied to the first wave. Forces
        pool mode (a crash needs a real process to kill).
    start_method:
        ``multiprocessing`` start method override (default: ``fork``
        where available, else ``spawn``).
    mode:
        ``"pool"`` — the persistent worker pool; ``"inline"`` —
        fused-chunk execution in-process; ``None``/``"auto"`` — pool
        on multi-core hosts, inline on single-core ones (where process
        fan-out cannot win). Results are byte-identical across modes.
    fuse:
        Ship each chunk's results as one message (default) instead of
        one message per task. Byte-identical either way (asserted by
        the pool-lifecycle tests); unfused preserves partial progress
        from a crashed worker at more IPC cost.
    """
    ordered = sorted(tasks, key=lambda t: t.index)
    if len({t.index for t in ordered}) != len(ordered):
        raise ValueError("task indices must be unique")
    sweep = SweepResult(
        grid=grid, root_seed=root_seed, shards=shards, tasks=ordered
    )

    if shards <= 1:
        sweep.results = [run_task(task) for task in ordered]
        return sweep

    if mode in (None, "auto"):
        if crash is not None:
            mode = "pool"
        else:
            mode = "pool" if (os.cpu_count() or 1) >= 2 else "inline"
    elif mode not in ("pool", "inline"):
        raise ValueError(f"unknown mode {mode!r}")
    if crash is not None and mode == "inline":
        raise ValueError("crash injection requires pool mode")
    sweep.mode = mode

    if mode == "inline":
        sweep.results = _run_inline(ordered, shards)
        return sweep

    pool = _get_pool(_start_method(start_method), shards)
    results: Dict[int, dict] = {}
    attempt = 0
    while True:
        todo = [t for t in ordered if t.index not in results]
        if not todo:
            break
        if attempt >= max_attempts:
            raise SweepError(
                f"{len(todo)} task(s) still unfinished after"
                f" {max_attempts} attempts: indices"
                f" {[t.index for t in todo]}"
            )
        wave_crash = crash if attempt == 0 else None
        chunks = [c for c in partition_tasks(todo, shards) if c]
        wave_results, any_dead = pool.run_wave(
            chunks, crash=wave_crash, fuse=fuse
        )
        results.update(wave_results)
        attempt += 1
        if any_dead:
            sweep.retries += 1

    sweep.results = [results[t.index] for t in ordered]
    return sweep
