"""The sharded experiment runner.

Fans a sweep (a list of :class:`~repro.perf.tasks.SweepTask`) across
worker processes and merges the results back **in task order**, so the
merged output is independent of shard count, scheduling, and retries —
``--shards 4`` is byte-identical to ``--shards 1`` (asserted by
``tests/test_perf_determinism.py``).

Design choices the determinism guarantee rests on:

* **Deterministic partitioning** — shard *i* of *N* gets tasks
  ``sorted_tasks[i::N]`` (round-robin over the index order). No work
  stealing: which process runs a task is a pure function of the task
  list and the shard count.
* **Self-seeded tasks** — each task builds its entire simulation from
  its own seed, so the result is a function of the task alone and can
  be recomputed anywhere (which is also what makes retry sound).
* **Ordered merge** — workers report ``(task index, payload)``; the
  parent stores results by index and emits them sorted. Arrival order
  (which *does* vary with scheduling) never reaches the output.
* **Crash retry** — a worker that dies without delivering all its
  results (crash, OOM-kill, ``os._exit``) loses nothing but time: the
  parent re-partitions the missing tasks over a fresh wave of workers.
  Because tasks are pure, the retried results are identical to what the
  dead worker would have produced.

The ``fork`` start method is preferred (no re-import cost per worker);
``spawn`` is the fallback where fork is unavailable. Results are
per-task dicts either way, so both methods produce identical output.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.perf.tasks import SweepTask, canonical_json, digest, run_task


class SweepError(RuntimeError):
    """A sweep could not complete (workers kept crashing)."""


@dataclass(frozen=True)
class ShardCrash:
    """Fault-injection hook for the worker-failure tests.

    The worker running shard ``shard`` hard-exits (``os._exit``) after
    completing ``after`` tasks — but only on the sweep's first attempt,
    so the retry wave observes a healthy worker. Modelling the crash as
    a first-attempt-only property keeps the test deterministic without
    any cross-process handshake.
    """

    shard: int
    after: int = 0
    exit_code: int = 73


@dataclass
class SweepResult:
    """A completed sweep: ordered results plus runner diagnostics."""

    grid: str
    root_seed: int
    shards: int
    tasks: List[SweepTask]
    #: task fingerprints, sorted by task index
    results: List[dict] = field(default_factory=list)
    #: number of retry waves that were needed (0 = no worker crashed)
    retries: int = 0

    @property
    def events_processed(self) -> int:
        """Total kernel events across all task simulations.

        Served from the per-task telemetry snapshots (the single
        carrier for worker-side runtime state — see
        :mod:`repro.obs.snapshot`); falls back to the legacy counters
        field for payloads that predate telemetry (e.g. fuzz tasks).
        """
        total = 0
        for r in self.results:
            telemetry = r.get("telemetry")
            if telemetry:
                total += telemetry.get("events_processed", 0)
            else:
                total += r.get("counters", {}).get("events_processed", 0)
        return total

    def telemetry(self) -> dict:
        """The sweep-level merged telemetry report.

        Task snapshots are folded in task-index order (the order of
        :attr:`results`), which makes the merge shard-count invariant —
        byte-identical for ``--shards 1`` and ``--shards 4`` just like
        the result fingerprints (gated in
        ``tests/test_perf_determinism.py``).
        """
        from repro.obs.snapshot import merge_telemetry

        return merge_telemetry(
            r.get("telemetry", {}) for r in self.results
        )

    def canonical(self) -> str:
        """The determinism surface: canonical JSON of the merged results.

        Deliberately excludes ``shards`` and ``retries`` — those
        describe *how* the sweep ran, and the whole point is that they
        must not influence *what* it produced.
        """
        return canonical_json(
            {
                "grid": self.grid,
                "root_seed": self.root_seed,
                "results": self.results,
            }
        )

    def digest(self) -> str:
        """SHA-256 of :meth:`canonical` (what the CLI prints)."""
        return digest(
            {
                "grid": self.grid,
                "root_seed": self.root_seed,
                "results": self.results,
            }
        )


def partition_tasks(
    tasks: List[SweepTask], shards: int
) -> List[List[SweepTask]]:
    """Round-robin tasks over shards, deterministically.

    Tasks are laid out in index order and dealt like cards: shard ``i``
    receives positions ``i, i+shards, i+2·shards, ...``. Round-robin
    balances heterogeneous grids better than contiguous blocks (long
    tasks tend to cluster), and the dealing order is reproducible, which
    the byte-identity guarantee requires.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    ordered = sorted(tasks, key=lambda t: t.index)
    return [ordered[i::shards] for i in range(shards)]


def _shard_worker(
    shard_id: int,
    tasks: List[SweepTask],
    out_queue,
    crash: Optional[ShardCrash],
) -> None:
    """Worker body: run tasks, stream results back, then a sentinel."""
    completed = 0
    for task in tasks:
        if crash is not None and completed >= crash.after:
            # Simulated hard death: bypasses atexit/queue flushing,
            # exactly like a SIGKILL mid-task.
            os._exit(crash.exit_code)
        out_queue.put(("res", task.index, run_task(task)))
        completed += 1
    if crash is not None:
        # A crash-injected worker always dies — if its task list was
        # shorter than `after`, it dies here, before the sentinel, so
        # the parent still observes a crashed shard.
        os._exit(crash.exit_code)
    out_queue.put(("done", shard_id, None))


def _mp_context(start_method: Optional[str]):
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


def _run_wave(
    ctx,
    todo: List[SweepTask],
    shards: int,
    crash: Optional[ShardCrash],
    results: Dict[int, dict],
) -> bool:
    """Run one wave of workers over ``todo``; returns True if any died."""
    chunks = [c for c in partition_tasks(todo, shards) if c]
    out_queue = ctx.Queue()
    procs: Dict[int, object] = {}
    for shard_id, chunk in enumerate(chunks):
        shard_crash = (
            crash
            if crash is not None and crash.shard == shard_id
            else None
        )
        proc = ctx.Process(
            target=_shard_worker,
            args=(shard_id, chunk, out_queue, shard_crash),
            daemon=True,
        )
        proc.start()
        procs[shard_id] = proc

    finished: set = set()
    dead: set = set()
    while len(finished) + len(dead) < len(procs):
        try:
            tag, key, payload = out_queue.get(timeout=0.05)
        except queue_mod.Empty:
            # No data: check for workers that died without a sentinel.
            # A clean exit (code 0) always flushes its sentinel first,
            # so only non-zero exit codes are treated as crashes.
            for shard_id, proc in procs.items():
                if shard_id in finished or shard_id in dead:
                    continue
                if not proc.is_alive() and proc.exitcode != 0:
                    dead.add(shard_id)
            continue
        if tag == "res":
            results[key] = payload
        else:  # "done"
            finished.add(key)

    # Drain any results that raced the last sentinel.
    while True:
        try:
            tag, key, payload = out_queue.get_nowait()
        except queue_mod.Empty:
            break
        if tag == "res":
            results[key] = payload
    for proc in procs.values():
        proc.join(timeout=10.0)
    out_queue.close()
    return bool(dead)


def run_sweep(
    tasks: List[SweepTask],
    shards: int = 1,
    grid: str = "",
    root_seed: int = 0,
    max_attempts: int = 3,
    crash: Optional[ShardCrash] = None,
    start_method: Optional[str] = None,
) -> SweepResult:
    """Run a sweep, optionally sharded over worker processes.

    Parameters
    ----------
    tasks:
        The grid (see :func:`repro.perf.grids.build_grid`).
    shards:
        ``<= 1`` runs everything in-process (no subprocesses at all);
        ``N > 1`` fans out over ``N`` workers.
    max_attempts:
        Total waves allowed, i.e. the initial wave plus retries. A
        sweep whose tasks are still missing after this many waves
        raises :class:`SweepError`.
    crash:
        Test-only fault injection, applied to the first wave.
    start_method:
        ``multiprocessing`` start method override (default: ``fork``
        where available, else ``spawn``).
    """
    ordered = sorted(tasks, key=lambda t: t.index)
    if len({t.index for t in ordered}) != len(ordered):
        raise ValueError("task indices must be unique")
    sweep = SweepResult(
        grid=grid, root_seed=root_seed, shards=shards, tasks=ordered
    )

    if shards <= 1:
        sweep.results = [run_task(task) for task in ordered]
        return sweep

    ctx = _mp_context(start_method)
    results: Dict[int, dict] = {}
    attempt = 0
    while True:
        todo = [t for t in ordered if t.index not in results]
        if not todo:
            break
        if attempt >= max_attempts:
            raise SweepError(
                f"{len(todo)} task(s) still unfinished after"
                f" {max_attempts} attempts: indices"
                f" {[t.index for t in todo]}"
            )
        wave_crash = crash if attempt == 0 else None
        any_dead = _run_wave(ctx, todo, shards, wave_crash, results)
        attempt += 1
        if any_dead:
            sweep.retries += 1

    sweep.results = [results[t.index] for t in ordered]
    return sweep
