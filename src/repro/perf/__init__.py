"""Sharded parallel experiment running.

The perf package scales the experiment harness out across worker
processes while keeping its headline guarantee: **the sharded sweep is
byte-identical to the sequential one**. Three pieces:

* :mod:`repro.perf.tasks` — self-contained sweep tasks (one simulation
  each) and their canonical, order-independent result fingerprints;
* :mod:`repro.perf.grids` — named seed × config grids ("fig6-small",
  "table1", "chaos", ...) with per-task seeds derived from one root seed;
* :mod:`repro.perf.runner` — the sharded runner: deterministic work
  partitioning, ``multiprocessing`` fan-out, ordered result merging and
  worker-crash retry.

Determinism holds because every task owns its whole universe (a fresh
:class:`~repro.sim.engine.Environment` and
:class:`~repro.sim.rng.RngRegistry` seeded only from the task), so
results depend on the task alone — never on which shard ran it, in what
order, or after how many retries. See ``docs/performance.md``.
"""

from repro.perf.grids import GRID_NAMES, build_grid, derive_seed
from repro.perf.runner import (
    ShardCrash,
    SweepError,
    SweepResult,
    partition_tasks,
    run_sweep,
)
from repro.perf.tasks import SweepTask, canonical_json, run_task

__all__ = [
    "GRID_NAMES",
    "ShardCrash",
    "SweepError",
    "SweepResult",
    "SweepTask",
    "build_grid",
    "canonical_json",
    "derive_seed",
    "partition_tasks",
    "run_sweep",
    "run_task",
]
