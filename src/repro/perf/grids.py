"""Named sweep grids: seed × config matrices over the paper workloads.

A grid is an ordered list of :class:`~repro.perf.tasks.SweepTask`. Each
task's seed is derived from the sweep's single root seed with
:func:`derive_seed` — the same stable-hash scheme
:class:`~repro.sim.rng.RngRegistry` uses for its named streams — so

* the grid is a pure function of ``(name, root_seed)``;
* replicate seeds are independent of how many replicates the grid has
  (adding a column never perturbs existing cells);
* the sharded runner needs no seed coordination at all: every task
  carries its own.
"""

from __future__ import annotations

import zlib
from typing import List

import numpy as np

from repro.perf.tasks import SweepTask

#: the chaos scenario names, in suite order (mirrors experiments.chaos)
_CHAOS_SMALL = ("maker-crash", "retailer-crash", "partition-loss")
_CHAOS_FULL = _CHAOS_SMALL + ("crash-storm", "flaky-links")


def derive_seed(root_seed: int, label: str, index: int) -> int:
    """Stable per-task seed from the sweep root seed.

    crc32 keeps the derivation identical across processes and Python
    versions (``hash()`` is salted); SeedSequence decorrelates the
    resulting streams even for adjacent indices.
    """
    child = np.random.SeedSequence(
        [int(root_seed), zlib.crc32(label.encode("utf-8")), int(index)]
    )
    return int(child.generate_state(1, dtype=np.uint64)[0] >> 1)


def _replicated(
    experiment: str,
    root_seed: int,
    replicates: int,
    n_updates: int,
    n_items: int,
    check: bool,
) -> List[SweepTask]:
    return [
        SweepTask(
            index=i,
            experiment=experiment,
            seed=derive_seed(root_seed, experiment, i),
            n_updates=n_updates,
            n_items=n_items,
            check=check,
        )
        for i in range(replicates)
    ]


def _chaos_grid(
    root_seed: int, scenarios, n_updates: int, n_items: int
) -> List[SweepTask]:
    return [
        SweepTask(
            index=i,
            experiment="chaos",
            seed=derive_seed(root_seed, f"chaos.{name}", i),
            n_updates=n_updates,
            n_items=n_items,
            scenario=name,
        )
        for i, name in enumerate(scenarios)
    ]


def _scale_grid(
    root_seed: int,
    specs,
    n_updates: int,
    n_items: int,
    check: bool,
) -> List[SweepTask]:
    return [
        SweepTask(
            index=i,
            experiment="scale",
            seed=derive_seed(root_seed, f"scale.{spec}", i),
            n_updates=n_updates,
            n_items=n_items,
            check=check,
            topology=spec,
        )
        for i, spec in enumerate(specs)
    ]


#: the CI smoke grid: small regional + deep layouts, sanitizer always on
_SCALE_SMALL_SPECS = (
    "flat:2",
    "regional:2x4:s2",
    "deep:2x2x2:s2",
)

#: the headline grid: 50 sites (1 maker + 7 aggregators + 42 leaves)
_SCALE_SPECS = (
    "regional:7x6:s2",
    "deep:3x4x4:s2",
)

GRID_NAMES = (
    "fig6-small",
    "fig6",
    "fig6-wide",
    "table1-small",
    "table1",
    "chaos-small",
    "chaos",
    "scale-small",
    "scale",
)


def build_grid(
    name: str,
    root_seed: int = 0,
    replicates: int | None = None,
    n_updates: int | None = None,
    check: bool = False,
) -> List[SweepTask]:
    """Build the named grid (optionally overriding its size).

    The ``-small`` variants are the CI-sized grids the determinism tests
    and the benchmark smoke gate run.
    """
    if name == "fig6-small":
        return _replicated(
            "fig6", root_seed, replicates or 3, n_updates or 120, 10, check
        )
    if name == "fig6":
        return _replicated(
            "fig6", root_seed, replicates or 8, n_updates or 1000, 10, check
        )
    if name == "table1-small":
        return _replicated(
            "table1", root_seed, replicates or 3, n_updates or 120, 10, check
        )
    if name == "table1":
        return _replicated(
            "table1", root_seed, replicates or 8, n_updates or 1000, 10, check
        )
    if name == "chaos-small":
        return _chaos_grid(root_seed, _CHAOS_SMALL, n_updates or 60, 6)
    if name == "chaos":
        return _chaos_grid(root_seed, _CHAOS_FULL, n_updates or 120, 6)
    if name == "fig6-wide":
        # The paper figure stretched sideways: one maker, 8 retailers,
        # all sites replicating everything (the flat scale-out control
        # the topology grids are compared against).
        return [
            SweepTask(
                index=i,
                experiment="fig6",
                seed=derive_seed(root_seed, "fig6-wide", i),
                n_updates=n_updates or 600,
                n_items=10,
                check=check,
                n_retailers=8,
            )
            for i in range(replicates or 3)
        ]
    if name == "scale-small":
        # Sanitizer is always on here: this grid is the CI scale-smoke
        # gate (zero violations + shard/sequential byte-identity).
        return _scale_grid(
            root_seed, _SCALE_SMALL_SPECS, n_updates or 200, 40, True
        )
    if name == "scale":
        return _scale_grid(
            root_seed, _SCALE_SPECS, n_updates or 5000, 10000, check
        )
    raise ValueError(f"unknown grid {name!r}; choose from {GRID_NAMES}")
