"""Sweep tasks: one fully self-contained experiment run each.

A :class:`SweepTask` carries everything needed to reproduce one
simulation (experiment name, seed, workload shape); :func:`run_task`
executes it and returns a plain-dict *fingerprint* of the run — per
update outcome tags, final replica values, experiment counters, and the
run's telemetry snapshot (kernel event count, metric registry, per-site
end state — see :mod:`repro.obs.snapshot`). The fingerprint is what the
determinism suite compares
byte-for-byte between sequential and sharded execution, so it must be:

* **picklable** (it crosses a ``multiprocessing`` queue),
* **canonically serialisable** (see :func:`canonical_json`),
* **independent of host state** (no wall-clock times, no pids, no
  memory addresses — simulation quantities only).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class SweepTask:
    """One cell of a sweep grid.

    Attributes
    ----------
    index:
        Position in the grid; results are merged in index order, which
        is what makes the merged sweep output shard-count independent.
    experiment:
        ``"fig6"``, ``"table1"`` or ``"chaos"``.
    seed:
        The task's root seed (already derived from the sweep's root
        seed — see :func:`repro.perf.grids.derive_seed`).
    n_updates, n_items:
        Workload shape, passed straight to the experiment.
    scenario:
        Chaos only: the named fault schedule to run.
    check:
        Additionally replay the workload under the protocol sanitizer
        and include its violation/warning counts in the fingerprint.
    topology:
        Scale only: the :func:`repro.cluster.topology.Topology.parse`
        spec to lay the cluster out as (e.g. ``"regional:7x6:s2"``).
    n_retailers:
        fig6/table1 only: retailer count for the flat paper layout
        (the ``fig6-wide`` grid stretches the paper figure sideways).
    """

    index: int
    experiment: str
    seed: int
    n_updates: int
    n_items: int = 10
    scenario: str = ""
    check: bool = False
    topology: str = ""
    n_retailers: int = 2


def canonical_json(obj: Any) -> str:
    """Serialise deterministically: sorted keys, no whitespace drift.

    Two runs that produce equal Python values produce equal bytes —
    ``repr``-exact floats included — so byte comparison of the output is
    a valid determinism check.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest(obj: Any) -> str:
    """SHA-256 hex digest of an object's canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def _update_tags(results) -> list:
    """Per-update outcome tags, in completion order.

    Encodes kind, outcome, locality, transfer count and (repr-exact)
    finish time, so any protocol or timing divergence between two runs
    flips the fingerprint.
    """
    return [
        f"{r.kind.value}:{r.outcome.value}:{int(r.local_only)}"
        f":{r.av_requests}:{r.finished_at!r}"
        for r in results
    ]


def _sanitize(experiment: str, task: "SweepTask") -> Dict[str, int]:
    """Replay the task's workload under the runtime sanitizer."""
    from repro.analysis.check import run_check

    run = run_check(
        experiment=experiment,
        n_updates=task.n_updates,
        seed=task.seed,
        n_items=task.n_items,
    )
    return {
        "violations": len(run.report.violations),
        "warnings": len(run.report.warnings),
    }


def _run_fig6_task(task: SweepTask) -> Dict[str, Any]:
    from repro.experiments.fig6 import run_fig6

    result = run_fig6(
        n_updates=task.n_updates, seed=task.seed, n_items=task.n_items,
        n_retailers=task.n_retailers,
    )
    payload: Dict[str, Any] = {
        "reduction": result.reduction,
        "local_ratio": result.local_ratio,
        "update_tags": _update_tags(result.proposal.results),
        "replicas": result.replicas,
        "counters": {
            "proposal_correspondences": (
                result.proposal.final().total_correspondences
            ),
            "conventional_correspondences": (
                result.conventional.final().total_correspondences
            ),
        },
        "telemetry": result.telemetry,
    }
    return payload


def _run_table1_task(task: SweepTask) -> Dict[str, Any]:
    from repro.experiments.table1 import run_table1

    result = run_table1(
        n_updates=task.n_updates, seed=task.seed, n_items=task.n_items
    )
    final = result.proposal.final()
    assurance = result.assurance()
    payload: Dict[str, Any] = {
        "update_tags": _update_tags(result.proposal.results),
        "replicas": result.replicas,
        "per_site": {s: final.per_site[s] for s in result.site_names},
        "counters": {
            "proposal_correspondences": final.total_correspondences,
            "fairness": assurance.retailer_fairness,
            "local_ratio": assurance.local_completion_ratio,
        },
        "telemetry": result.telemetry,
    }
    return payload


def _run_chaos_task(task: SweepTask) -> Dict[str, Any]:
    from repro.experiments.chaos import (
        FULL_SCENARIOS,
        run_chaos_scenario,
    )

    by_name = {s.name: s for s in FULL_SCENARIOS}
    try:
        scenario = by_name[task.scenario]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {task.scenario!r};"
            f" choose from {sorted(by_name)}"
        ) from None
    result = run_chaos_scenario(
        scenario, n_updates=task.n_updates, seed=task.seed,
        n_items=task.n_items,
    )
    return {
        "scenario": task.scenario,
        "ok": result.ok,
        "converged": result.converged,
        "updates_issued": result.updates_issued,
        "updates_completed": result.updates_completed,
        "counters": {
            "violations": len(result.report.violations),
            "loss_warnings": len(result.loss_warnings),
        },
        "telemetry": result.telemetry,
    }


def _run_fuzz_task(task: SweepTask) -> Dict[str, Any]:
    # The case is a pure function of (campaign root seed, case index):
    # workers regenerate it locally, so only coordinates cross the
    # process boundary and the merged sweep stays shard-invariant.
    from repro.testkit.runner import run_case
    from repro.testkit.schedule import make_case

    case = make_case(
        task.seed, task.index, n_ops=task.n_updates, inject=task.scenario
    )
    return run_case(case).payload()


def _run_scale_task(task: SweepTask) -> Dict[str, Any]:
    from repro.experiments.scale import run_scale

    result = run_scale(
        spec=task.topology,
        n_updates=task.n_updates,
        seed=task.seed,
        n_items=task.n_items,
        sanitize=task.check,
    )
    payload: Dict[str, Any] = {
        "spec": task.topology,
        "n_sites": result.topology.n_sites,
        "reduction": result.reduction,
        "local_ratio": result.local_ratio,
        "update_tags": _update_tags(result.proposal.results),
        "replicas": result.replicas,
        "counters": {
            "proposal_correspondences": (
                result.proposal.final().total_correspondences
            ),
            "conventional_correspondences": (
                result.conventional.final().total_correspondences
            ),
        },
        "telemetry": result.telemetry,
    }
    if task.check:
        # The scale runner sanitizes in-process (the replay harness in
        # analysis.check only knows the paper experiments).
        payload["sanitizer"] = {
            "violations": result.violations,
            "warnings": result.warnings,
        }
    return payload


_RUNNERS = {
    "fig6": _run_fig6_task,
    "table1": _run_table1_task,
    "chaos": _run_chaos_task,
    "fuzz": _run_fuzz_task,
    "scale": _run_scale_task,
}


def run_task(task: SweepTask) -> Dict[str, Any]:
    """Execute one task and return its canonical result fingerprint.

    Runs entirely inside the calling process; safe to call from any
    worker because the simulation it builds is seeded only by the task.
    """
    try:
        runner = _RUNNERS[task.experiment]
    except KeyError:
        raise ValueError(
            f"unknown experiment {task.experiment!r};"
            f" choose from {sorted(_RUNNERS)}"
        ) from None
    payload = runner(task)
    payload["task"] = asdict(task)
    if task.check and task.experiment in ("fig6", "table1"):
        payload["sanitizer"] = _sanitize(task.experiment, task)
    return payload
