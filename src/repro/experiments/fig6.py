"""Fig. 6 reproduction: updates vs correspondences, proposal vs conventional.

The paper's figure plots the cumulative number of correspondences for
update (y) against the total number of updates in the system (x) for the
proposed AV mechanism and the conventional centralized approach, and
reports a ≈75% reduction with "most of the update ... completed within
the local site".

:func:`run_fig6` regenerates the two curves on identical workload traces
and returns everything the bench prints: both series, the reduction
ratio, and the local-completion ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.baselines.centralized import CentralizedSystem
from repro.cluster import DistributedSystem, paper_config
from repro.metrics.correspondence import CorrespondenceSeries, reduction_ratio
from repro.metrics.report import text_table
from repro.sim.rng import RngRegistry
from repro.workload.generators import PaperWorkload
from repro.workload.trace import WorkloadTrace

from repro.experiments.runner import CountedRun, checkpoint_schedule, run_counted


@dataclass
class Fig6Result:
    """Both curves plus the headline numbers."""

    proposal: CountedRun
    conventional: CountedRun
    n_updates: int
    seed: int
    #: the proposal run's observability hub when run with observe=True
    obs: Optional[object] = None
    #: final replica values per site (proposal run) — the determinism
    #: fingerprint the sharded sweep runner compares byte-for-byte
    replicas: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: kernel events processed by the proposal run (throughput metric)
    events_processed: int = 0
    #: full telemetry snapshot of the proposal run (events, metric
    #: registry, per-site end state) — see :mod:`repro.obs.snapshot`
    telemetry: Dict[str, object] = field(default_factory=dict)

    @property
    def proposal_series(self) -> CorrespondenceSeries:
        return self.proposal.series()

    @property
    def conventional_series(self) -> CorrespondenceSeries:
        return self.conventional.series()

    @property
    def reduction(self) -> float:
        """Fractional saving vs conventional (paper: ≈0.75)."""
        return reduction_ratio(self.proposal_series, self.conventional_series)

    @property
    def local_ratio(self) -> float:
        """Fraction of proposal updates completed without communication."""
        locals_ = sum(1 for r in self.proposal.results if r.local_only)
        return locals_ / len(self.proposal.results) if self.proposal.results else 0.0

    def render(self) -> str:
        """The figure as an aligned text table (one row per checkpoint)."""
        conv = {cp.updates: cp.total_correspondences for cp in self.conventional.checkpoints}
        rows = [
            [cp.updates, cp.total_correspondences, conv.get(cp.updates, float("nan"))]
            for cp in self.proposal.checkpoints
        ]
        table = text_table(
            ["updates", "proposal", "conventional"],
            rows,
            title=(
                f"Fig. 6 — correspondences vs updates"
                f" (n={self.n_updates}, seed={self.seed})"
            ),
        )
        summary = (
            f"\nreduction vs conventional: {self.reduction:.1%}"
            f" (paper: ~75%)\nlocal completion: {self.local_ratio:.1%}"
        )
        return table + summary


def make_paper_trace(
    n_updates: int,
    seed: int,
    n_items: int = 10,
    initial_stock: float = 100.0,
    n_retailers: int = 2,
    site_order: str = "roundrobin",
    increase_fraction: Optional[float] = None,
    decrease_fraction: float = 0.10,
) -> WorkloadTrace:
    """The §4 workload, frozen so every system replays identical updates.

    The paper's +20%/−10% caps balance supply and demand for exactly two
    retailers (one maker update mints on average what two retailer
    updates consume). For other retailer counts the maker's cap defaults
    to ``n_retailers × decrease_fraction`` so the system stays balanced —
    without this, aggregate demand outstrips minting and every mechanism
    degenerates into rejecting updates (see the scale ablation notes in
    EXPERIMENTS.md).
    """
    if increase_fraction is None:
        increase_fraction = min(1.0, n_retailers * decrease_fraction)
    rngs = RngRegistry(seed)
    config = paper_config(
        n_items=n_items, initial_stock=initial_stock, n_retailers=n_retailers
    )
    generator = PaperWorkload(
        maker=config.maker,
        retailers=config.retailers,
        items=[f"item{i:0{len(str(n_items - 1))}d}" for i in range(n_items)],
        initial_stock=initial_stock,
        rng=rngs.stream("workload.paper"),
        site_order=site_order,
        increase_fraction=increase_fraction,
        decrease_fraction=decrease_fraction,
    )
    return WorkloadTrace.capture(generator, n_updates)


def run_fig6(
    n_updates: int = 1000,
    seed: int = 0,
    n_items: int = 10,
    initial_stock: float = 100.0,
    n_retailers: int = 2,
    checkpoint_every: Optional[int] = None,
    checkpoints: Optional[Sequence[int]] = None,
    observe: bool = False,
    topology=None,
) -> Fig6Result:
    """Regenerate Fig. 6.

    Both systems replay the *same* frozen trace, so the comparison is
    paired at every x value.

    The paper's local-DB item count is illegible in the scanned text;
    ``n_items=10`` reproduces the reported ≈75% reduction with mostly
    local completion (see EXPERIMENTS.md for the calibration sweep).

    ``topology`` (a flat :class:`~repro.cluster.topology.Topology`
    matching the paper layout, e.g. ``Topology.paper(n_retailers,
    items)``) routes the build through the topology-aware path; the
    differential suite asserts the result is byte-identical to the
    default.
    """
    trace = make_paper_trace(
        n_updates, seed, n_items=n_items,
        initial_stock=initial_stock, n_retailers=n_retailers,
    )
    if checkpoints is None:
        every = checkpoint_every if checkpoint_every else max(1, n_updates // 20)
        checkpoints = checkpoint_schedule(n_updates, every)

    config = paper_config(
        n_items=n_items,
        initial_stock=initial_stock,
        n_retailers=n_retailers,
        seed=seed,
        observe=observe,
        topology=topology,
    )
    proposal_system = DistributedSystem.build(config)
    proposal = run_counted(proposal_system, trace, "proposal", checkpoints)
    proposal_system.check_invariants()

    conventional_system = CentralizedSystem(config)
    conventional = run_counted(conventional_system, trace, "conventional", checkpoints)

    from repro.obs.snapshot import TelemetrySnapshot

    return Fig6Result(
        proposal=proposal,
        conventional=conventional,
        n_updates=n_updates,
        seed=seed,
        obs=proposal_system.obs if observe else None,
        replicas={
            name: site.store.as_dict()
            for name, site in proposal_system.sites.items()
        },
        # Both engines replay the trace; the task's kernel-event total
        # counts both (the throughput the sweep actually sustained).
        events_processed=(
            proposal_system.env.events_processed
            + conventional_system.env.events_processed
        ),
        telemetry=TelemetrySnapshot.capture(
            proposal_system,
            extra_events=conventional_system.env.events_processed,
        ).to_dict(),
    )
