"""Shared experiment running machinery.

:func:`run_counted` drives one workload trace through any system
(proposal, centralized, escrow, ...) with the closed-loop discipline the
paper's Fig. 6 implies, sampling total and per-site correspondence
counts at update-count checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.types import UPDATE_TAGS, UpdateResult
from repro.metrics.correspondence import CorrespondenceSeries
from repro.workload.driver import run_closed
from repro.workload.trace import WorkloadTrace


@dataclass(frozen=True)
class Checkpoint:
    """System state sampled after ``updates`` updates completed."""

    updates: int
    total_correspondences: float
    per_site: Dict[str, float]


@dataclass
class CountedRun:
    """Everything :func:`run_counted` measures."""

    label: str
    checkpoints: List[Checkpoint] = field(default_factory=list)
    results: List[UpdateResult] = field(default_factory=list)

    def series(self) -> CorrespondenceSeries:
        """The (updates, correspondences) growth curve."""
        series = CorrespondenceSeries(self.label)
        for cp in self.checkpoints:
            series.sample(cp.updates, cp.total_correspondences)
        return series

    def final(self) -> Checkpoint:
        if not self.checkpoints:
            raise ValueError(f"run {self.label!r} sampled no checkpoints")
        return self.checkpoints[-1]


def checkpoint_schedule(n_updates: int, every: int) -> List[int]:
    """Multiples of ``every`` up to and always including ``n_updates``."""
    if n_updates <= 0 or every <= 0:
        raise ValueError("n_updates and every must be positive")
    points = list(range(every, n_updates + 1, every))
    if not points or points[-1] != n_updates:
        points.append(n_updates)
    return points


def run_counted(
    system,
    trace: WorkloadTrace,
    label: str,
    checkpoints: Optional[Sequence[int]] = None,
    site_names: Optional[Sequence[str]] = None,
) -> CountedRun:
    """Drive ``trace`` through ``system`` sampling correspondence growth.

    Parameters
    ----------
    system:
        Anything with the driving surface (``env``/``update``/``run``/
        ``stats``): :class:`DistributedSystem`, :class:`CentralizedSystem`.
    trace:
        The frozen workload (use the *same* trace across systems).
    checkpoints:
        Update counts to sample at; defaults to every 10% of the trace.
    site_names:
        Sites to report per-site counts for; defaults to all update
        origins found in the trace.
    """
    n = len(trace)
    if checkpoints is None:
        checkpoints = checkpoint_schedule(n, max(1, n // 10))
    pending = sorted(set(checkpoints))
    if pending and pending[-1] > n:
        raise ValueError(f"checkpoint {pending[-1]} beyond trace length {n}")
    if site_names is None:
        site_names = sorted({e.site for e in trace})

    run = CountedRun(label=label)
    marks = set(pending)

    def on_complete(i: int, event, result) -> None:
        done = i + 1
        if done in marks:
            run.checkpoints.append(
                Checkpoint(
                    updates=done,
                    total_correspondences=system.stats.correspondences_for_tags(
                        UPDATE_TAGS
                    ),
                    per_site={
                        s: system.stats.correspondences_for_site_tags(
                            s, UPDATE_TAGS
                        )
                        for s in site_names
                    },
                )
            )

    run.results = run_closed(system, trace, on_complete=on_complete)
    return run
