"""Table 1 reproduction: per-site correspondences for update.

The paper's Table 1 lists, per site (site 0 the maker, sites 1-2 the
retailers), the number of correspondences for update at a series of
total-update checkpoints. Its numeric cells are illegible in the scanned
text, so we reproduce the table's *structure* and validate the stated
qualitative claims:

* "the numbers are almost same between site 1 and site 2" — fairness,
  measured by Jain's index over the retailer columns;
* "and increases very slowly" — sub-linear per-site growth, measured as
  the late-half growth rate per update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.centralized import CentralizedSystem
from repro.cluster import DistributedSystem, paper_config
from repro.core.assurance import AssuranceReport, assurance_report
from repro.core.types import UpdateKind
from repro.metrics.report import text_table

from repro.experiments.fig6 import make_paper_trace
from repro.experiments.runner import CountedRun, run_counted


@dataclass
class Table1Result:
    """Per-site correspondence growth for both mechanisms."""

    proposal: CountedRun
    conventional: CountedRun
    site_names: List[str]
    retailers: List[str]
    n_updates: int
    seed: int
    #: the proposal run's observability hub when run with observe=True
    obs: Optional[object] = None
    #: final replica values per site (proposal run) — the determinism
    #: fingerprint the sharded sweep runner compares byte-for-byte
    replicas: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: kernel events processed by the proposal run (throughput metric)
    events_processed: int = 0
    #: full telemetry snapshot of the proposal run (events, metric
    #: registry, per-site end state) — see :mod:`repro.obs.snapshot`
    telemetry: Dict[str, object] = field(default_factory=dict)

    def assurance(self) -> AssuranceReport:
        """The paper's assurance claim, quantified on the final checkpoint."""
        final = self.proposal.final()
        delay_results = [
            r for r in self.proposal.results if r.kind is UpdateKind.DELAY
        ]
        return assurance_report(
            retailer_correspondences={
                s: final.per_site[s] for s in self.retailers
            },
            delay_total=len(delay_results),
            delay_local=sum(1 for r in delay_results if r.local_only),
            delay_committed=sum(1 for r in delay_results if r.committed),
        )

    def per_site_growth(self, site: str) -> float:
        """Late-half correspondences per update at ``site`` (proposal).

        "Increases very slowly" ⇒ this stays well below the conventional
        per-site slope.
        """
        cps = self.proposal.checkpoints
        if len(cps) < 2:
            raise ValueError("need at least two checkpoints")
        mid = cps[len(cps) // 2]
        last = cps[-1]
        du = last.updates - mid.updates
        if du == 0:
            return 0.0
        return (last.per_site[site] - mid.per_site[site]) / du

    def render(self) -> str:
        headers = ["updates"] + [f"{s} (prop)" for s in self.site_names] + [
            f"{s} (conv)" for s in self.site_names
        ]
        conv = {cp.updates: cp for cp in self.conventional.checkpoints}
        rows = []
        for cp in self.proposal.checkpoints:
            row: list = [cp.updates]
            row += [cp.per_site[s] for s in self.site_names]
            conv_cp = conv.get(cp.updates)
            row += [
                conv_cp.per_site[s] if conv_cp else float("nan")
                for s in self.site_names
            ]
            rows.append(row)
        table = text_table(
            headers,
            rows,
            title=(
                f"Table 1 — per-site correspondences for update"
                f" (n={self.n_updates}, seed={self.seed})"
            ),
        )
        rep = self.assurance()
        return table + f"\n{rep}"


def run_table1(
    n_updates: int = 1000,
    seed: int = 0,
    n_items: int = 10,
    initial_stock: float = 100.0,
    n_retailers: int = 2,
    checkpoints: Optional[Sequence[int]] = None,
    observe: bool = False,
    topology=None,
) -> Table1Result:
    """Regenerate Table 1 (plus the same columns for the baseline).

    ``topology`` routes the build through the topology-aware path (see
    :func:`repro.experiments.fig6.run_fig6`).
    """
    if checkpoints is None:
        step = max(1, n_updates // 10)
        checkpoints = list(range(step, n_updates + 1, step))
    trace = make_paper_trace(
        n_updates, seed, n_items=n_items,
        initial_stock=initial_stock, n_retailers=n_retailers,
    )
    config = paper_config(
        n_items=n_items,
        initial_stock=initial_stock,
        n_retailers=n_retailers,
        seed=seed,
        observe=observe,
        topology=topology,
    )
    site_names = config.site_names

    proposal_system = DistributedSystem.build(config)
    proposal = run_counted(
        proposal_system, trace, "proposal", checkpoints, site_names=site_names
    )
    proposal_system.check_invariants()

    conventional_system = CentralizedSystem(config)
    conventional = run_counted(
        conventional_system, trace, "conventional", checkpoints, site_names=site_names
    )

    from repro.obs.snapshot import TelemetrySnapshot

    return Table1Result(
        proposal=proposal,
        conventional=conventional,
        site_names=site_names,
        retailers=config.retailers,
        n_updates=n_updates,
        seed=seed,
        obs=proposal_system.obs if observe else None,
        replicas={
            name: site.store.as_dict()
            for name, site in proposal_system.sites.items()
        },
        # Both engines replay the trace; the task's kernel-event total
        # counts both (the throughput the sweep actually sustained).
        events_processed=(
            proposal_system.env.events_processed
            + conventional_system.env.events_processed
        ),
        telemetry=TelemetrySnapshot.capture(
            proposal_system,
            extra_events=conventional_system.env.events_processed,
        ).to_dict(),
    )
