"""Fault-tolerance experiment (the paper's availability claim).

The paper argues the autonomous approach is fault-tolerant because "the
data can be updated autonomously at the local site within it without any
communication". We test exactly that: crash the maker mid-run (or
partition it away) and measure retailer availability inside and outside
the fault window, for the proposal *and* the centralized baseline —
where the server's crash stops every site cold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines.centralized import CENTER, CentralizedSystem
from repro.cluster import DistributedSystem, paper_config
from repro.metrics.availability import AvailabilityTracker
from repro.net.faults import FaultSchedule
from repro.workload.driver import run_open, split_by_site

from repro.experiments.fig6 import make_paper_trace


@dataclass
class FaultResult:
    """Availability per (system, site, window)."""

    #: {system_label: {site: (avail_normal, avail_during_fault)}}
    availability: Dict[str, Dict[str, tuple]]
    fault_start: float
    fault_end: float

    def retailer_availability_during_fault(self, label: str, retailers) -> float:
        cells = [self.availability[label][r][1] for r in retailers]
        return sum(cells) / len(cells) if cells else 1.0

    def rows(self) -> List[List]:
        out = []
        for label, sites in self.availability.items():
            for site, (normal, fault) in sorted(sites.items()):
                out.append([label, site, round(normal, 3), round(fault, 3)])
        return out


FAULT_HEADERS = ["system", "site", "normal", "during fault"]


def run_fault_experiment(
    n_updates: int = 900,
    n_items: int = 10,
    seed: int = 0,
    interarrival: float = 5.0,
    fault_start: float = 400.0,
    fault_end: float = 900.0,
    crash_site: Optional[str] = None,
) -> FaultResult:
    """Crash the maker (proposal) / the server (centralized) mid-run.

    Both systems see the same per-site arrival streams; AV requests use a
    timeout so retailers that ask a dead maker recover (the ask may still
    be rejected — that shows up as lost availability, honestly counted).
    """
    config = paper_config(
        n_items=n_items,
        seed=seed,
        request_timeout=10.0,
    )
    crash_site = crash_site or config.maker
    trace = make_paper_trace(n_updates, seed, n_items=n_items)
    per_site = split_by_site(trace)

    availability: Dict[str, Dict[str, tuple]] = {}

    def crash_schedule(victim):
        # Declarative schedule; the default recover action only clears
        # the crash flag — exactly the old ad-hoc crasher generator, so
        # availability numbers are unchanged.
        return FaultSchedule().crash(fault_start, victim).recover(fault_end, victim)

    # ---------------- proposal ----------------
    system = DistributedSystem.build(config)
    tracker = AvailabilityTracker(fault_start, fault_end)
    crash_schedule(crash_site).install(system.env, system.network.faults)
    run_open(
        system,
        per_site,
        interarrival=interarrival,
        on_complete=lambda i, e, r: tracker.record(r),
    )
    availability["proposal"] = {
        s: (tracker.availability(s, False), tracker.availability(s, True))
        for s in config.site_names
    }

    # ---------------- centralized ----------------
    central = CentralizedSystem(config, request_timeout=10.0)
    tracker_c = AvailabilityTracker(fault_start, fault_end)
    crash_schedule(CENTER).install(central.env, central.network.faults)
    run_open(
        central,
        per_site,
        interarrival=interarrival,
        on_complete=lambda i, e, r: tracker_c.record(r),
    )
    availability["centralized"] = {
        s: (tracker_c.availability(s, False), tracker_c.availability(s, True))
        for s in config.site_names
    }

    return FaultResult(
        availability=availability,
        fault_start=fault_start,
        fault_end=fault_end,
    )


def run_partition_experiment(
    n_updates: int = 900,
    n_items: int = 10,
    seed: int = 0,
    interarrival: float = 5.0,
    fault_start: float = 400.0,
    fault_end: float = 900.0,
) -> FaultResult:
    """Partition the maker away from the retailers, then heal.

    The retailer group keeps its own AV economy alive: local updates
    and retailer↔retailer transfers still work, only maker-bound
    transfers fail. The centralized deployment partitions *every*
    client away from the server — total outage.
    """
    config = paper_config(
        n_items=n_items,
        seed=seed,
        request_timeout=10.0,
    )
    trace = make_paper_trace(n_updates, seed, n_items=n_items)
    per_site = split_by_site(trace)

    availability: Dict[str, Dict[str, tuple]] = {}

    def partition_schedule(*groups):
        return FaultSchedule().partition(fault_start, *groups).heal(fault_end)

    # ---------------- proposal: maker isolated ----------------
    system = DistributedSystem.build(config)
    tracker = AvailabilityTracker(fault_start, fault_end)
    partition_schedule([config.maker], list(config.retailers)).install(
        system.env, system.network.faults
    )
    run_open(
        system,
        per_site,
        interarrival=interarrival,
        on_complete=lambda i, e, r: tracker.record(r),
    )
    availability["proposal"] = {
        s: (tracker.availability(s, False), tracker.availability(s, True))
        for s in config.site_names
    }

    # ---------------- centralized: server isolated ----------------
    central = CentralizedSystem(config, request_timeout=10.0)
    tracker_c = AvailabilityTracker(fault_start, fault_end)
    partition_schedule([CENTER], list(config.site_names)).install(
        central.env, central.network.faults
    )
    run_open(
        central,
        per_site,
        interarrival=interarrival,
        on_complete=lambda i, e, r: tracker_c.record(r),
    )
    availability["centralized"] = {
        s: (tracker_c.availability(s, False), tracker_c.availability(s, True))
        for s in config.site_names
    }

    return FaultResult(
        availability=availability,
        fault_start=fault_start,
        fault_end=fault_end,
    )
