"""Chaos harness: the system must *converge* under faults, not just survive.

Each scenario drives the §4 workload while a declarative
:class:`~repro.net.faults.FaultSchedule` injects crashes, partitions,
message loss and link flapping — with the robustness layer on (reliable
propagation, AV grant leases, crash-recovery rejoin) and the runtime
sanitizer attached. After the schedule's fault window the harness heals
everything, restarts any site still down, drains the simulation to
quiescence, and then demands the strong post-conditions the paper's
availability story implies but the seed reproduction could not meet:

* **zero sanitizer violations** (AV conservation, hold/lease lifecycle,
  lock order, no ``prop.lost``);
* **zero loss signals** — no conservative in-transit AV loss warnings
  (``av.grant-lost``/``av.push-lost``), nothing still in flight, no
  unresolved lease;
* **byte-identical replicas** at every site, equal to the ground-truth
  ledger.

Run it via ``python -m repro chaos [--small]``; CI treats any failing
scenario as a build failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.invariants import SanitizerReport, Violation
from repro.cluster import DistributedSystem, paper_config
from repro.cluster.config import SystemConfig
from repro.core.sync import SyncScheduler
from repro.net.faults import FaultSchedule
from repro.net.reliable import ReliabilityParams
from repro.workload.driver import run_open, split_by_site

from repro.experiments.fig6 import make_paper_trace

#: sanitizer warning rules that mean volume or state was lost — the
#: robustness layer's whole point is that none of them ever fires
LOSS_RULES = ("av.grant-lost", "av.push-lost", "net.in-flight", "lease.unresolved")


@dataclass(frozen=True)
class ChaosScenario:
    """A named fault schedule over the standard chaos run shape."""

    name: str
    #: builds the schedule for a concrete config (site names, windows)
    build: Callable[[SystemConfig], FaultSchedule]
    description: str = ""


@dataclass
class ChaosResult:
    """Outcome of one scenario."""

    scenario: str
    converged: bool
    divergence: Optional[str]
    report: SanitizerReport
    loss_warnings: List[Violation]
    updates_issued: int
    updates_completed: int
    #: kernel events processed by the scenario's simulation
    events_processed: int = 0
    #: full telemetry snapshot of the end state (see repro.obs.snapshot)
    telemetry: Dict[str, object] = field(default_factory=dict)
    #: the run's observability hub (chaos always observes), for span
    #: rollups in the profiler CLI
    obs: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.report.ok and self.converged and not self.loss_warnings

    def render(self) -> str:
        counters = self.report.counters
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"chaos {self.scenario}: {status}"
            f" ({self.updates_completed}/{self.updates_issued} updates,"
            f" {len(self.report.violations)} violations,"
            f" {len(self.loss_warnings)} loss warnings,"
            f" replicas {'converged' if self.converged else 'DIVERGED'})",
            f"  leases opened={counters.get('leases_opened', 0)}"
            f" discharged={counters.get('leases_discharged', 0)}"
            f" reverted={counters.get('leases_reverted', 0)};"
            f" covered drops: lease={counters.get('lease_covered_drops', 0)}"
            f" rel={counters.get('rel_covered_drops', 0)}",
        ]
        if self.divergence:
            lines.append(f"  divergence: {self.divergence}")
        for v in self.report.violations:
            lines.append("  " + v.render())
        for w in self.loss_warnings:
            lines.append("  " + w.render())
        return "\n".join(lines)


@dataclass
class ChaosReport:
    """All scenarios of one ``run_chaos`` invocation."""

    results: List[ChaosResult] = field(default_factory=list)
    n_updates: int = 0
    seed: int = 0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def render(self) -> str:
        header = (
            f"chaos suite (n={self.n_updates}, seed={self.seed}):"
            f" {'PASS' if self.ok else 'FAIL'}"
            f" [{sum(r.ok for r in self.results)}/{len(self.results)} scenarios]"
        )
        return "\n".join([header] + [r.render() for r in self.results])


# -------------------------------------------------------------------- #
# scenarios
# -------------------------------------------------------------------- #

def _maker_crash(config: SystemConfig) -> FaultSchedule:
    return FaultSchedule().crash(60.0, config.maker).recover(150.0, config.maker)


def _retailer_crash(config: SystemConfig) -> FaultSchedule:
    victim = config.retailers[0]
    return FaultSchedule().crash(60.0, victim).recover(150.0, victim)


def _partition_loss(config: SystemConfig) -> FaultSchedule:
    # ISSUE 3's third mandatory schedule: maker partitioned away while
    # every link also drops 5% of messages. The heal phase (run shape,
    # not schedule) clears the loss rate before the drain.
    return (
        FaultSchedule()
        .drop(0.0, 0.05)
        .partition(80.0, [config.maker], list(config.retailers))
        .heal(200.0)
    )


def _crash_storm(config: SystemConfig) -> FaultSchedule:
    schedule = FaultSchedule().crash(50.0, config.maker).recover(140.0, config.maker)
    for offset, victim in enumerate(config.retailers):
        start = 80.0 + 30.0 * offset
        schedule.crash(start, victim).recover(start + 90.0, victim)
    return schedule


def _flaky_links(config: SystemConfig) -> FaultSchedule:
    first = config.retailers[0]
    schedule = FaultSchedule().flap(config.maker, first, 60.0, 240.0, 40.0)
    if len(config.retailers) > 1:
        schedule.link_drop(0.0, config.maker, config.retailers[1], 0.2)
        schedule.link_drop(260.0, config.maker, config.retailers[1], None)
    return schedule


SMALL_SCENARIOS = (
    ChaosScenario("maker-crash", _maker_crash, "base site down mid-run"),
    ChaosScenario("retailer-crash", _retailer_crash, "replica down mid-run"),
    ChaosScenario(
        "partition-loss", _partition_loss, "maker isolated + 5% message loss"
    ),
)

FULL_SCENARIOS = SMALL_SCENARIOS + (
    ChaosScenario("crash-storm", _crash_storm, "overlapping crash windows"),
    ChaosScenario(
        "flaky-links", _flaky_links, "flapping maker link + 20% lossy link"
    ),
)


# -------------------------------------------------------------------- #
# the run shape
# -------------------------------------------------------------------- #

def run_chaos_scenario(
    scenario: ChaosScenario,
    n_updates: int = 120,
    seed: int = 0,
    n_items: int = 6,
    n_retailers: int = 2,
    interarrival: float = 4.0,
    horizon: float = 260.0,
    settle: float = 150.0,
    sync_interval: float = 30.0,
    reliability: Optional[ReliabilityParams] = None,
) -> ChaosResult:
    """Drive one scenario to quiescence and audit the end state.

    ``horizon`` bounds the driven (faulty) phase; the heal phase then
    removes every fault, restarts still-crashed sites through the full
    rejoin, lets ``settle`` sim-time pass, flushes all sync backlogs and
    drains the event queue before judging.
    """
    config = paper_config(
        n_items=n_items,
        n_retailers=n_retailers,
        seed=seed,
        request_timeout=8.0,
        observe=True,
        sanitize=True,
        reliability=reliability if reliability is not None else ReliabilityParams(),
    )
    system = DistributedSystem.build(config)
    faults = system.network.faults
    trace = make_paper_trace(
        n_updates, seed, n_items=n_items, n_retailers=n_retailers
    )
    per_site = split_by_site(trace)

    completed = [0]

    def on_complete(_i, _event, _result):
        completed[0] += 1

    schedulers = [
        SyncScheduler(system.sites[name].accelerator, interval=sync_interval)
        for name in sorted(system.sites)
    ]
    for scheduler in schedulers:
        scheduler.start()

    scenario.build(config).install(
        system.env,
        faults,
        on_recover=lambda name: system.sites[name].restart(),
    )

    # Phase 1: drive the workload through the fault window.
    run_open(
        system, per_site, interarrival=interarrival,
        on_complete=on_complete, until=horizon,
    )

    # Phase 2: heal the world. Every fault class is cleared and every
    # site still down rejoins — convergence is only promised for fault
    # windows that end.
    faults.heal()
    faults.clear_link_faults()
    faults.set_drop_probability(0.0)
    for name in sorted(system.sites):
        if faults.is_crashed(name):
            system.sites[name].restart()

    # Phase 3: settle and drain. The drivers finish their streams, the
    # rejoins complete, retransmissions and lease probes resolve; then
    # sync backlogs are flushed to a fixpoint (an update completing
    # after the schedulers stop still leaves owed balances behind).
    system.run(until=system.env.now + settle)
    for scheduler in schedulers:
        scheduler.stop()
    system.run()
    while True:
        for name in sorted(system.sites):
            system.sites[name].accelerator.sync_all()
        system.run()
        if not any(
            system.sites[name].accelerator.unsynced_items()
            for name in sorted(system.sites)
        ):
            break

    from repro.cluster.system import InvariantViolation

    converged = True
    divergence = None
    try:
        system.check_invariants(quiescent=True)
    except InvariantViolation as exc:
        converged = False
        divergence = str(exc)

    from repro.obs.snapshot import TelemetrySnapshot

    report = system.sanitizer.finish()
    loss = [w for w in report.warnings if w.rule in LOSS_RULES]
    return ChaosResult(
        scenario=scenario.name,
        converged=converged,
        divergence=divergence,
        report=report,
        loss_warnings=loss,
        updates_issued=len(trace),
        updates_completed=completed[0],
        events_processed=system.env.events_processed,
        telemetry=TelemetrySnapshot.capture(system).to_dict(),
        obs=system.obs,
    )


def run_chaos(
    small: bool = False,
    n_updates: Optional[int] = None,
    seed: int = 0,
    n_items: int = 6,
) -> ChaosReport:
    """Run the scenario suite; ``small`` is the CI smoke variant."""
    scenarios = SMALL_SCENARIOS if small else FULL_SCENARIOS
    updates = n_updates if n_updates is not None else (120 if small else 300)
    chaos = ChaosReport(n_updates=updates, seed=seed)
    for scenario in scenarios:
        chaos.results.append(
            run_chaos_scenario(
                scenario, n_updates=updates, seed=seed, n_items=n_items
            )
        )
    return chaos
