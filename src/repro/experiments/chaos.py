"""Chaos harness: the system must *converge* under faults, not just survive.

Each scenario drives the §4 workload while a declarative
:class:`~repro.net.faults.FaultSchedule` injects crashes, partitions,
message loss and link flapping — with the robustness layer on (reliable
propagation, AV grant leases, crash-recovery rejoin) and the runtime
sanitizer attached. After the schedule's fault window the harness heals
everything, restarts any site still down, drains the simulation to
quiescence, and then demands the strong post-conditions the paper's
availability story implies but the seed reproduction could not meet:

* **zero sanitizer violations** (AV conservation, hold/lease lifecycle,
  lock order, no ``prop.lost``);
* **zero loss signals** — no conservative in-transit AV loss warnings
  (``av.grant-lost``/``av.push-lost``), nothing still in flight, no
  unresolved lease;
* **byte-identical replicas** at every site, equal to the ground-truth
  ledger.

Run it via ``python -m repro chaos [--small]``; CI treats any failing
scenario as a build failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.invariants import SanitizerReport, Violation
from repro.cluster import DistributedSystem, paper_config
from repro.cluster.config import SystemConfig
from repro.core.overload import OverloadParams
from repro.core.sync import SyncScheduler
from repro.core.types import UpdateOutcome, UpdateResult
from repro.net.faults import FaultSchedule
from repro.net.reliable import ReliabilityParams
from repro.sim.rng import RngRegistry
from repro.workload.driver import run_open, split_by_site
from repro.workload.generators import FlashSaleWorkload
from repro.workload.trace import WorkloadTrace

from repro.experiments.fig6 import make_paper_trace

#: sanitizer warning rules that mean volume or state was lost — the
#: robustness layer's whole point is that none of them ever fires
LOSS_RULES = ("av.grant-lost", "av.push-lost", "net.in-flight", "lease.unresolved")


@dataclass(frozen=True)
class ChaosScenario:
    """A named fault schedule over the standard chaos run shape.

    The default shape is the §4 paper trace under lock-step per-site
    arrivals; a scenario may override any part of it — the surge
    scenarios swap in a flash-sale trace, open-loop arrivals and the
    overload layer, then audit overload-specific end state on top of
    the standard convergence post-conditions.
    """

    name: str
    #: builds the schedule for a concrete config (site names, windows)
    build: Callable[[SystemConfig], FaultSchedule]
    description: str = ""
    #: extra ``paper_config`` keyword overrides (e.g. the overload layer)
    config_overrides: Optional[Dict[str, object]] = None
    #: run-shape overrides: interarrival / horizon / settle / sync_interval
    run_overrides: Optional[Dict[str, float]] = None
    #: replaces :func:`make_paper_trace`: ``(n_updates, seed, config)``
    trace_factory: Optional[
        Callable[[int, int, SystemConfig], WorkloadTrace]
    ] = None
    #: end-state audit run after the drain: ``(system, results)`` →
    #: failure strings, folded into :attr:`ChaosResult.ok`
    extra_checks: Optional[
        Callable[[DistributedSystem, List[UpdateResult]], List[str]]
    ] = None
    #: issue updates at the arrival rate instead of lock-step per site
    open_loop: bool = False


@dataclass
class ChaosResult:
    """Outcome of one scenario."""

    scenario: str
    converged: bool
    divergence: Optional[str]
    report: SanitizerReport
    loss_warnings: List[Violation]
    updates_issued: int
    updates_completed: int
    #: kernel events processed by the scenario's simulation
    events_processed: int = 0
    #: full telemetry snapshot of the end state (see repro.obs.snapshot)
    telemetry: Dict[str, object] = field(default_factory=dict)
    #: the run's observability hub (chaos always observes), for span
    #: rollups in the profiler CLI
    obs: Optional[object] = None
    #: scenario-specific end-state failures (see ChaosScenario.extra_checks)
    extra_failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.report.ok
            and self.converged
            and not self.loss_warnings
            and not self.extra_failures
        )

    def render(self) -> str:
        counters = self.report.counters
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"chaos {self.scenario}: {status}"
            f" ({self.updates_completed}/{self.updates_issued} updates,"
            f" {len(self.report.violations)} violations,"
            f" {len(self.loss_warnings)} loss warnings,"
            f" replicas {'converged' if self.converged else 'DIVERGED'})",
            f"  leases opened={counters.get('leases_opened', 0)}"
            f" discharged={counters.get('leases_discharged', 0)}"
            f" reverted={counters.get('leases_reverted', 0)};"
            f" covered drops: lease={counters.get('lease_covered_drops', 0)}"
            f" rel={counters.get('rel_covered_drops', 0)}",
        ]
        if self.divergence:
            lines.append(f"  divergence: {self.divergence}")
        for v in self.report.violations:
            lines.append("  " + v.render())
        for w in self.loss_warnings:
            lines.append("  " + w.render())
        for msg in self.extra_failures:
            lines.append(f"  end-state: {msg}")
        return "\n".join(lines)


@dataclass
class ChaosReport:
    """All scenarios of one ``run_chaos`` invocation."""

    results: List[ChaosResult] = field(default_factory=list)
    n_updates: int = 0
    seed: int = 0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def render(self) -> str:
        header = (
            f"chaos suite (n={self.n_updates}, seed={self.seed}):"
            f" {'PASS' if self.ok else 'FAIL'}"
            f" [{sum(r.ok for r in self.results)}/{len(self.results)} scenarios]"
        )
        return "\n".join([header] + [r.render() for r in self.results])


# -------------------------------------------------------------------- #
# scenarios
# -------------------------------------------------------------------- #

def _maker_crash(config: SystemConfig) -> FaultSchedule:
    return FaultSchedule().crash(60.0, config.maker).recover(150.0, config.maker)


def _retailer_crash(config: SystemConfig) -> FaultSchedule:
    victim = config.retailers[0]
    return FaultSchedule().crash(60.0, victim).recover(150.0, victim)


def _partition_loss(config: SystemConfig) -> FaultSchedule:
    # ISSUE 3's third mandatory schedule: maker partitioned away while
    # every link also drops 5% of messages. The heal phase (run shape,
    # not schedule) clears the loss rate before the drain.
    return (
        FaultSchedule()
        .drop(0.0, 0.05)
        .partition(80.0, [config.maker], list(config.retailers))
        .heal(200.0)
    )


def _crash_storm(config: SystemConfig) -> FaultSchedule:
    schedule = FaultSchedule().crash(50.0, config.maker).recover(140.0, config.maker)
    for offset, victim in enumerate(config.retailers):
        start = 80.0 + 30.0 * offset
        schedule.crash(start, victim).recover(start + 90.0, victim)
    return schedule


def _flaky_links(config: SystemConfig) -> FaultSchedule:
    first = config.retailers[0]
    schedule = FaultSchedule().flap(config.maker, first, 60.0, 240.0, 40.0)
    if len(config.retailers) > 1:
        schedule.link_drop(0.0, config.maker, config.retailers[1], 0.2)
        schedule.link_drop(260.0, config.maker, config.retailers[1], None)
    return schedule


def _no_faults(config: SystemConfig) -> FaultSchedule:
    # The overload scenario's adversary is the workload, not the network.
    return FaultSchedule()


def _overload_trace(
    n_updates: int, seed: int, config: SystemConfig
) -> WorkloadTrace:
    """Flash-sale surge hitting both consistency paths at once.

    The hot set pairs the first non-regular item (every decrement is a
    2PC — the coordination storm that strains the maker into demoting
    it) with the hottest regular item (a Delay storm against the AV
    budgets). The maker joins the burst rotation: demotion is
    maker-initiated, so the base site must feel the surge first-hand.
    """
    items = [
        f"item{i:0{len(str(config.n_items - 1))}d}"
        for i in range(config.n_items)
    ]
    n_regular = round(config.n_items * config.regular_fraction)
    if n_regular < config.n_items:
        hot = [items[n_regular], items[0]]
    else:  # pragma: no cover - scenario always configures a mixed catalog
        hot = items[:2]
    cold = [i for i in items if i not in hot]
    generator = FlashSaleWorkload(
        maker=config.maker,
        retailers=[config.maker, *config.retailers],
        items=[*hot, *cold],
        rng=RngRegistry(seed).stream("workload.flashsale"),
        hot_items=len(hot),
        burst=max(1, n_updates // (len(config.retailers) + 1)),
    )
    return WorkloadTrace.capture(generator, n_updates)


def _overload_checks(
    system: DistributedSystem, results: List[UpdateResult]
) -> List[str]:
    """The overload layer's end-state oracle set.

    Beyond the standard chaos post-conditions (sanitizer clean, replicas
    converged) the surge must end with: every controller back at NORMAL
    having taken only legal edges, every shed observably rejected with a
    retry hint, queues bounded by their budgets, the demotion/promotion
    lifecycle closed, and — recomputed from the update results rather
    than the ledger — not a single committed decrement missing from any
    replica.
    """
    from repro.core.overload import ALLOWED_TRANSITIONS, DegradationState

    failures: List[str] = []
    legal = {(a.value, b.value) for a, b in ALLOWED_TRANSITIONS}
    collector = system.collector
    total_shed = 0
    total_demotions = 0
    for name in sorted(system.sites):
        ovl = system.sites[name].accelerator.overload
        if ovl is None:
            failures.append(f"{name}: overload layer not attached")
            continue
        total_shed += ovl.shed
        total_demotions += ovl.demotions
        if ovl.state is not DegradationState.NORMAL:
            failures.append(f"{name}: ended {ovl.state.value}, not normal")
        if ovl.demoted_items:
            failures.append(
                f"{name}: items still demoted at end: {ovl.demoted_items}"
            )
        if ovl.demotions != ovl.promotions:
            failures.append(
                f"{name}: {ovl.demotions} demotions vs"
                f" {ovl.promotions} promotions"
            )
        if ovl.peak_inflight > ovl.params.inflight_budget:
            failures.append(
                f"{name}: peak inflight {ovl.peak_inflight} exceeded"
                f" budget {ovl.params.inflight_budget}"
            )
        if ovl.peak_backlog > 2 * ovl.params.backlog_budget:
            failures.append(
                f"{name}: peak backlog {ovl.peak_backlog} ran away"
                f" (budget {ovl.params.backlog_budget})"
            )
        for _now, src, dst in ovl.transitions:
            if (src, dst) not in legal:
                failures.append(f"{name}: illegal transition {src}->{dst}")

    if total_shed == 0:
        failures.append("surge never shed a single update (budgets too lax?)")
    if total_demotions == 0:
        failures.append("surge never demoted the hot immediate item")
    shed_results = [
        r for r in collector.results if r.outcome is UpdateOutcome.SHED
    ]
    if len(shed_results) != total_shed:
        failures.append(
            f"{len(shed_results)} shed results reached callers but"
            f" controllers count {total_shed} sheds"
        )
    audit = getattr(system.sanitizer, "overload", None)
    if audit is not None and audit.sheds != total_shed:
        failures.append(
            f"sanitizer observed {audit.sheds} shed events but"
            f" controllers count {total_shed}"
        )
    for r in shed_results:
        if r.retry_after <= 0:
            failures.append(
                f"shed update {r.request} carries no retry-after hint"
            )
            break

    # No lost updates: recompute every item's value from the individual
    # committed results (bypassing the ledger, which shares bookkeeping
    # with the code under test) and demand every replica matches.
    committed_sum: Dict[str, float] = {}
    for r in collector.results:
        if r.committed:
            committed_sum[r.request.item] = (
                committed_sum.get(r.request.item, 0.0) + r.request.delta
            )
    ledger = collector.ledger
    for item in sorted(ledger.items()):
        want = ledger.initial_value(item) + committed_sum.get(item, 0.0)
        for name in sorted(system.sites):
            got = system.sites[name].store.value(item)
            if abs(got - want) > 1e-6:
                failures.append(
                    f"lost update: {name} holds {item}={got:g} but the"
                    f" committed deltas sum to {want:g}"
                )
    return failures


#: budgets tight enough that a 40-update burst per site must shed; the
#: shortened recovery hold keeps the promote leg inside the settle window
_OVERLOAD_PARAMS = OverloadParams(
    inflight_budget=8,
    backlog_budget=32,
    lock_wait_budget=4,
    recover_hold=10.0,
)

_OVERLOAD_SCENARIO = ChaosScenario(
    "overload",
    _no_faults,
    "flash-sale surge: open-loop bursts shed, degrade, demote, recover",
    config_overrides={
        "overload": _OVERLOAD_PARAMS,
        # A mixed catalog (the surge must stress both paths) with stock
        # deep enough that headroom, not solvency, is the story.
        "regular_fraction": 0.5,
        "initial_stock": 400.0,
    },
    run_overrides={"interarrival": 1.0, "horizon": 200.0, "sync_interval": 15.0},
    trace_factory=_overload_trace,
    extra_checks=_overload_checks,
    open_loop=True,
)


SMALL_SCENARIOS = (
    ChaosScenario("maker-crash", _maker_crash, "base site down mid-run"),
    ChaosScenario("retailer-crash", _retailer_crash, "replica down mid-run"),
    ChaosScenario(
        "partition-loss", _partition_loss, "maker isolated + 5% message loss"
    ),
    _OVERLOAD_SCENARIO,
)

FULL_SCENARIOS = SMALL_SCENARIOS + (
    ChaosScenario("crash-storm", _crash_storm, "overlapping crash windows"),
    ChaosScenario(
        "flaky-links", _flaky_links, "flapping maker link + 20% lossy link"
    ),
)


# -------------------------------------------------------------------- #
# the run shape
# -------------------------------------------------------------------- #

def run_chaos_scenario(
    scenario: ChaosScenario,
    n_updates: int = 120,
    seed: int = 0,
    n_items: int = 6,
    n_retailers: int = 2,
    interarrival: float = 4.0,
    horizon: float = 260.0,
    settle: float = 150.0,
    sync_interval: float = 30.0,
    reliability: Optional[ReliabilityParams] = None,
) -> ChaosResult:
    """Drive one scenario to quiescence and audit the end state.

    ``horizon`` bounds the driven (faulty) phase; the heal phase then
    removes every fault, restarts still-crashed sites through the full
    rejoin, lets ``settle`` sim-time pass, flushes all sync backlogs and
    drains the event queue before judging. A scenario may override the
    config, the trace, the arrival discipline and the run knobs (see
    :class:`ChaosScenario`).
    """
    run_cfg = dict(scenario.run_overrides) if scenario.run_overrides else {}
    interarrival = run_cfg.get("interarrival", interarrival)
    horizon = run_cfg.get("horizon", horizon)
    settle = run_cfg.get("settle", settle)
    sync_interval = run_cfg.get("sync_interval", sync_interval)
    overrides = dict(scenario.config_overrides) if scenario.config_overrides else {}
    config = paper_config(
        n_items=n_items,
        n_retailers=n_retailers,
        seed=seed,
        request_timeout=8.0,
        observe=True,
        sanitize=True,
        reliability=reliability if reliability is not None else ReliabilityParams(),
        **overrides,
    )
    system = DistributedSystem.build(config)
    faults = system.network.faults
    if scenario.trace_factory is not None:
        trace = scenario.trace_factory(n_updates, seed, config)
    else:
        trace = make_paper_trace(
            n_updates, seed, n_items=n_items, n_retailers=n_retailers
        )
    per_site = split_by_site(trace)

    completed = [0]

    def on_complete(_i, _event, _result):
        completed[0] += 1

    schedulers = [
        SyncScheduler(system.sites[name].accelerator, interval=sync_interval)
        for name in sorted(system.sites)
    ]
    for scheduler in schedulers:
        scheduler.start()

    scenario.build(config).install(
        system.env,
        faults,
        on_recover=lambda name: system.sites[name].restart(),
    )

    # Phase 1: drive the workload through the fault window.
    results = run_open(
        system, per_site, interarrival=interarrival,
        on_complete=on_complete, until=horizon,
        open_loop=scenario.open_loop,
    )

    # Phase 2: heal the world. Every fault class is cleared and every
    # site still down rejoins — convergence is only promised for fault
    # windows that end.
    faults.heal()
    faults.clear_link_faults()
    faults.set_drop_probability(0.0)
    for name in sorted(system.sites):
        if faults.is_crashed(name):
            system.sites[name].restart()

    # Phase 3: settle and drain. The drivers finish their streams, the
    # rejoins complete, retransmissions and lease probes resolve; then
    # sync backlogs are flushed to a fixpoint (an update completing
    # after the schedulers stop still leaves owed balances behind).
    system.run(until=system.env.now + settle)
    for scheduler in schedulers:
        scheduler.stop()
    system.run()

    def drain_sync() -> None:
        # Flush sync backlogs to a fixpoint: an update (or a promotion)
        # completing after the schedulers stop still leaves owed
        # balances behind.
        while True:
            for name in sorted(system.sites):
                system.sites[name].accelerator.sync_all()
            system.run()
            if not any(
                system.sites[name].accelerator.unsynced_items()
                for name in sorted(system.sites)
            ):
                break

    drain_sync()
    if config.overload is not None:
        # Quiescence stands in for the recovery hold: walk every
        # controller's remaining legal edges back to NORMAL, run the
        # re-promotions that spawns, then flush the balances and the
        # reconciliation traffic those left behind.
        for name in sorted(system.sites):
            system.sites[name].accelerator.overload.finalize(system.env.now)
        system.run()
        drain_sync()

    from repro.cluster.system import InvariantViolation

    converged = True
    divergence = None
    try:
        system.check_invariants(quiescent=True)
    except InvariantViolation as exc:
        converged = False
        divergence = str(exc)

    from repro.obs.snapshot import TelemetrySnapshot

    report = system.sanitizer.finish()
    loss = [w for w in report.warnings if w.rule in LOSS_RULES]
    extra_failures: List[str] = []
    if scenario.extra_checks is not None:
        extra_failures = list(scenario.extra_checks(system, results))
    return ChaosResult(
        scenario=scenario.name,
        converged=converged,
        divergence=divergence,
        report=report,
        loss_warnings=loss,
        updates_issued=len(trace),
        updates_completed=completed[0],
        events_processed=system.env.events_processed,
        telemetry=TelemetrySnapshot.capture(system).to_dict(),
        obs=system.obs,
        extra_failures=extra_failures,
    )


def run_chaos(
    small: bool = False,
    n_updates: Optional[int] = None,
    seed: int = 0,
    n_items: int = 6,
) -> ChaosReport:
    """Run the scenario suite; ``small`` is the CI smoke variant."""
    scenarios = SMALL_SCENARIOS if small else FULL_SCENARIOS
    updates = n_updates if n_updates is not None else (120 if small else 300)
    chaos = ChaosReport(n_updates=updates, seed=seed)
    for scenario in scenarios:
        chaos.results.append(
            run_chaos_scenario(
                scenario, n_updates=updates, seed=seed, n_items=n_items
            )
        )
    return chaos
