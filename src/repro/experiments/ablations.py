"""Ablations of the accelerator's design choices (DESIGN.md §5, A/B/D/E).

Each function returns rows ready for
:func:`repro.metrics.report.text_table`; the corresponding benches print
them. All variants replay the same frozen trace, so differences are
attributable to the ablated choice alone.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional

from repro.baselines.escrow import build_static_escrow_system
from repro.baselines.primary_copy import build_all_immediate_system
from repro.cluster import DistributedSystem, paper_config
from repro.core.policies import (
    DecidingPolicy,
    ExactPolicy,
    GrantAllPolicy,
    OverdraftPolicy,
    ProportionalPolicy,
    Soda99Policy,
)
from repro.core.strategies import (
    BelievedRichestStrategy,
    FixedOrderStrategy,
    RandomStrategy,
    RoundRobinStrategy,
)
from repro.core.types import UPDATE_TAGS

from repro.experiments.fig6 import make_paper_trace
from repro.experiments.runner import run_counted

ABLATION_HEADERS = [
    "variant",
    "correspondences",
    "av_requests",
    "local_ratio",
    "committed",
]


def _run_variant(system, trace, label: str) -> List[Any]:
    run = run_counted(system, trace, label, checkpoints=[len(trace)])
    results = run.results
    committed = sum(1 for r in results if r.committed)
    return [
        label,
        run.final().total_correspondences,
        sum(r.av_requests for r in results),
        round(sum(1 for r in results if r.local_only) / len(results), 3),
        round(committed / len(results), 3),
    ]


def ablate_grant_policy(
    n_updates: int = 1000, n_items: int = 10, seed: int = 0
) -> List[List[Any]]:
    """Ablation A: the SODA'99 half-grant vs alternatives."""
    trace = make_paper_trace(n_updates, seed, n_items=n_items)
    policies: Dict[str, Callable[[], DecidingPolicy]] = {
        "soda99-half": Soda99Policy,
        "grant-all": GrantAllPolicy,
        "exact": ExactPolicy,
        "proportional-0.25": lambda: ProportionalPolicy(0.25),
        "overdraft-2x": lambda: OverdraftPolicy(2.0),
    }
    rows = []
    for label, make_policy in policies.items():
        system = DistributedSystem.build(
            paper_config(n_items=n_items, seed=seed),
            policy_factory=lambda name, rngs, mp=make_policy: mp(),
        )
        rows.append(_run_variant(system, trace, label))
    return rows


def ablate_selection_strategy(
    n_updates: int = 1000, n_items: int = 10, seed: int = 0
) -> List[List[Any]]:
    """Ablation B: believed-richest vs blind selection orders."""
    trace = make_paper_trace(n_updates, seed, n_items=n_items)
    config = paper_config(n_items=n_items, seed=seed)
    strategies = {
        "believed-richest": lambda name, rngs: BelievedRichestStrategy(),
        "round-robin": lambda name, rngs: RoundRobinStrategy(),
        "random": lambda name, rngs: RandomStrategy(
            rngs.stream(f"{name}.strategy")
        ),
        "maker-first": lambda name, rngs: FixedOrderStrategy(config.site_names),
    }
    rows = []
    for label, factory in strategies.items():
        system = DistributedSystem.build(config, strategy_factory=factory)
        rows.append(_run_variant(system, trace, label))
    return rows


def ablate_escrow(
    n_updates: int = 1000, n_items: int = 10, seed: int = 0
) -> List[List[Any]]:
    """Ablation D: AV circulation vs a static escrow split.

    The static variant sends no AV traffic at all — its cost shows up as
    *rejected updates* instead; the committed column is the story here.
    """
    trace = make_paper_trace(n_updates, seed, n_items=n_items)
    config = paper_config(n_items=n_items, seed=seed)
    rows = [
        _run_variant(DistributedSystem.build(config), trace, "av-circulation"),
        _run_variant(build_static_escrow_system(config), trace, "static-escrow"),
    ]
    return rows


def ablate_update_mix(
    fractions=(1.0, 0.75, 0.5, 0.0),
    n_updates: int = 600,
    n_items: int = 10,
    seed: int = 0,
) -> List[List[Any]]:
    """Ablation E: cost as the regular (Delay-eligible) fraction shrinks.

    ``fraction=0`` is the all-immediate baseline: every update pays the
    full primary-copy protocol.
    """
    trace = make_paper_trace(n_updates, seed, n_items=n_items)
    rows = []
    for fraction in fractions:
        config = paper_config(
            n_items=n_items, seed=seed, regular_fraction=fraction
        )
        if fraction == 0.0:
            system = build_all_immediate_system(config)
        else:
            system = DistributedSystem.build(config)
        rows.append(_run_variant(system, trace, f"regular={fraction:.2f}"))
    return rows


def ablate_stale_beliefs(
    n_updates: int = 1000, n_items: int = 10, seed: int = 0
) -> List[List[Any]]:
    """Ablation B': does the piggybacked belief state actually help?

    Contrast the paper's believed-richest selection against random
    selection *and* against believed-richest with propagation enabled
    (fresher beliefs via more piggyback traffic — not free, but the AV
    request count shows whether the extra knowledge pays).
    """
    trace = make_paper_trace(n_updates, seed, n_items=n_items)
    rows = []
    rows.append(
        _run_variant(
            DistributedSystem.build(paper_config(n_items=n_items, seed=seed)),
            trace,
            "beliefs (paper)",
        )
    )
    rows.append(
        _run_variant(
            DistributedSystem.build(
                paper_config(n_items=n_items, seed=seed),
                strategy_factory=lambda name, rngs: RandomStrategy(
                    rngs.stream(f"{name}.strategy")
                ),
            ),
            trace,
            "no beliefs (random)",
        )
    )
    return rows
