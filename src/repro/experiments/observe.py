"""Observed runs: replay an experiment's workload with observability on.

``run_observed`` drives the same frozen paper workload the figure
experiments use through a proposal system built with
``SystemConfig.observe=True``, so every update records its full causal
span chain (checking → selecting → AV request at the requester →
grant/deciding at the grantor → apply), the metric registry accumulates
streaming aggregates, and a :class:`~repro.obs.sampler.PeriodicSampler`
snapshots per-site AV levels, belief staleness, lock-wait depth and
sync-queue backlog as time series.

The result object exports every format in :mod:`repro.obs.export`; the
``python -m repro observe <experiment>`` subcommand is a thin wrapper
around it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster import DistributedSystem, paper_config
from repro.core.sync import SyncScheduler
from repro.core.types import UpdateResult
from repro.obs.export import render_summary, write_chrome_trace, write_jsonl
from repro.obs.sampler import PeriodicSampler
from repro.workload.trace import WorkloadTrace

from repro.experiments.fig6 import make_paper_trace

#: experiments the observe runner knows how to replay
OBSERVABLE_EXPERIMENTS = ("fig6", "table1")


@dataclass
class ObservedRun:
    """One observed replay: the system (with its obs hub) plus results."""

    experiment: str
    system: DistributedSystem
    results: List[UpdateResult] = field(default_factory=list)
    n_updates: int = 0
    seed: int = 0

    @property
    def obs(self):
        return self.system.obs

    def render(self) -> str:
        """Aligned-table summary (spans, metrics, time series)."""
        title = f"observe {self.experiment} (n={self.n_updates}, seed={self.seed})"
        return render_summary(self.obs, title=title)

    def write_chrome_trace(self, path: str) -> Dict[str, Any]:
        """Write the span tree as a Perfetto-loadable trace-event file."""
        return write_chrome_trace(path, self.obs.recorder)

    def write_jsonl(self, path: str) -> int:
        """Write spans + metrics + samples as line-delimited JSON."""
        return write_jsonl(
            path,
            spans=self.obs.recorder,
            registry=self.obs.registry,
            series=self.obs.series,
        )


def run_observed(
    experiment: str = "fig6",
    n_updates: int = 300,
    seed: int = 0,
    n_items: int = 10,
    initial_stock: float = 100.0,
    n_retailers: int = 2,
    sample_interval: float = 25.0,
    sync_interval: float = 50.0,
    spacing: float = 1.0,
    trace: Optional[WorkloadTrace] = None,
    max_spans: Optional[int] = None,
) -> ObservedRun:
    """Replay ``experiment``'s proposal-system workload, observed.

    The workload is the frozen §4 paper trace both Fig. 6 and Table 1
    replay (so observed runs see exactly the traffic those figures
    count). Lazy sync runs on a real :class:`SyncScheduler` per site so
    sync passes appear as spans, and the sampler snapshots system state
    every ``sample_interval``. ``spacing`` idles the closed-loop driver
    between updates — without it, a mostly-local workload completes in
    almost no simulated time and the periodic processes never fire.
    """
    if experiment not in OBSERVABLE_EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment!r};"
            f" choose from {OBSERVABLE_EXPERIMENTS}"
        )
    if trace is None:
        trace = make_paper_trace(
            n_updates, seed, n_items=n_items,
            initial_stock=initial_stock, n_retailers=n_retailers,
        )
    config = paper_config(
        n_items=n_items,
        initial_stock=initial_stock,
        n_retailers=n_retailers,
        seed=seed,
        observe=True,
    )
    system = DistributedSystem.build(config)
    if max_spans is not None:
        # Swap in a capped recorder before any span starts. Protocols
        # fetch ``obs.recorder`` at call time, so this is safe.
        from repro.obs.spans import SpanRecorder

        system.obs.recorder = SpanRecorder(max_spans)

    run = ObservedRun(
        experiment=experiment, system=system,
        n_updates=len(trace), seed=seed,
    )

    schedulers = [
        SyncScheduler(site.accelerator, interval=sync_interval)
        for site in system.sites.values()
    ]
    sampler = PeriodicSampler(system, interval=sample_interval)

    def driver(env):
        # system.update already reports each result to the collector.
        for event in trace:
            result = yield system.update(event.site, event.item, event.delta)
            run.results.append(result)
            if spacing > 0:
                yield env.timeout(spacing)

    proc = system.env.process(driver(system.env), name="workload.observed")
    for scheduler in schedulers:
        scheduler.start()
    sampler.start()
    # The periodic processes never finish on their own, so run to the
    # driver's completion, stop them, then drain the in-flight tail
    # (sync pushes, propagation) so the trace is complete.
    system.run(until=proc)
    for site in system.sites.values():
        site.accelerator.sync_all()  # flush the remaining lazy backlog
    sampler.sample_once()  # final snapshot at the end of the workload
    for scheduler in schedulers:
        scheduler.stop()
    sampler.stop()
    system.run()
    system.check_invariants()
    return run
