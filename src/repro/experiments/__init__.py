"""Experiment harness: paper figures/tables, sweeps, ablations, faults."""

from repro.experiments.ablations import (
    ABLATION_HEADERS,
    ablate_escrow,
    ablate_grant_policy,
    ablate_selection_strategy,
    ablate_stale_beliefs,
    ablate_update_mix,
)
from repro.experiments.chaos import (
    ChaosReport,
    ChaosResult,
    ChaosScenario,
    run_chaos,
    run_chaos_scenario,
)
from repro.experiments.faults import (
    FAULT_HEADERS,
    FaultResult,
    run_fault_experiment,
    run_partition_experiment,
)
from repro.experiments.fig6 import Fig6Result, make_paper_trace, run_fig6
from repro.experiments.observe import (
    OBSERVABLE_EXPERIMENTS,
    ObservedRun,
    run_observed,
)
from repro.experiments.profile import (
    PROFILE_EXPERIMENTS,
    ProfiledRun,
    run_profiled,
)
from repro.experiments.latency_exp import (
    LATENCY_HEADERS,
    LatencyResult,
    run_latency_experiment,
)
from repro.experiments.runner import (
    Checkpoint,
    CountedRun,
    checkpoint_schedule,
    run_counted,
)
from repro.experiments.sweep import (
    SWEEP_HEADERS,
    SweepPoint,
    sweep_av_fraction,
    sweep_items,
    sweep_rows,
    sweep_scale,
)
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "ABLATION_HEADERS",
    "ChaosReport",
    "ChaosResult",
    "ChaosScenario",
    "Checkpoint",
    "CountedRun",
    "FAULT_HEADERS",
    "FaultResult",
    "Fig6Result",
    "LATENCY_HEADERS",
    "LatencyResult",
    "OBSERVABLE_EXPERIMENTS",
    "ObservedRun",
    "PROFILE_EXPERIMENTS",
    "ProfiledRun",
    "SWEEP_HEADERS",
    "SweepPoint",
    "Table1Result",
    "ablate_escrow",
    "ablate_grant_policy",
    "ablate_selection_strategy",
    "ablate_stale_beliefs",
    "ablate_update_mix",
    "checkpoint_schedule",
    "make_paper_trace",
    "run_chaos",
    "run_chaos_scenario",
    "run_counted",
    "run_fault_experiment",
    "run_partition_experiment",
    "run_fig6",
    "run_latency_experiment",
    "run_observed",
    "run_profiled",
    "run_table1",
    "sweep_av_fraction",
    "sweep_items",
    "sweep_rows",
    "sweep_scale",
]
