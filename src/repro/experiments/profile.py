"""Profiled experiment runs: attribution + digest-identity in one call.

:func:`run_profiled` drives one of the standard experiments (fig6,
table1, chaos) under the :class:`~repro.obs.profile.Profiler` with span
recording on, and assembles the full *profile report*: host wall-time
attribution per subsystem, span-kind sim-time rollups, flamegraph
stacks, per-site end-state summaries, and the run's determinism digest.

The digest covers only pure simulation quantities (update tags, final
replicas / scenario outcomes) so it is comparable across profiled,
observed, and plain runs — ``verify_digest=True`` reruns the experiment
completely unprofiled and asserts byte-identity, which is the CI
``profile-smoke`` job's proof that profiling never perturbs the
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.profile import Profiler, collapsed_stacks, span_rollups
from repro.perf.tasks import _update_tags, digest

#: experiments `run_profiled` accepts
PROFILE_EXPERIMENTS = ("fig6", "table1", "chaos")

#: top-N span kinds listed in the dossier's hotspot table
HOTSPOT_LIMIT = 10

#: the attribution-coverage acceptance bar (CLI --check and CI gate)
COVERAGE_TARGET = 0.95


@dataclass
class ProfiledRun:
    """One profiled experiment: the report plus raw exports."""

    experiment: str
    report: Dict[str, Any]
    #: flamegraph collapsed-stack lines (sorted, deterministic)
    flame: List[str] = field(default_factory=list)
    #: span lists per recorder (chaos has one recorder per scenario;
    #: span ids are only unique within a recorder, so exports keep the
    #: groups separate)
    span_groups: List[list] = field(default_factory=list)
    #: the underlying experiment result object
    result: Optional[object] = None

    @property
    def digest(self) -> str:
        return self.report["digest"]


def _fingerprint(experiment: str, result) -> Dict[str, Any]:
    """The cross-mode determinism surface of an experiment result.

    Restricted to quantities that are invariant across observe/profile
    modes (update tags, replicas, scenario outcomes) — the telemetry
    registry is excluded because observed runs share the hub registry,
    which legitimately carries extra instruments.
    """
    if experiment == "chaos":
        return {
            "scenarios": [
                {
                    "scenario": r.scenario,
                    "ok": r.ok,
                    "converged": r.converged,
                    "updates_issued": r.updates_issued,
                    "updates_completed": r.updates_completed,
                    "events_processed": r.events_processed,
                    "violations": len(r.report.violations),
                    "loss_warnings": len(r.loss_warnings),
                }
                for r in result.results
            ]
        }
    return {
        "update_tags": _update_tags(result.proposal.results),
        "replicas": result.replicas,
    }


def _run(experiment: str, n_updates: int, seed: int, n_items: int,
         small: bool, observe: bool):
    if experiment == "fig6":
        from repro.experiments.fig6 import run_fig6

        return run_fig6(
            n_updates=n_updates, seed=seed, n_items=n_items, observe=observe
        )
    if experiment == "table1":
        from repro.experiments.table1 import run_table1

        return run_table1(
            n_updates=n_updates, seed=seed, n_items=n_items, observe=observe
        )
    from repro.experiments.chaos import run_chaos

    # chaos always observes; `observe` only gates fig6/table1
    return run_chaos(small=small, n_updates=n_updates, seed=seed)


def _span_groups(experiment: str, result) -> List[list]:
    if experiment == "chaos":
        return [
            list(r.obs.recorder)
            for r in result.results
            if r.obs is not None
        ]
    return [list(result.obs.recorder)] if result.obs is not None else []


def _merged_rollups(groups: List[list]) -> Dict[str, Dict[str, Any]]:
    merged: Dict[str, Dict[str, Any]] = {}
    for spans in groups:
        for kind, row in span_rollups(spans).items():
            acc = merged.get(kind)
            if acc is None:
                merged[kind] = dict(row)
            else:
                acc["count"] += row["count"]
                acc["cum_sim"] += row["cum_sim"]
                acc["self_sim"] += row["self_sim"]
    return dict(sorted(merged.items()))


def _merged_flame(groups: List[list]) -> List[str]:
    weights: Dict[str, int] = {}
    for spans in groups:
        for line in collapsed_stacks(spans):
            stack, value = line.rsplit(" ", 1)
            weights[stack] = weights.get(stack, 0) + int(value)
    return [f"{stack} {weight}" for stack, weight in sorted(weights.items())]


def _site_summaries(experiment: str, result) -> Dict[str, Any]:
    """Per-site AV / assurance / backlog summary for the dossier."""
    if experiment == "chaos":
        from repro.obs.snapshot import merge_telemetry

        merged = merge_telemetry(r.telemetry for r in result.results)
        return merged.get("sites", {})
    # copy per-site dicts: the dossier annotates them, the result's
    # telemetry must stay untouched
    sites = {
        name: dict(row)
        for name, row in result.telemetry.get("sites", {}).items()
    }
    if experiment == "table1":
        final = result.proposal.final()
        for name in result.site_names:
            sites.setdefault(name, {})["correspondences"] = (
                final.per_site[name]
            )
    return sites


def run_profiled(
    experiment: str,
    n_updates: Optional[int] = None,
    seed: int = 0,
    n_items: int = 10,
    small: bool = False,
    verify_digest: bool = False,
    best_of: int = 1,
) -> ProfiledRun:
    """Run ``experiment`` under the profiler and build its report.

    ``small`` shrinks the workload to CI-smoke size (and selects the
    chaos small-scenario suite). ``verify_digest=True`` reruns the
    experiment unprofiled and unobserved and records whether the digests
    match (``report["digest_match"]``).

    ``best_of`` reruns the profiled experiment up to that many times and
    keeps the attempt with the highest attribution coverage (stopping
    early once :data:`COVERAGE_TARGET` is reached). Everything in the
    report except the wall-clock columns is deterministic across
    attempts, but coverage is a *wall-time* ratio: a multi-millisecond
    OS preemption landing between two kernel events inflates the
    unattributed run-loop residual, so a single attempt on a noisy host
    can dip below the gate for reasons that have nothing to do with the
    code. Same noise, same remedy as the benchmark harness's best-of-N
    timing.
    """
    if experiment not in PROFILE_EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment!r};"
            f" choose from {PROFILE_EXPERIMENTS}"
        )
    if n_updates is None:
        if experiment == "chaos":
            n_updates = 120 if small else 300
        else:
            n_updates = 200 if small else 1000

    profiler = result = None
    for _ in range(max(1, best_of)):
        attempt = Profiler()
        with attempt:
            attempt_result = _run(experiment, n_updates, seed, n_items,
                                  small, observe=True)
        if profiler is None or attempt.coverage > profiler.coverage:
            profiler, result = attempt, attempt_result
        if profiler.coverage >= COVERAGE_TARGET:
            break

    groups = _span_groups(experiment, result)
    rollups = _merged_rollups(groups)
    report = profiler.report()
    report["span_rollups"] = rollups
    # re-derive the per-subsystem sim-time columns from the merged rollups
    sim_by_sub: Dict[str, float] = {}
    spans_by_sub: Dict[str, int] = {}
    for kind, row in rollups.items():
        sim_by_sub[row["subsystem"]] = (
            sim_by_sub.get(row["subsystem"], 0.0) + row["self_sim"]
        )
        spans_by_sub[row["subsystem"]] = (
            spans_by_sub.get(row["subsystem"], 0) + row["count"]
        )
    for name, row in report["subsystems"].items():
        row["sim_time"] = sim_by_sub.get(name, 0.0)
        row["spans"] = spans_by_sub.get(name, 0)
    report["hotspots"] = sorted(
        ({"name": kind, **row} for kind, row in rollups.items()),
        key=lambda r: (-r["self_sim"], r["name"]),
    )[:HOTSPOT_LIMIT]

    fingerprint = _fingerprint(experiment, result)
    report.update({
        "experiment": experiment,
        "n_updates": n_updates,
        "seed": seed,
        "small": small,
        "digest": digest(fingerprint),
        "sites": _site_summaries(experiment, result),
        "events_processed": (
            sum(r.events_processed for r in result.results)
            if experiment == "chaos"
            else result.events_processed
        ),
    })

    if verify_digest:
        plain = _run(experiment, n_updates, seed, n_items, small,
                     observe=False)
        report["digest_match"] = (
            digest(_fingerprint(experiment, plain)) == report["digest"]
        )

    return ProfiledRun(
        experiment=experiment,
        report=report,
        flame=_merged_flame(groups),
        span_groups=groups,
        result=result,
    )
