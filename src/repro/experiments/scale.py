"""Scale-out experiment: the Fig. 6 comparison on N-site topologies.

The paper demonstrates its ≈75% correspondence reduction on one maker
and two retailers. This experiment re-runs the same paired comparison —
proposal vs centralized on an identical frozen trace — over a
declarative :class:`~repro.cluster.topology.Topology`: tens of sites,
hierarchical AV aggregators, per-item interest sets, and Zipf-skewed
demand (:class:`~repro.workload.generators.TopologyWorkload`).

The headline claim under test: decentralised AV circulation keeps the
reduction in the paper's band as the system scales, because transfers
stay within an item's (small) interest set while the centralized
baseline pays one round trip per update regardless of layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.baselines.centralized import CentralizedSystem
from repro.cluster import DistributedSystem, Topology, paper_config
from repro.metrics.correspondence import CorrespondenceSeries, reduction_ratio
from repro.metrics.report import text_table
from repro.sim.rng import RngRegistry
from repro.workload.generators import TopologyWorkload
from repro.workload.trace import WorkloadTrace

from repro.experiments.runner import CountedRun, checkpoint_schedule, run_counted

#: default topology spec for the headline scale run: 1 maker + 7
#: regional aggregators + 42 leaf retailers = 50 sites
DEFAULT_SPEC = "regional:7x6:s2"


@dataclass
class ScaleResult:
    """Paired curves plus the fingerprint surface for one topology."""

    proposal: CountedRun
    conventional: CountedRun
    topology: Topology
    spec: str
    n_updates: int
    seed: int
    #: final replica values per site (proposal run); with partial
    #: replication each site's dict covers only its interest slice
    replicas: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: sanitizer counts when run with sanitize=True (else both -1)
    violations: int = -1
    warnings: int = -1
    #: kernel events processed by the proposal run
    events_processed: int = 0
    #: full telemetry snapshot of the proposal run
    telemetry: Dict[str, object] = field(default_factory=dict)

    @property
    def proposal_series(self) -> CorrespondenceSeries:
        return self.proposal.series()

    @property
    def conventional_series(self) -> CorrespondenceSeries:
        return self.conventional.series()

    @property
    def reduction(self) -> float:
        """Fractional saving vs conventional (paper band: ≈0.75)."""
        return reduction_ratio(self.proposal_series, self.conventional_series)

    @property
    def local_ratio(self) -> float:
        """Fraction of proposal updates completed without communication."""
        if not self.proposal.results:
            return 0.0
        locals_ = sum(1 for r in self.proposal.results if r.local_only)
        return locals_ / len(self.proposal.results)

    def render(self) -> str:
        conv = {
            cp.updates: cp.total_correspondences
            for cp in self.conventional.checkpoints
        }
        rows = [
            [
                cp.updates,
                cp.total_correspondences,
                conv.get(cp.updates, float("nan")),
            ]
            for cp in self.proposal.checkpoints
        ]
        table = text_table(
            ["updates", "proposal", "conventional"],
            rows,
            title=(
                f"Scale — {self.spec} ({self.topology.n_sites} sites,"
                f" {len(self.topology.items)} items, n={self.n_updates},"
                f" seed={self.seed})"
            ),
        )
        sanitizer = (
            ""
            if self.violations < 0
            else (
                f"\nsanitizer: {self.violations} violation(s),"
                f" {self.warnings} warning(s)"
            )
        )
        return table + (
            f"\nreduction vs conventional: {self.reduction:.1%}"
            f" (paper: ~75%)\nlocal completion: {self.local_ratio:.1%}"
            + sanitizer
        )


def make_scale_trace(
    topology: Topology,
    n_updates: int,
    seed: int,
    initial_stock: float = 100.0,
    skew: float = 1.1,
    maker_share: float = 1.0 / 3.0,
) -> WorkloadTrace:
    """Freeze one topology-aware Zipf stream for paired replay."""
    rngs = RngRegistry(seed)
    generator = TopologyWorkload(
        topology,
        initial_stock=initial_stock,
        rng=rngs.stream("workload.scale"),
        skew=skew,
        maker_share=maker_share,
    )
    return WorkloadTrace.capture(generator, n_updates)


def run_scale(
    spec: str = DEFAULT_SPEC,
    n_updates: int = 2000,
    seed: int = 0,
    n_items: int = 100,
    initial_stock: float = 100.0,
    skew: float = 1.1,
    maker_share: float = 1.0 / 3.0,
    sanitize: bool = False,
    checkpoint_every: Optional[int] = None,
    checkpoints: Optional[Sequence[int]] = None,
) -> ScaleResult:
    """Run the paired scale comparison on one topology spec.

    Both systems replay the same frozen trace. The conventional
    baseline instantiates the same site set (aggregators included —
    they simply issue no updates), so the comparison is one deployment
    question — who holds update authority — and nothing else.
    """
    items = [f"item{i:0{len(str(n_items - 1))}d}" for i in range(n_items)]
    topology = Topology.parse(spec, items)
    trace = make_scale_trace(
        topology,
        n_updates,
        seed,
        initial_stock=initial_stock,
        skew=skew,
        maker_share=maker_share,
    )
    if checkpoints is None:
        every = checkpoint_every if checkpoint_every else max(1, n_updates // 10)
        checkpoints = checkpoint_schedule(n_updates, every)

    config = paper_config(
        n_items=n_items,
        initial_stock=initial_stock,
        seed=seed,
        topology=topology,
        sanitize=sanitize,
    )
    proposal_system = DistributedSystem.build(config)
    proposal = run_counted(proposal_system, trace, "proposal", checkpoints)
    proposal_system.check_invariants()
    violations = warnings = -1
    if sanitize:
        report = proposal_system.sanitizer.finish()
        violations = len(report.violations)
        warnings = len(report.warnings)

    conventional_system = CentralizedSystem(config)
    conventional = run_counted(
        conventional_system, trace, "conventional", checkpoints
    )

    from repro.obs.snapshot import TelemetrySnapshot

    return ScaleResult(
        proposal=proposal,
        conventional=conventional,
        topology=topology,
        spec=spec,
        n_updates=n_updates,
        seed=seed,
        replicas={
            name: site.store.as_dict()
            for name, site in proposal_system.sites.items()
        },
        violations=violations,
        warnings=warnings,
        # Both engines replay the trace; the task's kernel-event total
        # counts both (the throughput the sweep actually sustained).
        events_processed=(
            proposal_system.env.events_processed
            + conventional_system.env.events_processed
        ),
        telemetry=TelemetrySnapshot.capture(
            proposal_system,
            extra_events=conventional_system.env.events_processed,
        ).to_dict(),
    )
