"""Generic parameter sweeps over the fig6-style paired comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Sequence

from repro.baselines.centralized import CentralizedSystem
from repro.cluster import DistributedSystem, paper_config
from repro.core.types import UPDATE_TAGS

from repro.experiments.fig6 import make_paper_trace
from repro.experiments.runner import run_counted


@dataclass
class SweepPoint:
    """One sweep cell: parameter value → headline metrics."""

    param: str
    value: Any
    proposal_correspondences: float
    conventional_correspondences: float
    local_ratio: float
    committed_ratio: float

    @property
    def reduction(self) -> float:
        if self.conventional_correspondences == 0:
            return 0.0
        return 1.0 - self.proposal_correspondences / self.conventional_correspondences


def sweep_scale(
    retailer_counts: Sequence[int] = (2, 4, 8, 16),
    updates_per_site: int = 300,
    n_items: int = 10,
    seed: int = 0,
) -> List[SweepPoint]:
    """Ablation C: hold per-site demand constant, grow the system.

    Decentralised AV circulation should keep per-update cost roughly
    flat while the centralized server's total grows with system size.
    """
    points = []
    for n_retailers in retailer_counts:
        n_updates = updates_per_site * (n_retailers + 1)
        trace = make_paper_trace(
            n_updates, seed, n_items=n_items, n_retailers=n_retailers
        )
        config = paper_config(
            n_items=n_items, n_retailers=n_retailers, seed=seed
        )
        proposal = run_counted(
            DistributedSystem.build(config), trace, f"prop-r{n_retailers}",
            checkpoints=[n_updates],
        )
        conventional = run_counted(
            CentralizedSystem(config), trace, f"conv-r{n_retailers}",
            checkpoints=[n_updates],
        )
        committed = sum(1 for r in proposal.results if r.committed)
        points.append(
            SweepPoint(
                param="n_retailers",
                value=n_retailers,
                proposal_correspondences=proposal.final().total_correspondences,
                conventional_correspondences=conventional.final().total_correspondences,
                local_ratio=(
                    sum(1 for r in proposal.results if r.local_only)
                    / len(proposal.results)
                ),
                committed_ratio=committed / len(proposal.results),
            )
        )
    return points


def sweep_av_fraction(
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    n_updates: int = 1000,
    n_items: int = 10,
    seed: int = 0,
) -> List[SweepPoint]:
    """How much initial headroom must be distributed for the win to hold."""
    points = []
    trace = make_paper_trace(n_updates, seed, n_items=n_items)
    for fraction in fractions:
        config = paper_config(n_items=n_items, seed=seed, av_fraction=fraction)
        proposal = run_counted(
            DistributedSystem.build(config), trace, f"prop-a{fraction}",
            checkpoints=[n_updates],
        )
        conventional = run_counted(
            CentralizedSystem(config), trace, f"conv-a{fraction}",
            checkpoints=[n_updates],
        )
        committed = sum(1 for r in proposal.results if r.committed)
        points.append(
            SweepPoint(
                param="av_fraction",
                value=fraction,
                proposal_correspondences=proposal.final().total_correspondences,
                conventional_correspondences=conventional.final().total_correspondences,
                local_ratio=(
                    sum(1 for r in proposal.results if r.local_only)
                    / len(proposal.results)
                ),
                committed_ratio=committed / len(proposal.results),
            )
        )
    return points


def sweep_items(
    item_counts: Sequence[int] = (5, 10, 20, 50, 100),
    n_updates: int = 1000,
    seed: int = 0,
) -> List[SweepPoint]:
    """The calibration sweep for the paper's illegible item count."""
    points = []
    for n_items in item_counts:
        trace = make_paper_trace(n_updates, seed, n_items=n_items)
        config = paper_config(n_items=n_items, seed=seed)
        proposal = run_counted(
            DistributedSystem.build(config), trace, f"prop-i{n_items}",
            checkpoints=[n_updates],
        )
        conventional = run_counted(
            CentralizedSystem(config), trace, f"conv-i{n_items}",
            checkpoints=[n_updates],
        )
        committed = sum(1 for r in proposal.results if r.committed)
        points.append(
            SweepPoint(
                param="n_items",
                value=n_items,
                proposal_correspondences=proposal.final().total_correspondences,
                conventional_correspondences=conventional.final().total_correspondences,
                local_ratio=(
                    sum(1 for r in proposal.results if r.local_only)
                    / len(proposal.results)
                ),
                committed_ratio=committed / len(proposal.results),
            )
        )
    return points


def sweep_rows(points: Iterable[SweepPoint]) -> List[List[Any]]:
    """Rows for :func:`repro.metrics.report.text_table`."""
    return [
        [
            p.value,
            p.proposal_correspondences,
            p.conventional_correspondences,
            round(p.reduction, 3),
            round(p.local_ratio, 3),
            round(p.committed_ratio, 3),
        ]
        for p in points
    ]


SWEEP_HEADERS = [
    "value",
    "proposal",
    "conventional",
    "reduction",
    "local_ratio",
    "committed",
]
