"""Update-latency comparison: proposal vs centralized.

The paper claims the real-time property: Delay Updates complete at the
local site without waiting on the network. Under a constant one-way
latency L, a local completion takes 0 simulated time, an AV gathering
round trip 2L per request, and every centralized update exactly 2L.
This experiment quantifies the distribution under the open workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.centralized import CentralizedSystem
from repro.cluster import DistributedSystem, paper_config
from repro.metrics.latency import LatencySummary, summarize
from repro.workload.driver import run_open, split_by_site

from repro.experiments.fig6 import make_paper_trace

LATENCY_HEADERS = ["system", "n", "mean", "p50", "p90", "p99", "max"]


@dataclass
class LatencyResult:
    summaries: Dict[str, LatencySummary]

    def rows(self) -> List[List]:
        return [
            [label, s.count, round(s.mean, 3), round(s.p50, 3),
             round(s.p90, 3), round(s.p99, 3), round(s.max, 3)]
            for label, s in self.summaries.items()
        ]

    def speedup(self) -> float:
        """Centralized mean latency / proposal mean latency."""
        prop = self.summaries["proposal"].mean
        conv = self.summaries["centralized"].mean
        return conv / prop if prop > 0 else float("inf")


def run_latency_experiment(
    n_updates: int = 900,
    n_items: int = 10,
    seed: int = 0,
    interarrival: float = 5.0,
    latency_mean: float = 1.0,
) -> LatencyResult:
    """Measure committed-update latency under the open workload."""
    config = paper_config(n_items=n_items, seed=seed, latency_mean=latency_mean)
    trace = make_paper_trace(n_updates, seed, n_items=n_items)
    per_site = split_by_site(trace)

    summaries: Dict[str, LatencySummary] = {}

    system = DistributedSystem.build(config)
    results = run_open(system, per_site, interarrival=interarrival)
    summaries["proposal"] = summarize(
        [r.latency for r in results if r.committed]
    )

    central = CentralizedSystem(config)
    results_c = run_open(central, per_site, interarrival=interarrival)
    summaries["centralized"] = summarize(
        [r.latency for r in results_c if r.committed]
    )
    return LatencyResult(summaries=summaries)
