"""Workload generators.

:class:`PaperWorkload` is §4 of the paper verbatim: "In site 0, data is
updated to increase the volume by at most 20% of the initial amount of
data randomly. On the other hand, at site 1 and site 2, it is updated to
decrease at most 10% randomly." Items are chosen uniformly; sites take
turns (the paper plots against the *total* number of updates in the
system, implying all sites contribute to one interleaved stream).

The other generators model the SCM scenarios the introduction motivates
and feed the ablation benches.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class WorkloadEvent:
    """One update to issue: ``delta`` on ``item`` at ``site``."""

    site: str
    item: str
    delta: float

    def __str__(self) -> str:
        return f"{self.site}: {self.item}{self.delta:+g}"


class WorkloadGenerator(ABC):
    """Produces a deterministic stream of :class:`WorkloadEvent`."""

    @abstractmethod
    def events(self, n: int) -> Iterator[WorkloadEvent]:
        """Yield the first ``n`` events of the stream."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class PaperWorkload(WorkloadGenerator):
    """The paper's §4 update stream.

    Parameters
    ----------
    maker:
        The increasing site (paper: site 0).
    retailers:
        The decreasing sites (paper: sites 1 and 2).
    items:
        Catalogue item ids to draw from (uniformly).
    initial_stock:
        Initial amount per item; bounds the delta magnitudes.
    rng:
        Seeded generator (use the system's RngRegistry stream).
    increase_fraction, decrease_fraction:
        Paper values 0.20 and 0.10 of the initial amount.
    site_order:
        ``"roundrobin"`` (deterministic interleave, default) or
        ``"random"`` (uniform site choice per update).
    integer_deltas:
        Draw integral quantities (stock is discrete goods).
    """

    def __init__(
        self,
        maker: str,
        retailers: Sequence[str],
        items: Sequence[str],
        initial_stock: float,
        rng: np.random.Generator,
        increase_fraction: float = 0.20,
        decrease_fraction: float = 0.10,
        site_order: str = "roundrobin",
        integer_deltas: bool = True,
    ) -> None:
        if not retailers:
            raise ValueError("need at least one retailer")
        if not items:
            raise ValueError("need at least one item")
        if site_order not in ("roundrobin", "random"):
            raise ValueError(f"unknown site_order {site_order!r}")
        if not 0 < increase_fraction <= 1 or not 0 < decrease_fraction <= 1:
            raise ValueError("fractions must be in (0, 1]")
        self.maker = maker
        self.retailers = list(retailers)
        self.items = list(items)
        self.initial_stock = initial_stock
        self.rng = rng
        self.increase_fraction = increase_fraction
        self.decrease_fraction = decrease_fraction
        self.site_order = site_order
        self.integer_deltas = integer_deltas
        self._sites = [maker, *retailers]

    def _delta(self, site: str) -> float:
        if site == self.maker:
            cap = self.initial_stock * self.increase_fraction
            sign = 1.0
        else:
            cap = self.initial_stock * self.decrease_fraction
            sign = -1.0
        if self.integer_deltas:
            cap_int = max(1, int(math.floor(cap)))
            magnitude = float(self.rng.integers(1, cap_int + 1))
        else:
            magnitude = float(self.rng.uniform(0.0, cap))
        return sign * magnitude

    def events(self, n: int) -> Iterator[WorkloadEvent]:
        for i in range(n):
            if self.site_order == "roundrobin":
                site = self._sites[i % len(self._sites)]
            else:
                site = self._sites[int(self.rng.integers(len(self._sites)))]
            item = self.items[int(self.rng.integers(len(self.items)))]
            yield WorkloadEvent(site, item, self._delta(site))


class ZipfWorkload(WorkloadGenerator):
    """Paper-style deltas with Zipf-skewed item popularity.

    Real retail demand is heavy-tailed; this stresses per-item AV
    circulation on the hot items.
    """

    def __init__(
        self,
        maker: str,
        retailers: Sequence[str],
        items: Sequence[str],
        initial_stock: float,
        rng: np.random.Generator,
        skew: float = 1.2,
        **paper_kwargs,
    ) -> None:
        if skew <= 1.0:
            raise ValueError(f"zipf skew must be > 1, got {skew}")
        self._inner = PaperWorkload(
            maker, retailers, items, initial_stock, rng, **paper_kwargs
        )
        self.skew = skew
        self.rng = rng
        self.items = list(items)

    def _pick_item(self) -> str:
        while True:
            rank = int(self.rng.zipf(self.skew))
            if rank <= len(self.items):
                return self.items[rank - 1]

    def events(self, n: int) -> Iterator[WorkloadEvent]:
        for event in self._inner.events(n):
            yield WorkloadEvent(event.site, self._pick_item(), event.delta)


class HotspotWorkload(WorkloadGenerator):
    """One retailer generates a demand spike on a small hot set.

    Used by the fault and strategy benches: the hot retailer drains its
    AV fast and must pull volume across the network.
    """

    def __init__(
        self,
        base: WorkloadGenerator,
        hot_site: str,
        hot_items: Sequence[str],
        hot_fraction: float,
        rng: np.random.Generator,
    ) -> None:
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction {hot_fraction} not in [0, 1]")
        if not hot_items:
            raise ValueError("hot set is empty")
        self.base = base
        self.hot_site = hot_site
        self.hot_items = list(hot_items)
        self.hot_fraction = hot_fraction
        self.rng = rng

    def events(self, n: int) -> Iterator[WorkloadEvent]:
        for event in self.base.events(n):
            if (
                event.site == self.hot_site
                and event.delta < 0
                and self.rng.random() < self.hot_fraction
            ):
                item = self.hot_items[int(self.rng.integers(len(self.hot_items)))]
                yield WorkloadEvent(event.site, item, event.delta)
            else:
                yield event


class MixedKindWorkload(WorkloadGenerator):
    """Paper deltas over a catalogue with regular *and* non-regular items.

    The generator is item-class agnostic (routing is the checking
    function's job); this class simply draws from the full item list so
    the immediate/delay-mix ablation exercises both paths.
    """

    def __init__(self, inner: PaperWorkload) -> None:
        self.inner = inner

    def events(self, n: int) -> Iterator[WorkloadEvent]:
        return self.inner.events(n)
