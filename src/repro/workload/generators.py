"""Workload generators.

:class:`PaperWorkload` is §4 of the paper verbatim: "In site 0, data is
updated to increase the volume by at most 20% of the initial amount of
data randomly. On the other hand, at site 1 and site 2, it is updated to
decrease at most 10% randomly." Items are chosen uniformly; sites take
turns (the paper plots against the *total* number of updates in the
system, implying all sites contribute to one interleaved stream).

The other generators model the SCM scenarios the introduction motivates
and feed the ablation benches.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, Mapping, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import Topology


@dataclass(frozen=True, slots=True)
class WorkloadEvent:
    """One update to issue: ``delta`` on ``item`` at ``site``."""

    site: str
    item: str
    delta: float

    def __str__(self) -> str:
        return f"{self.site}: {self.item}{self.delta:+g}"


class WorkloadGenerator(ABC):
    """Produces a deterministic stream of :class:`WorkloadEvent`."""

    @abstractmethod
    def events(self, n: int) -> Iterator[WorkloadEvent]:
        """Yield the first ``n`` events of the stream."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class PaperWorkload(WorkloadGenerator):
    """The paper's §4 update stream.

    Parameters
    ----------
    maker:
        The increasing site (paper: site 0).
    retailers:
        The decreasing sites (paper: sites 1 and 2).
    items:
        Catalogue item ids to draw from (uniformly).
    initial_stock:
        Initial amount per item; bounds the delta magnitudes.
    rng:
        Seeded generator (use the system's RngRegistry stream).
    increase_fraction, decrease_fraction:
        Paper values 0.20 and 0.10 of the initial amount.
    site_order:
        ``"roundrobin"`` (deterministic interleave, default) or
        ``"random"`` (uniform site choice per update).
    integer_deltas:
        Draw integral quantities (stock is discrete goods).
    """

    def __init__(
        self,
        maker: str,
        retailers: Sequence[str],
        items: Sequence[str],
        initial_stock: float,
        rng: np.random.Generator,
        increase_fraction: float = 0.20,
        decrease_fraction: float = 0.10,
        site_order: str = "roundrobin",
        integer_deltas: bool = True,
    ) -> None:
        if not retailers:
            raise ValueError("need at least one retailer")
        if not items:
            raise ValueError("need at least one item")
        if site_order not in ("roundrobin", "random"):
            raise ValueError(f"unknown site_order {site_order!r}")
        if not 0 < increase_fraction <= 1 or not 0 < decrease_fraction <= 1:
            raise ValueError("fractions must be in (0, 1]")
        self.maker = maker
        self.retailers = list(retailers)
        self.items = list(items)
        self.initial_stock = initial_stock
        self.rng = rng
        self.increase_fraction = increase_fraction
        self.decrease_fraction = decrease_fraction
        self.site_order = site_order
        self.integer_deltas = integer_deltas
        self._sites = [maker, *retailers]

    def _delta(self, site: str) -> float:
        if site == self.maker:
            cap = self.initial_stock * self.increase_fraction
            sign = 1.0
        else:
            cap = self.initial_stock * self.decrease_fraction
            sign = -1.0
        if self.integer_deltas:
            cap_int = max(1, int(math.floor(cap)))
            magnitude = float(self.rng.integers(1, cap_int + 1))
        else:
            magnitude = float(self.rng.uniform(0.0, cap))
        return sign * magnitude

    def events(self, n: int) -> Iterator[WorkloadEvent]:
        for i in range(n):
            if self.site_order == "roundrobin":
                site = self._sites[i % len(self._sites)]
            else:
                site = self._sites[int(self.rng.integers(len(self._sites)))]
            item = self.items[int(self.rng.integers(len(self.items)))]
            yield WorkloadEvent(site, item, self._delta(site))


class ZipfSampler:
    """Finite (truncated) Zipf sampler: ``P(rank r) ∝ r^-skew``, r in 1..n.

    Unlike ``rng.zipf`` (unbounded support, rejection-sampled by the
    callers above), the truncated form draws from the exact normalised
    distribution over the catalogue, so the frequency-rank slope of a
    sample converges to ``-skew`` and any ``skew > 0`` is valid —
    including the classic s = 1 and near-uniform s → 0.

    Determinism: a draw consumes exactly one variate from ``rng``, so
    two samplers over equal ``(n, skew)`` fed the same seeded stream
    produce identical rank sequences.
    """

    def __init__(self, n: int, skew: float, rng: np.random.Generator) -> None:
        if n < 1:
            raise ValueError(f"need n >= 1 ranks, got {n}")
        if skew < 0:
            raise ValueError(f"zipf skew must be >= 0, got {skew}")
        self.n = n
        self.skew = skew
        self.rng = rng
        weights = np.arange(1, n + 1, dtype=np.float64) ** -float(skew)
        self._cdf = np.cumsum(weights / weights.sum())
        # Guard against float round-off leaving the last bin < 1.0.
        self._cdf[-1] = 1.0

    def probability(self, rank: int) -> float:
        """Exact probability of drawing ``rank`` (1-based)."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank {rank} not in [1, {self.n}]")
        lo = self._cdf[rank - 2] if rank > 1 else 0.0
        return float(self._cdf[rank - 1] - lo)

    def draw_rank(self) -> int:
        """One 1-based rank (inverse-CDF on a single uniform variate)."""
        u = self.rng.random()
        return int(np.searchsorted(self._cdf, u, side="right")) + 1

    def draw_index(self) -> int:
        """One 0-based index into a popularity-ordered sequence."""
        return self.draw_rank() - 1


def normalize_mix(mix: Mapping[str, float]) -> Dict[str, float]:
    """Normalise per-site traffic weights to a probability mix.

    Keys keep a deterministic (sorted) order — the order is load-bearing
    because samplers consume the weights positionally. Zero-weight sites
    are legal (they issue no updates); negative weights and an all-zero
    mix are not.
    """
    if not mix:
        raise ValueError("mix is empty")
    for site in sorted(mix):
        if mix[site] < 0:
            raise ValueError(f"negative weight {mix[site]} for {site!r}")
    total = sum(mix[site] for site in sorted(mix))
    if total <= 0:
        raise ValueError("mix weights sum to zero")
    return {site: mix[site] / total for site in sorted(mix)}


class TopologyWorkload(WorkloadGenerator):
    """Paper-style deltas over an N-site :class:`Topology`.

    Generalises the §4 stream to scale-out layouts:

    * The **maker** mints (paper's +20%-cap increases) on a Zipf-skewed
      draw over the whole catalogue, taking ``maker_share`` of the
      stream. The default 1/3 is the paper's round-robin generalised:
      with the +20%/−10% caps, one maker update mints on average what
      two leaf updates consume, so supply and demand stay balanced at
      any site count.
    * **Leaf retailers** consume (−10%-cap decreases) from their own
      interest slice only — a leaf never references an item it does not
      replicate — with Zipf-skewed popularity *within* the slice.
    * **Aggregators** issue no client traffic: they are infrastructure
      (regional AV pools), not demand sources.

    Per-site traffic weights (``mix``) skew which leaves are busy;
    default is uniform across leaves.
    """

    def __init__(
        self,
        topology: "Topology",
        initial_stock: float,
        rng: np.random.Generator,
        skew: float = 1.1,
        maker_share: float = 1.0 / 3.0,
        mix: Optional[Mapping[str, float]] = None,
        increase_fraction: float = 0.20,
        decrease_fraction: float = 0.10,
        integer_deltas: bool = True,
    ) -> None:
        if not 0.0 < maker_share < 1.0:
            raise ValueError(f"maker_share {maker_share} not in (0, 1)")
        if not 0 < increase_fraction <= 1 or not 0 < decrease_fraction <= 1:
            raise ValueError("fractions must be in (0, 1]")
        self.topology = topology
        self.initial_stock = initial_stock
        self.rng = rng
        self.skew = skew
        self.maker_share = maker_share
        self.increase_fraction = increase_fraction
        self.decrease_fraction = decrease_fraction
        self.integer_deltas = integer_deltas
        self.maker = topology.maker
        # A leaf with an empty interest slice (more leaves than item
        # assignments) replicates nothing and so can issue no updates.
        self.leaves = [
            s
            for s in topology.names
            if topology.role_of(s) == "retailer" and topology.interest_of(s)
        ]
        if not self.leaves:
            raise ValueError("topology has no leaf retailers with items")
        weights = (
            normalize_mix(mix)
            if mix is not None
            else {leaf: 1.0 / len(self.leaves) for leaf in self.leaves}
        )
        unknown = sorted(set(weights) - set(self.leaves))
        if unknown:
            raise ValueError(
                f"mix names sites that are not item-bearing leaves: {unknown}"
            )
        self.mix = {leaf: weights.get(leaf, 0.0) for leaf in self.leaves}
        self._leaf_cdf = np.cumsum(
            [self.mix[leaf] for leaf in self.leaves]
        )
        self._leaf_cdf[-1] = 1.0
        # One catalogue-wide sampler for the maker; per-slice-size
        # samplers for the leaves (slices of equal length share one —
        # a draw depends only on the rank distribution, not the items).
        self._catalog_sampler = ZipfSampler(len(topology.items), skew, rng)
        self._slice_samplers: Dict[int, ZipfSampler] = {}
        self._slices = {
            leaf: list(topology.interest_of(leaf)) for leaf in self.leaves
        }

    def _slice_sampler(self, size: int) -> ZipfSampler:
        sampler = self._slice_samplers.get(size)
        if sampler is None:
            sampler = ZipfSampler(size, self.skew, self.rng)
            self._slice_samplers[size] = sampler
        return sampler

    def _magnitude(self, fraction: float) -> float:
        cap = self.initial_stock * fraction
        if self.integer_deltas:
            cap_int = max(1, int(math.floor(cap)))
            return float(self.rng.integers(1, cap_int + 1))
        return float(self.rng.uniform(0.0, cap))

    def events(self, n: int) -> Iterator[WorkloadEvent]:
        items = list(self.topology.items)
        for _ in range(n):
            if self.rng.random() < self.maker_share:
                item = items[self._catalog_sampler.draw_index()]
                yield WorkloadEvent(
                    self.maker, item, self._magnitude(self.increase_fraction)
                )
            else:
                u = self.rng.random()
                leaf = self.leaves[
                    int(np.searchsorted(self._leaf_cdf, u, side="right"))
                ]
                slice_ = self._slices[leaf]
                item = slice_[self._slice_sampler(len(slice_)).draw_index()]
                yield WorkloadEvent(
                    leaf, item, -self._magnitude(self.decrease_fraction)
                )


class ZipfWorkload(WorkloadGenerator):
    """Paper-style deltas with Zipf-skewed item popularity.

    Real retail demand is heavy-tailed; this stresses per-item AV
    circulation on the hot items.
    """

    def __init__(
        self,
        maker: str,
        retailers: Sequence[str],
        items: Sequence[str],
        initial_stock: float,
        rng: np.random.Generator,
        skew: float = 1.2,
        **paper_kwargs,
    ) -> None:
        if skew <= 1.0:
            raise ValueError(f"zipf skew must be > 1, got {skew}")
        self._inner = PaperWorkload(
            maker, retailers, items, initial_stock, rng, **paper_kwargs
        )
        self.skew = skew
        self.rng = rng
        self.items = list(items)

    def _pick_item(self) -> str:
        while True:
            rank = int(self.rng.zipf(self.skew))
            if rank <= len(self.items):
                return self.items[rank - 1]

    def events(self, n: int) -> Iterator[WorkloadEvent]:
        for event in self._inner.events(n):
            yield WorkloadEvent(event.site, self._pick_item(), event.delta)


class HotspotWorkload(WorkloadGenerator):
    """One retailer generates a demand spike on a small hot set.

    Used by the fault and strategy benches: the hot retailer drains its
    AV fast and must pull volume across the network.
    """

    def __init__(
        self,
        base: WorkloadGenerator,
        hot_site: str,
        hot_items: Sequence[str],
        hot_fraction: float,
        rng: np.random.Generator,
    ) -> None:
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction {hot_fraction} not in [0, 1]")
        if not hot_items:
            raise ValueError("hot set is empty")
        self.base = base
        self.hot_site = hot_site
        self.hot_items = list(hot_items)
        self.hot_fraction = hot_fraction
        self.rng = rng

    def events(self, n: int) -> Iterator[WorkloadEvent]:
        for event in self.base.events(n):
            if (
                event.site == self.hot_site
                and event.delta < 0
                and self.rng.random() < self.hot_fraction
            ):
                item = self.hot_items[int(self.rng.integers(len(self.hot_items)))]
                yield WorkloadEvent(event.site, item, event.delta)
            else:
                yield event


class FlashSaleWorkload(WorkloadGenerator):
    """A flash sale: Zipf-hot items hit by dense unit-decrement bursts.

    The surge the overload layer exists for. Retailers take turns
    firing bursts of ``burst`` consecutive ``-1`` updates (default 100 —
    a 100× burst against the paper's one-at-a-time walk) aimed at a
    small hot set, picked Zipf-style so the hottest item soaks most of
    the traffic. Every ``restock_every`` bursts the maker restocks the
    hottest item, keeping global headroom ample — the surge stresses
    *coordination*, not solvency.

    Parameters
    ----------
    maker, retailers, items, rng:
        As :class:`PaperWorkload`.
    hot_items:
        Size of the hot set (a prefix of ``items``).
    burst:
        Decrements per burst (the "100×" knob).
    restock_every:
        Bursts between maker restocks.
    restock_amount:
        Units per restock; defaults to one burst's worth.
    skew:
        Zipf exponent over the hot set ranks.
    """

    def __init__(
        self,
        maker: str,
        retailers: Sequence[str],
        items: Sequence[str],
        rng: np.random.Generator,
        hot_items: int = 2,
        burst: int = 100,
        restock_every: int = 4,
        restock_amount: Optional[float] = None,
        skew: float = 1.5,
    ) -> None:
        if not retailers:
            raise ValueError("need at least one retailer")
        if not 1 <= hot_items <= len(items):
            raise ValueError(f"hot_items {hot_items} not in [1, {len(items)}]")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        if restock_every < 1:
            raise ValueError("restock_every must be >= 1")
        if skew <= 1.0:
            raise ValueError(f"zipf skew must be > 1, got {skew}")
        self.maker = maker
        self.retailers = list(retailers)
        self.hot = list(items[:hot_items])
        self.rng = rng
        self.burst = burst
        self.restock_every = restock_every
        self.restock_amount = (
            float(burst) if restock_amount is None else restock_amount
        )
        self.skew = skew

    def _pick_hot(self) -> str:
        while True:
            rank = int(self.rng.zipf(self.skew))
            if rank <= len(self.hot):
                return self.hot[rank - 1]

    def events(self, n: int) -> Iterator[WorkloadEvent]:
        emitted = 0
        bursts = 0
        while emitted < n:
            site = self.retailers[bursts % len(self.retailers)]
            item = self._pick_hot()
            for _ in range(min(self.burst, n - emitted)):
                yield WorkloadEvent(site, item, -1.0)
                emitted += 1
            bursts += 1
            if bursts % self.restock_every == 0 and emitted < n:
                yield WorkloadEvent(self.maker, self.hot[0], self.restock_amount)
                emitted += 1


@dataclass(frozen=True, slots=True)
class PhaseSpec:
    """One phase of a phase-shifting workload (DMIS EP-02 vocabulary)."""

    name: str
    #: share of the event stream spent in this phase
    fraction: float
    #: decrement cap as a fraction of initial stock (demand intensity)
    decrease_fraction: float
    #: share of decrements concentrated on the hot set
    hot_fraction: float


#: the EP-02 three-phase schedule (SNIPPETS.md): a disaster-response
#: SURGE (dense, hot-concentrated demand), the STABILIZED tail, then
#: BASELINE normal operations
EP02_PHASES: tuple[PhaseSpec, ...] = (
    PhaseSpec("SURGE", 0.30, 0.30, 0.80),
    PhaseSpec("STABILIZED", 0.40, 0.10, 0.30),
    PhaseSpec("BASELINE", 0.30, 0.05, 0.00),
)


class PhaseShiftWorkload(WorkloadGenerator):
    """Paper-style stream whose intensity shifts through named phases.

    Implements the EP-02 SURGE → STABILIZED → BASELINE schedule: each
    phase takes a fixed share of the stream with its own decrement cap
    and hot-set concentration, so one run sweeps the system from
    overload into calm — exactly the trajectory the degradation state
    machine must follow (and the back-at-NORMAL oracle checks).
    """

    def __init__(
        self,
        maker: str,
        retailers: Sequence[str],
        items: Sequence[str],
        initial_stock: float,
        rng: np.random.Generator,
        phases: Sequence[PhaseSpec] = EP02_PHASES,
        hot_items: int = 2,
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        total = sum(p.fraction for p in phases)
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise ValueError(f"phase fractions sum to {total}, want 1.0")
        if not 1 <= hot_items <= len(items):
            raise ValueError(f"hot_items {hot_items} not in [1, {len(items)}]")
        self.maker = maker
        self.retailers = list(retailers)
        self.items = list(items)
        self.hot = list(items[:hot_items])
        self.initial_stock = initial_stock
        self.rng = rng
        self.phases = tuple(phases)

    def phase_of(self, index: int, n: int) -> PhaseSpec:
        """Which phase event ``index`` of an ``n``-event stream is in."""
        boundary = 0.0
        for phase in self.phases:
            boundary += phase.fraction * n
            if index < boundary:
                return phase
        return self.phases[-1]

    def events(self, n: int) -> Iterator[WorkloadEvent]:
        sites = [self.maker, *self.retailers]
        for i in range(n):
            phase = self.phase_of(i, n)
            site = sites[i % len(sites)]
            if site == self.maker:
                cap = max(1, int(self.initial_stock * 0.20))
                delta = float(self.rng.integers(1, cap + 1))
                item = self.items[int(self.rng.integers(len(self.items)))]
            else:
                cap = max(1, int(self.initial_stock * phase.decrease_fraction))
                delta = -float(self.rng.integers(1, cap + 1))
                if self.rng.random() < phase.hot_fraction:
                    item = self.hot[int(self.rng.integers(len(self.hot)))]
                else:
                    item = self.items[int(self.rng.integers(len(self.items)))]
            yield WorkloadEvent(site, item, delta)


class MixedKindWorkload(WorkloadGenerator):
    """Paper deltas over a catalogue with regular *and* non-regular items.

    The generator is item-class agnostic (routing is the checking
    function's job); this class simply draws from the full item list so
    the immediate/delay-mix ablation exercises both paths.
    """

    def __init__(self, inner: PaperWorkload) -> None:
        self.inner = inner

    def events(self, n: int) -> Iterator[WorkloadEvent]:
        return self.inner.events(n)
