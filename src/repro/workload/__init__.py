"""SCM workload models, generators, drivers and traces."""

from repro.workload.driver import run_closed, run_open, split_by_site
from repro.workload.generators import (
    HotspotWorkload,
    MixedKindWorkload,
    PaperWorkload,
    TopologyWorkload,
    WorkloadEvent,
    WorkloadGenerator,
    ZipfSampler,
    ZipfWorkload,
    normalize_mix,
)
from repro.workload.scm import (
    MakerAgent,
    RetailerAgent,
    SalesReport,
    SCMOutcome,
    SCMSimulation,
)
from repro.workload.trace import TraceSummary, WorkloadTrace

__all__ = [
    "HotspotWorkload",
    "MakerAgent",
    "MixedKindWorkload",
    "PaperWorkload",
    "RetailerAgent",
    "SCMOutcome",
    "SCMSimulation",
    "SalesReport",
    "TopologyWorkload",
    "TraceSummary",
    "WorkloadEvent",
    "WorkloadGenerator",
    "WorkloadTrace",
    "ZipfSampler",
    "ZipfWorkload",
    "normalize_mix",
    "run_closed",
    "run_open",
    "split_by_site",
]
