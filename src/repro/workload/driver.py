"""Workload drivers: feed generated events into a system.

Two arrival disciplines:

* **closed** (:func:`run_closed`) — issue one update, wait for it to
  finish, issue the next. This matches the paper's Fig. 6 x-axis ("the
  total number of updates in the system") where correspondences are
  sampled at exact update counts.
* **open** (:func:`run_open`) — every site runs its own arrival process
  with an inter-arrival time; updates overlap. Used by the latency and
  fault benches where concurrency matters.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.cluster.system import DistributedSystem
from repro.core.types import UpdateResult
from repro.workload.generators import WorkloadEvent

#: callback invoked after every finished update: (index, event, result)
CompletionHook = Callable[[int, WorkloadEvent, UpdateResult], None]


def run_closed(
    system: DistributedSystem,
    events: Iterable[WorkloadEvent],
    on_complete: Optional[CompletionHook] = None,
    spacing: float = 0.0,
) -> list[UpdateResult]:
    """Issue events sequentially; returns all results in order.

    ``spacing`` adds idle time between updates (lets propagation traffic
    drain so replica-convergence checks see quiescence).
    """
    results: list[UpdateResult] = []

    def driver(env):
        for i, event in enumerate(events):
            result = yield system.update(event.site, event.item, event.delta)
            results.append(result)
            if on_complete is not None:
                on_complete(i, event, result)
            if spacing > 0:
                yield env.timeout(spacing)

    proc = system.env.process(driver(system.env), name="workload.closed")
    system.run()
    if not proc.triggered:  # pragma: no cover - deadlock guard
        raise RuntimeError("workload driver did not finish (protocol hang?)")
    if not proc.ok:
        raise proc.value
    return results


def run_open(
    system: DistributedSystem,
    per_site_events: dict[str, Iterable[WorkloadEvent]],
    interarrival: float,
    on_complete: Optional[CompletionHook] = None,
    jitter: float = 0.0,
    until: Optional[float] = None,
    open_loop: bool = False,
) -> list[UpdateResult]:
    """Run one arrival process per site, updates overlapping freely.

    Each site's stream is issued with fixed ``interarrival`` spacing
    (plus uniform jitter drawn from the site's RNG stream to avoid
    lockstep artifacts). Events in a site's stream must belong to that
    site.

    By default each site's driver waits for an update to finish before
    issuing the next (closed per site, overlap only across sites). With
    ``open_loop=True`` the driver issues at the arrival rate regardless
    of completion — the surge discipline: per-site concurrency is then
    unbounded unless the system itself sheds load (the overload layer's
    admission control). Completions are collected via callbacks, so
    ``results`` arrives in completion order and may be shorter than the
    stream if ``until`` cuts updates off mid-flight.

    ``until`` bounds the simulation clock — required when background
    daemons (rebalancer, sync scheduler) run forever; without it the run
    lasts until the event queue drains.
    """
    results: list[UpdateResult] = []
    counter = [0]

    def collector(event):
        def collect(ev):
            if ev.ok and isinstance(ev.value, UpdateResult):
                results.append(ev.value)
                if on_complete is not None:
                    on_complete(counter[0], event, ev.value)
                counter[0] += 1

        return collect

    def site_driver(env, site_name, events):
        rng = system.rngs.stream(f"{site_name}.arrivals")
        for event in events:
            if event.site != site_name:
                raise ValueError(
                    f"event {event} routed to wrong site {site_name!r}"
                )
            wait = interarrival
            if jitter > 0:
                wait += float(rng.uniform(0.0, jitter))
            yield env.timeout(wait)
            if system.sites[site_name].crashed:
                continue  # a crashed site generates no load
            if open_loop:
                proc = system.update(event.site, event.item, event.delta)
                proc.callbacks.append(collector(event))
                continue
            result = yield system.update(event.site, event.item, event.delta)
            results.append(result)
            if on_complete is not None:
                on_complete(counter[0], event, result)
            counter[0] += 1

    procs = [
        system.env.process(
            site_driver(system.env, name, events), name=f"workload.{name}"
        )
        for name, events in per_site_events.items()
    ]
    system.run(until=until)
    for proc in procs:
        # A driver may legitimately end the run untriggered if its site
        # crashed while an AV request without a timeout was in flight,
        # or if `until` cut the run short.
        if proc.triggered and not proc.ok:  # pragma: no cover - bug guard
            raise proc.value
    return results


def split_by_site(events: Iterable[WorkloadEvent]) -> dict[str, list[WorkloadEvent]]:
    """Partition one interleaved stream into per-site streams."""
    out: dict[str, list[WorkloadEvent]] = {}
    for event in events:
        out.setdefault(event.site, []).append(event)
    return out
