"""Workload trace record/replay.

A trace freezes a generated stream into a plain list that can be saved
to disk and replayed bit-identically — useful for regression-pinning a
benchmark workload, for comparing two mechanisms on *exactly* the same
updates (the fig6 harness does this), and for sharing failing cases.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.workload.generators import WorkloadEvent, WorkloadGenerator


class WorkloadTrace(WorkloadGenerator):
    """A frozen stream of events, itself usable as a generator."""

    def __init__(self, events: Iterable[WorkloadEvent] = ()) -> None:
        self._events: List[WorkloadEvent] = list(events)

    @classmethod
    def capture(cls, generator: WorkloadGenerator, n: int) -> "WorkloadTrace":
        """Materialise the first ``n`` events of ``generator``."""
        return cls(generator.events(n))

    def events(self, n: int) -> Iterator[WorkloadEvent]:
        if n > len(self._events):
            raise ValueError(
                f"trace holds {len(self._events)} events, {n} requested"
            )
        return iter(self._events[:n])

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[WorkloadEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> WorkloadEvent:
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkloadTrace):
            return NotImplemented
        return self._events == other._events

    # ---------------------------------------------------------------- #
    # persistence (simple one-event-per-line text format)
    # ---------------------------------------------------------------- #

    def save(self, path: Union[str, Path]) -> None:
        """Write ``site<TAB>item<TAB>delta`` lines."""
        lines = [f"{e.site}\t{e.item}\t{e.delta!r}" for e in self._events]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WorkloadTrace":
        """Read a trace written by :meth:`save`."""
        events = []
        for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
            if not line.strip():
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(f"{path}:{lineno}: malformed trace line {line!r}")
            site, item, delta = parts
            events.append(WorkloadEvent(site, item, float(delta)))
        return cls(events)

    # ---------------------------------------------------------------- #
    # analysis
    # ---------------------------------------------------------------- #

    def summary(self) -> "TraceSummary":
        """Aggregate statistics of the frozen stream."""
        per_site: dict[str, int] = {}
        per_item: dict[str, int] = {}
        net_delta: dict[str, float] = {}
        increments = decrements = 0
        volume_in = volume_out = 0.0
        for event in self._events:
            per_site[event.site] = per_site.get(event.site, 0) + 1
            per_item[event.item] = per_item.get(event.item, 0) + 1
            net_delta[event.item] = net_delta.get(event.item, 0.0) + event.delta
            if event.delta >= 0:
                increments += 1
                volume_in += event.delta
            else:
                decrements += 1
                volume_out -= event.delta
        return TraceSummary(
            events=len(self._events),
            per_site=per_site,
            per_item=per_item,
            net_delta=net_delta,
            increments=increments,
            decrements=decrements,
            volume_in=volume_in,
            volume_out=volume_out,
        )

    def __repr__(self) -> str:
        return f"<WorkloadTrace {len(self._events)} events>"


from dataclasses import dataclass, field  # noqa: E402
from typing import Dict  # noqa: E402


@dataclass(frozen=True)
class TraceSummary:
    """What a workload asks of the system, in aggregate.

    ``volume_in / volume_out`` near 1.0 means supply and demand balance
    — the regime the paper's experiment runs in; well below 1.0 the
    system runs dry and every mechanism degenerates into rejections
    (see the scale-ablation notes in EXPERIMENTS.md).
    """

    events: int
    per_site: Dict[str, int]
    per_item: Dict[str, int]
    net_delta: Dict[str, float]
    increments: int
    decrements: int
    volume_in: float
    volume_out: float

    @property
    def supply_demand_ratio(self) -> float:
        return self.volume_in / self.volume_out if self.volume_out else float("inf")

    def __str__(self) -> str:
        return (
            f"TraceSummary(events={self.events},"
            f" +{self.increments}/-{self.decrements},"
            f" in={self.volume_in:g} out={self.volume_out:g},"
            f" supply/demand={self.supply_demand_ratio:.2f})"
        )
