"""Supply-chain agents: the paper's §1.1 actors as simulation processes.

* :class:`RetailerAgent` — serves customer orders. Regular products ship
  from stock (a Delay Update, the real-time path); non-regular products
  are made to order (an Immediate Update involving the maker). Rejected
  and aborted updates are **lost sales**, the business cost of exhausted
  stock.
* :class:`MakerAgent` — manufactures: periodically tops up a sample of
  products (minting AV for regular ones via Delay, synchronously for
  non-regular ones via Immediate).
* :class:`SCMSimulation` — wires agents onto a
  :class:`~repro.cluster.system.DistributedSystem` and summarises the
  business outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.system import DistributedSystem
from repro.core.types import UpdateOutcome


#: business-level message tag (replenishment orders retailer -> maker);
#: canonically declared in the protocol registry
from repro.net.protocol import TAG_SCM  # noqa: F401


@dataclass
class SalesReport:
    """Business-level counters for one retailer."""

    served: int = 0
    lost: int = 0
    revenue_units: float = 0.0
    #: sales saved by ordering a manufacture from the maker (§1.1:
    #: "If they do not have enough stock, they order them to makers")
    backorders_filled: int = 0
    replenishments_requested: int = 0

    @property
    def service_level(self) -> float:
        total = self.served + self.lost
        return self.served / total if total else 1.0


class RetailerAgent:
    """Customer-order loop at one retailer site.

    With ``replenish=True`` (the paper's §1.1 behaviour) a sale that
    cannot be covered triggers an order *to the maker*: the maker
    manufactures (a stock increment that mints AV), and the retailer
    retries the sale once. Without it, uncovered demand is a lost sale.
    """

    def __init__(
        self,
        system: DistributedSystem,
        site: str,
        rng: np.random.Generator,
        mean_interarrival: float = 5.0,
        max_quantity: int = 5,
        zipf_skew: Optional[float] = None,
        replenish: bool = False,
        replenish_batch: float = 4.0,
    ) -> None:
        if mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if replenish_batch < 1.0:
            raise ValueError("replenish_batch must be >= 1")
        self.system = system
        self.site = site
        self.rng = rng
        self.mean_interarrival = mean_interarrival
        self.max_quantity = max_quantity
        self.zipf_skew = zipf_skew
        self.replenish = replenish
        self.replenish_batch = replenish_batch
        self.report = SalesReport()
        self._items = system.catalog.items()

    def _pick_item(self) -> str:
        if self.zipf_skew is None:
            return self._items[int(self.rng.integers(len(self._items)))]
        while True:
            rank = int(self.rng.zipf(self.zipf_skew))
            if rank <= len(self._items):
                return self._items[rank - 1]

    def run(self, until: float):
        """Generator process: serve customers until simulated ``until``."""
        env = self.system.env
        while env.now < until:
            yield env.timeout(float(self.rng.exponential(self.mean_interarrival)))
            if env.now >= until:
                break
            if self.system.sites[self.site].crashed:
                continue
            item = self._pick_item()
            qty = int(self.rng.integers(1, self.max_quantity + 1))
            result = yield self.system.update(self.site, item, -qty)
            if result.outcome is UpdateOutcome.COMMITTED:
                self.report.served += 1
                self.report.revenue_units += qty
                continue
            if self.replenish and not self.system.maker.crashed:
                # §1.1: order the shortfall (plus a batch margin) from
                # the maker, then retry the sale once.
                self.report.replenishments_requested += 1
                endpoint = self.system.sites[self.site].endpoint
                reply = yield endpoint.request(
                    self.system.config.maker,
                    "scm.replenish",
                    {"item": item, "quantity": qty * self.replenish_batch},
                    tag=TAG_SCM,
                )
                if reply["manufactured"]:
                    retry = yield self.system.update(self.site, item, -qty)
                    if retry.outcome is UpdateOutcome.COMMITTED:
                        self.report.served += 1
                        self.report.revenue_units += qty
                        self.report.backorders_filled += 1
                        continue
            self.report.lost += 1


class MakerAgent:
    """Manufacturing loop at the maker site.

    Also serves on-demand replenishment orders from retailers
    (``scm.replenish``): the maker manufactures the requested quantity
    — a stock increment that, for regular products, mints AV the
    requesting retailer can then pull.
    """

    def __init__(
        self,
        system: DistributedSystem,
        rng: np.random.Generator,
        interval: float = 10.0,
        batch_items: int = 5,
        batch_quantity: int = 20,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.system = system
        self.site = system.config.maker
        self.rng = rng
        self.interval = interval
        self.batch_items = batch_items
        self.batch_quantity = batch_quantity
        self.manufactured_units = 0.0
        self.replenishments_served = 0
        self._items = system.catalog.items()
        system.maker.endpoint.on("scm.replenish", self._handle_replenish)

    def _handle_replenish(self, msg):
        """Manufacture on demand for a retailer's order (generator)."""
        if self.system.maker.crashed:  # pragma: no cover - dropped anyway
            return {"manufactured": False}
        result = yield self.system.update(
            self.site, msg.payload["item"], float(msg.payload["quantity"])
        )
        if result.committed:
            self.manufactured_units += msg.payload["quantity"]
            self.replenishments_served += 1
        return {"manufactured": result.committed}

    def run(self, until: float):
        """Generator process: manufacture in batches until ``until``."""
        env = self.system.env
        while env.now < until:
            yield env.timeout(self.interval)
            if env.now >= until:
                break
            if self.system.sites[self.site].crashed:
                continue
            picks = self.rng.choice(
                len(self._items),
                size=min(self.batch_items, len(self._items)),
                replace=False,
            )
            for idx in picks:
                item = self._items[int(idx)]
                qty = int(self.rng.integers(1, self.batch_quantity + 1))
                result = yield self.system.update(self.site, item, qty)
                if result.committed:
                    self.manufactured_units += qty


@dataclass
class SCMOutcome:
    """End-of-run summary of an SCM simulation."""

    retailer_reports: Dict[str, SalesReport]
    manufactured_units: float
    correspondences: float
    local_ratio: float

    @property
    def total_served(self) -> int:
        return sum(r.served for r in self.retailer_reports.values())

    @property
    def total_lost(self) -> int:
        return sum(r.lost for r in self.retailer_reports.values())

    @property
    def service_level(self) -> float:
        total = self.total_served + self.total_lost
        return self.total_served / total if total else 1.0


class SCMSimulation:
    """Full SCM scenario runner."""

    def __init__(
        self,
        system: DistributedSystem,
        mean_interarrival: float = 5.0,
        maker_interval: float = 10.0,
        max_quantity: int = 5,
        zipf_skew: Optional[float] = None,
        replenish: bool = False,
    ) -> None:
        self.system = system
        self.retailer_agents: List[RetailerAgent] = [
            RetailerAgent(
                system,
                site.name,
                system.rngs.stream(f"{site.name}.orders"),
                mean_interarrival=mean_interarrival,
                max_quantity=max_quantity,
                zipf_skew=zipf_skew,
                replenish=replenish,
            )
            for site in system.retailers
        ]
        self.maker_agent = MakerAgent(
            system,
            system.rngs.stream("maker.manufacturing"),
            interval=maker_interval,
        )

    def run(self, until: float) -> SCMOutcome:
        env = self.system.env
        for agent in self.retailer_agents:
            env.process(agent.run(until), name=f"retailer.{agent.site}")
        env.process(self.maker_agent.run(until), name="maker")
        self.system.run(until=until)
        # Drain in-flight protocol traffic: agents stop generating load
        # past the horizon, so this only completes open transactions
        # (checking consistency mid-2PC would be a false alarm).
        self.system.run()
        from repro.core.types import UPDATE_TAGS

        return SCMOutcome(
            retailer_reports={
                a.site: a.report for a in self.retailer_agents
            },
            manufactured_units=self.maker_agent.manufactured_units,
            correspondences=self.system.stats.correspondences_for_tags(UPDATE_TAGS),
            local_ratio=self.system.collector.local_ratio,
        )
