"""Overload robustness: admission control, backpressure, degradation.

The paper's §4 experiment drives a gentle ±10–20% random walk; nothing
in the original design says what the accelerator should do when a
flash-sale surge arrives. This module supplies the missing layer, fully
opt-in via ``SystemConfig.overload`` (``None`` keeps every seed path
byte-identical):

* **admission control** — a bounded per-site inflight budget on the
  accelerator. An update arriving over budget is *shed*: it terminates
  immediately with the typed :data:`~repro.core.types.UpdateOutcome.SHED`
  outcome and a ``retry_after`` hint, instead of queueing unboundedly.
* **circuit breaker** — the immediate-update 2PC path trips OPEN after
  ``breaker_threshold`` consecutive prepare timeouts, sheds requests
  with a retry-after for ``breaker_cooldown``, then probes HALF_OPEN;
  one success re-closes it, one failure re-trips it.
* **backpressure** — when the lazy-sync backlog outgrows its budget the
  site flushes it inline instead of letting ``owed`` grow without bound.
* **degradation state machine** — per site, driven by observed load
  signals (inflight ratio, sync backlog, lock waits, breaker state)::

      NORMAL -> STRAINED -> DEGRADED -> RECOVERING -> NORMAL
                   \\____________________/^   |
                                              v
                                          DEGRADED   (relapse)

  Under stress the controller widens AV grant fractions (cut the
  correspondence storm), steers AV requests away from peers known to be
  DEGRADED, serves reconciled reads from the local replica with an
  explicit staleness bound, and — at the base site, when the stock
  invariant has ample headroom — *demotes* immediate-update items to
  the delay path (``make_regular``). Every demotion is recorded and
  provably reversed (``make_non_regular``) when the site transitions
  back to NORMAL.

All transitions are restricted to :data:`ALLOWED_TRANSITIONS` (the
monotone ring above); the property tests assert no controller ever
takes an edge outside it.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.errors import CoreError
from repro.net.protocol import TAG_OVERLOAD

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.accelerator import Accelerator


class OverloadStateError(CoreError):
    """An illegal degradation-state transition was attempted."""


class DegradationState(enum.Enum):
    """Per-site consistency/health mode under load."""

    NORMAL = "normal"
    STRAINED = "strained"
    DEGRADED = "degraded"
    RECOVERING = "recovering"


#: the only legal state-machine edges (see module docs)
ALLOWED_TRANSITIONS = frozenset({
    (DegradationState.NORMAL, DegradationState.STRAINED),
    (DegradationState.STRAINED, DegradationState.DEGRADED),
    (DegradationState.STRAINED, DegradationState.RECOVERING),
    (DegradationState.DEGRADED, DegradationState.RECOVERING),
    (DegradationState.RECOVERING, DegradationState.NORMAL),
    (DegradationState.RECOVERING, DegradationState.DEGRADED),
})


@dataclass(frozen=True)
class OverloadParams:
    """Configuration of the overload/degradation layer.

    Attributes
    ----------
    inflight_budget:
        Concurrent in-protocol updates admitted per site; the next one
        is shed with ``retry_after``.
    backlog_budget:
        Lazy-sync ``owed`` balances tolerated before an inline flush.
    lock_wait_budget:
        Lock-queue depth that reads as full pressure.
    retry_after:
        Base retry-after hint (simulated seconds) on an admission shed.
    breaker_threshold:
        Consecutive 2PC prepare timeouts before the breaker trips.
    breaker_cooldown:
        OPEN dwell time before the breaker probes HALF_OPEN.
    strain_ratio / degrade_ratio / recover_ratio:
        Pressure thresholds for NORMAL→STRAINED, →DEGRADED, and the
        calm level required to head back toward NORMAL.
    recover_hold:
        Continuous calm time required in RECOVERING before the site
        declares NORMAL (and re-promotes demoted items).
    demote_min_value:
        Minimum replica value (invariant headroom) an immediate-update
        item needs before the base site may demote it to delay-update.
    demote_batch:
        Demotions at most in flight per evaluation.
    degraded_grant_fraction:
        Fraction of the grantor's AV offered while STRAINED/DEGRADED,
        replacing the SODA'99 half-grant to cut repeat correspondence.
    stale_read_floor:
        Minimum staleness bound reported on a degraded read (a read can
        never claim to be fresher than one sync interval).
    """

    inflight_budget: int = 24
    backlog_budget: int = 64
    lock_wait_budget: int = 16
    retry_after: float = 5.0
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    strain_ratio: float = 0.6
    degrade_ratio: float = 0.9
    recover_ratio: float = 0.3
    recover_hold: float = 20.0
    demote_min_value: float = 10.0
    demote_batch: int = 2
    degraded_grant_fraction: float = 0.9
    stale_read_floor: float = 1.0

    def __post_init__(self) -> None:
        if self.inflight_budget < 1:
            raise ValueError("inflight_budget must be >= 1")
        if self.backlog_budget < 1:
            raise ValueError("backlog_budget must be >= 1")
        if self.lock_wait_budget < 1:
            raise ValueError("lock_wait_budget must be >= 1")
        if self.retry_after <= 0:
            raise ValueError("retry_after must be positive")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be positive")
        if not 0.0 < self.recover_ratio <= self.strain_ratio <= self.degrade_ratio:
            raise ValueError(
                "thresholds must satisfy 0 < recover <= strain <= degrade"
            )
        if self.recover_hold < 0:
            raise ValueError("recover_hold must be non-negative")
        if not 0.0 < self.degraded_grant_fraction <= 1.0:
            raise ValueError("degraded_grant_fraction must be in (0, 1]")
        if self.demote_batch < 1:
            raise ValueError("demote_batch must be >= 1")


class CircuitBreaker:
    """CLOSED → OPEN → HALF_OPEN breaker for the 2PC prepare path."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, threshold: int, cooldown: float) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        #: times the breaker tripped (CLOSED/HALF_OPEN -> OPEN)
        self.trips = 0

    def allow(self, now: float) -> Tuple[bool, float]:
        """May a 2PC attempt start? Returns ``(allowed, retry_after)``."""
        if self.state == self.CLOSED:
            return True, 0.0
        if self.state == self.OPEN:
            if now - self.opened_at >= self.cooldown:
                # One probe request transitions us to HALF_OPEN; its
                # outcome decides whether we close or re-trip.
                self.state = self.HALF_OPEN
                return True, 0.0
            return False, self.opened_at + self.cooldown - now
        # HALF_OPEN: the probe is in flight; hold everyone else briefly.
        return False, self.cooldown / 4.0

    def record_failure(self, now: float) -> bool:
        """Account one prepare timeout; True if the breaker tripped."""
        if self.state == self.HALF_OPEN:
            self.state = self.OPEN
            self.opened_at = now
            self.failures = 0
            self.trips += 1
            return True
        self.failures += 1
        if self.state == self.CLOSED and self.failures >= self.threshold:
            self.state = self.OPEN
            self.opened_at = now
            self.failures = 0
            self.trips += 1
            return True
        return False

    def record_success(self) -> None:
        """A 2PC round completed; a HALF_OPEN probe success re-closes."""
        self.failures = 0
        if self.state == self.HALF_OPEN:
            self.state = self.CLOSED

    def pressure(self, now: float) -> float:
        """Contribution to site pressure: 1.0 while actively OPEN."""
        if self.state == self.OPEN and now - self.opened_at < self.cooldown:
            return 1.0
        return 0.0

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.state} trips={self.trips}>"


class OverloadController:
    """Per-site admission control + degradation state machine.

    Deliberately *not* named ``*Protocol``: it is a control loop around
    the protocols, not a message protocol of its own — its two message
    kinds (``ovl.state`` broadcast, ``ovl.probe`` request) carry control
    state only and never touch item values or AV.
    """

    def __init__(self, accel: "Accelerator", params: OverloadParams) -> None:
        self.accel = accel
        self.params = params
        self.state = DegradationState.NORMAL
        self.breaker = CircuitBreaker(
            params.breaker_threshold, params.breaker_cooldown
        )
        #: updates currently inside the protocol at this site
        self.inflight = 0
        self.peak_inflight = 0
        self.peak_backlog = 0
        #: requests shed (admission + breaker)
        self.shed = 0
        #: inline backlog flushes forced by backpressure
        self.flushes = 0
        self.demotions = 0
        self.promotions = 0
        #: every transition taken: ``(now, from_value, to_value)`` —
        #: the property tests audit this log against ALLOWED_TRANSITIONS
        self.transitions: List[Tuple[float, str, str]] = []
        #: last known degradation state per peer (ovl.state broadcasts)
        self.peer_states: Dict[str, str] = {}
        #: total simulated time spent DEGRADED
        self.degraded_time = 0.0
        self._entered_degraded: Optional[float] = None
        self._calm_since: Optional[float] = None
        self._last_flush = -1.0
        #: last completed sync pass (drives the read staleness bound)
        self._last_sync = 0.0
        #: items this controller demoted and still owes a re-promotion
        self._demoted: List[str] = []
        self._demoted_set: set = set()
        self._demote_inflight: set = set()
        self._promote_inflight: set = set()
        accel.endpoint.on("ovl.state", self.handle_state)
        accel.endpoint.on("ovl.probe", self.handle_probe)

    # ---------------------------------------------------------------- #
    # admission control
    # ---------------------------------------------------------------- #

    def admit(self, now: float) -> Optional[float]:
        """Admission verdict for a new update.

        Returns ``None`` to admit, or the retry-after hint (seconds)
        when the request must be shed — deterministic: the verdict is a
        pure function of the current budget occupancy.
        """
        if self.inflight >= self.params.inflight_budget:
            self.evaluate(now)
            return self.params.retry_after
        return None

    def begin(self, now: float) -> None:
        """An admitted update entered the protocol."""
        self.inflight += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight
        self.evaluate(now)

    def end(self, now: float) -> None:
        """An admitted update left the protocol (any outcome)."""
        self.inflight -= 1
        self.evaluate(now)

    def record_shed(self, now: float, retry_after: float) -> None:
        """Account one shed request (admission or breaker)."""
        self.shed += 1
        obs = self.accel.obs
        obs.emit(
            "ovl.shed", now, site=self.accel.site, retry_after=retry_after
        )
        obs.count("overload.shed")

    # ---------------------------------------------------------------- #
    # circuit breaker (immediate-update 2PC path)
    # ---------------------------------------------------------------- #

    def breaker_allow(self, now: float) -> Tuple[bool, float]:
        return self.breaker.allow(now)

    def record_2pc_timeout(self, now: float) -> None:
        if self.breaker.record_failure(now):
            obs = self.accel.obs
            obs.emit("ovl.trip", now, site=self.accel.site)
            obs.count("overload.trip")
            self.evaluate(now)

    def record_2pc_success(self, now: float) -> None:
        self.breaker.record_success()

    # ---------------------------------------------------------------- #
    # backpressure (lazy-sync backlog)
    # ---------------------------------------------------------------- #

    def note_backlog(self, now: float) -> None:
        """Called after every ``record_unsynced``; flushes over budget."""
        backlog = len(self.accel.owed)
        if backlog > self.peak_backlog:
            self.peak_backlog = backlog
        if backlog > self.params.backlog_budget and now > self._last_flush:
            # One inline flush per timestamp: push the batched deltas
            # now instead of letting the ledger grow until the next
            # scheduled sync pass.
            self._last_flush = now
            self.flushes += 1
            self.accel.obs.count("overload.backpressure_flush")
            self.accel.sync_all()
        self.evaluate(now)

    def note_sync_pass(self, now: float) -> None:
        """A periodic sync pass completed (staleness bookkeeping)."""
        self._last_sync = now
        self.evaluate(now)

    def sync_interval(self, base: float) -> float:
        """Effective sync interval: halved while under strain."""
        if self.state in (DegradationState.STRAINED, DegradationState.DEGRADED):
            return base / 2.0
        return base

    # ---------------------------------------------------------------- #
    # signals + state machine
    # ---------------------------------------------------------------- #

    def pressure(self, now: float) -> float:
        """Composite load signal in [0, ∞): max of the budget ratios."""
        p = self.params
        accel = self.accel
        return max(
            self.inflight / p.inflight_budget,
            len(accel.owed) / p.backlog_budget,
            accel.locks.total_waiting() / p.lock_wait_budget,
            self.breaker.pressure(now),
        )

    def evaluate(self, now: float) -> None:
        """Advance the state machine one step from the observed signals.

        Event-driven (admission, completion, sync passes, breaker
        events) rather than a daemon process, so an idle engine can
        drain — the harness calls :meth:`finalize` for the last word.
        """
        pressure = self.pressure(now)
        self.accel.obs.gauge_set(
            f"overload.pressure.{self.accel.site}", pressure, now
        )
        p = self.params
        state = self.state
        if state is DegradationState.NORMAL:
            if pressure >= p.strain_ratio:
                self._transition(DegradationState.STRAINED, now)
        elif state is DegradationState.STRAINED:
            if pressure >= p.degrade_ratio:
                self._transition(DegradationState.DEGRADED, now)
            elif pressure <= p.recover_ratio:
                self._transition(DegradationState.RECOVERING, now)
        elif state is DegradationState.DEGRADED:
            if pressure <= p.recover_ratio:
                self._transition(DegradationState.RECOVERING, now)
            else:
                self._maybe_demote(now)
        elif state is DegradationState.RECOVERING:
            if pressure >= p.degrade_ratio:
                self._transition(DegradationState.DEGRADED, now)
            elif pressure > p.recover_ratio:
                self._calm_since = now  # calm streak broken; restart it
            elif (
                self._calm_since is not None
                and now - self._calm_since >= p.recover_hold
            ):
                self._transition(DegradationState.NORMAL, now)
                self._promote_all()

    def _transition(self, to: DegradationState, now: float) -> None:
        frm = self.state
        if (frm, to) not in ALLOWED_TRANSITIONS:
            raise OverloadStateError(
                f"{self.accel.site}: illegal transition"
                f" {frm.value} -> {to.value}"
            )
        if frm is DegradationState.DEGRADED and self._entered_degraded is not None:
            self.degraded_time += now - self._entered_degraded
            self._entered_degraded = None
        if to is DegradationState.DEGRADED:
            self._entered_degraded = now
        if to is DegradationState.RECOVERING:
            self._calm_since = now
        self.state = to
        self.transitions.append((now, frm.value, to.value))
        obs = self.accel.obs
        obs.emit(
            "ovl.transition", now,
            site=self.accel.site, src=frm.value, dst=to.value,
        )
        obs.count(f"overload.transition.{to.value}")
        # Tell the peers: their selecting strategies steer AV requests
        # away from a DEGRADED site while alternatives exist.
        payload = {"state": to.value, "since": now}
        for peer in self.accel.live_peers():
            self.accel.endpoint.send(
                peer, "ovl.state", dict(payload), tag=TAG_OVERLOAD
            )

    # ---------------------------------------------------------------- #
    # degradation hooks (consulted by the protocols)
    # ---------------------------------------------------------------- #

    def widened_grant(self, available: float, requested: float) -> Optional[float]:
        """Grant override while under strain, or ``None`` for the policy.

        Offers ``degraded_grant_fraction`` of the grantor's holdings
        (at least the ask, never more than it holds) so one round trip
        settles what the half-grant policy would spread over several.
        """
        if self.state not in (
            DegradationState.STRAINED, DegradationState.DEGRADED
        ):
            return None
        pool = available * self.params.degraded_grant_fraction
        if float(available).is_integer():
            pool = float(math.floor(pool))
        return min(available, max(requested, pool))

    def filter_peers(self, peers: List[str]) -> List[str]:
        """Drop peers known DEGRADED — unless that would leave nobody."""
        kept = [
            p for p in peers
            if self.peer_states.get(p) != DegradationState.DEGRADED.value
        ]
        return kept if kept else peers

    def degraded_read_bound(self, now: float) -> Optional[float]:
        """Staleness bound for serving a read locally, or ``None``.

        While DEGRADED, reconciled reads are answered from the local
        replica (no fan-out) with an explicit bound: the replica lags
        ground truth by at most the deltas accumulated since the last
        completed sync pass.
        """
        if self.state is not DegradationState.DEGRADED:
            return None
        return max(self.params.stale_read_floor, now - self._last_sync)

    # ---------------------------------------------------------------- #
    # demotion / promotion (base site only)
    # ---------------------------------------------------------------- #

    def _maybe_demote(self, now: float) -> None:
        accel = self.accel
        if accel.site != accel.base_site:
            return
        budget = self.params.demote_batch - len(self._demote_inflight)
        if budget <= 0:
            return
        for item in sorted(item for item, _v in accel.store.items()):
            if budget <= 0:
                break
            if accel.av_table.defined(item):
                continue  # already on the delay path
            if item in self._demote_inflight or item in self._demoted_set:
                continue
            if accel.store.value(item) < self.params.demote_min_value:
                continue  # invariant headroom too thin to relax
            self._demote_inflight.add(item)
            budget -= 1
            accel.env.process(
                self._demote(item), name=f"{accel.site}.ovl.demote({item})"
            )

    def _demote(self, item: str):
        """Generator: convert one immediate-update item to delay-update."""
        from repro.core.reclassify import ReclassificationError
        from repro.net.endpoint import CrashedEndpointError, RequestTimeout

        accel = self.accel
        try:
            yield from accel.reclassify.make_regular(item)
        except (ReclassificationError, RequestTimeout, CrashedEndpointError):
            self._demote_inflight.discard(item)
            return
        self._demote_inflight.discard(item)
        self._demoted.append(item)
        self._demoted_set.add(item)
        self.demotions += 1
        obs = accel.obs
        obs.emit("ovl.demote", accel.now, site=accel.site, item=item)
        obs.count("overload.demote")

    def _promote_all(self) -> List:
        """Spawn one re-promotion per demoted item; returns processes."""
        accel = self.accel
        procs = []
        for item in list(self._demoted):
            if item in self._promote_inflight:
                continue
            self._promote_inflight.add(item)
            procs.append(accel.env.process(
                self._promote(item), name=f"{accel.site}.ovl.promote({item})"
            ))
        return procs

    def _promote(self, item: str):
        """Generator: restore a demoted item to the immediate class."""
        from repro.core.reclassify import ReclassificationError
        from repro.net.endpoint import CrashedEndpointError, RequestTimeout

        accel = self.accel
        try:
            yield from accel.reclassify.make_non_regular(item)
        except ReclassificationError:
            pass  # already non-regular again: promotion is moot
        except (RequestTimeout, CrashedEndpointError):
            self._promote_inflight.discard(item)
            return  # stays owed; a later finalize retries
        self._promote_inflight.discard(item)
        if item in self._demoted_set:
            self._demoted_set.discard(item)
            self._demoted.remove(item)
            self.promotions += 1
            obs = accel.obs
            obs.emit("ovl.promote", accel.now, site=accel.site, item=item)
            obs.count("overload.promote")

    @property
    def demoted_items(self) -> Tuple[str, ...]:
        """Items currently demoted and awaiting re-promotion."""
        return tuple(self._demoted)

    # ---------------------------------------------------------------- #
    # end-of-run settlement (called by the harnesses)
    # ---------------------------------------------------------------- #

    def finalize(self, now: float) -> List:
        """Settle the state machine at proven quiescence.

        The harness calls this after the event queue has drained and
        replicas have synced: quiescence is a strictly stronger calm
        proof than ``recover_hold``, so the controller may walk the
        remaining legal edges back to NORMAL and spawn the owed
        re-promotions. Returns the promotion processes (the caller runs
        the engine until they finish).
        """
        self.evaluate(now)
        steps = 0
        while (
            self.state is not DegradationState.NORMAL
            and self.pressure(now) <= self.params.recover_ratio
            and steps < 4
        ):
            steps += 1
            if self.state in (
                DegradationState.STRAINED, DegradationState.DEGRADED
            ):
                self._transition(DegradationState.RECOVERING, now)
            else:  # RECOVERING, calm: quiescence stands in for the hold
                self._transition(DegradationState.NORMAL, now)
        if self._entered_degraded is not None:  # still degraded at exit
            self.degraded_time += now - self._entered_degraded
            self._entered_degraded = now
        self.accel.obs.gauge_set(
            f"overload.degraded_time.{self.accel.site}",
            self.degraded_time, now,
        )
        if self.state is DegradationState.NORMAL:
            return self._promote_all()
        return []

    # ---------------------------------------------------------------- #
    # peer-state messaging
    # ---------------------------------------------------------------- #

    def handle_state(self, msg) -> None:
        """Record a peer's broadcast degradation state (oneway)."""
        self.peer_states[msg.src] = msg.payload["state"]

    def handle_probe(self, msg) -> dict:
        """Answer a restarted peer's state query."""
        return {"state": self.state.value}

    def probe_peers(self):
        """Generator: rebuild the peer-state map (after a restart)."""
        from repro.net.endpoint import RequestTimeout

        accel = self.accel
        for peer in sorted(accel.live_peers()):
            try:
                reply = yield accel.endpoint.request(
                    peer,
                    "ovl.probe",
                    {},
                    tag=TAG_OVERLOAD,
                    timeout=accel.request_timeout,
                )
            except RequestTimeout:
                continue
            self.peer_states[peer] = reply["state"]

    def __repr__(self) -> str:
        return (
            f"<OverloadController {self.accel.site!r} {self.state.value}"
            f" inflight={self.inflight} shed={self.shed}"
            f" demoted={len(self._demoted)}>"
        )
