"""Dynamic item reclassification — the paper's adaptation claim, built.

The abstract promises "adaptation to unpredictable user requirements":
the heterogeneous requirements on a product can *change* (a non-regular
product becomes a fast-moving stocked good; a regular product becomes a
contract item needing global consistency). The paper never gives the
mechanism; this module supplies one consistent with its machinery — the
checking function routes on AV-entry existence, so reclassification is
exactly a coordinated re-definition of AV entries:

* **make_regular(item)** — a global operation (canonical-order locks,
  same skeleton as Immediate Update) that defines AV at every site,
  splitting the item's current value per the configured weights. New
  updates then take the zero-communication Delay path.
* **make_non_regular(item)** — freezes Delay updates everywhere, waits
  for in-flight ones to drain (quiesce), collects every site's unsynced
  deltas, reconciles the ground-truth value, installs it at every
  replica, and removes the AV entries. New updates then take the
  Immediate path.

Message cost: ``4(n-1)`` messages = ``2(n-1)`` correspondences per
reclassification (lock/ready + commit/ack), tagged ``cls`` — management
traffic, accounted separately from update completion.

Constraint (documented, asserted in tests): ``make_non_regular``
reconciles from the per-site *unsynced* sums, which is exact while no
propagation pushes are in flight. Run it from a management context
(quiescent network or lazy-propagation mode), not concurrently with an
eager-propagation storm.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.core.errors import CoreError
from repro.db.locks import LockMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.accelerator import Accelerator

#: message tag for reclassification traffic; canonically declared in
#: the protocol registry
from repro.net.protocol import TAG_RECLASS  # noqa: F401


class ReclassificationError(CoreError):
    """The item is already in the requested class, or state is invalid."""


class ReclassificationProtocol:
    """Coordinator + participant roles for class changes at one site."""

    def __init__(self, accel: "Accelerator") -> None:
        self.accel = accel
        accel.endpoint.on("cls.lock", self.handle_lock)
        accel.endpoint.on("cls.to_regular", self.handle_to_regular)
        accel.endpoint.on("cls.to_nonregular", self.handle_to_nonregular)
        #: reclassifications coordinated by this site (diagnostic)
        self.coordinated = 0

    # ---------------------------------------------------------------- #
    # coordinator entry points (called through Accelerator.reclassify)
    # ---------------------------------------------------------------- #

    def make_regular(
        self,
        item: str,
        av_fraction: float = 1.0,
        weights: Optional[Dict[str, float]] = None,
    ):
        """Generator: convert a non-regular item to regular everywhere."""
        accel = self.accel
        rec = accel.obs.recorder
        if accel.av_table.defined(item):
            raise ReclassificationError(f"{item!r} is already regular")
        if not 0.0 <= av_fraction <= 1.0:
            raise ReclassificationError(f"av_fraction {av_fraction} not in [0, 1]")
        self.coordinated += 1
        token = f"cls:{accel.site}:{item}:{next(accel._req_ids)}"
        root = rec.start("cls.regular", accel.site, accel.now, item=item)

        # Reclassification involves exactly the item's replicas.
        order = sorted([accel.site, *accel.live_peers_for(item)])
        peers = [s for s in order if s != accel.site]

        # Phase 1: canonical-order locks (replicas of a non-regular item
        # are identical by invariant, so no value collection is needed).
        for site in order:
            if site == accel.site:
                yield accel.locks.acquire(
                    item, token, LockMode.EXCLUSIVE,
                    span_id=root.span_id or None,
                )
            else:
                payload = {"item": item, "token": token}
                if rec.enabled:
                    # Participants parent their cls.lock span here.
                    payload["_obs"] = {
                        "trace": root.trace_id,
                        "span": root.span_id,
                    }
                yield accel.endpoint.request(
                    site, "cls.lock", payload, tag=TAG_RECLASS
                )

        # Decide the split from the (consistent) current value.
        from repro.cluster.bootstrap import split_volume

        value = accel.store.value(item)
        pool = value * av_fraction
        if float(value).is_integer():
            import math

            pool = float(math.floor(pool))
        weight_map = weights if weights is not None else {s: 1.0 for s in order}
        base_first = [accel.base_site] + [
            s for s in order if s != accel.base_site
        ]
        shares = split_volume(pool, weight_map, base_first)

        # Phase 2: install AV entries everywhere, then unlock.
        acks = [
            accel.endpoint.request(
                peer,
                "cls.to_regular",
                {"item": item, "token": token, "share": shares[peer]},
                tag=TAG_RECLASS,
            )
            for peer in peers
        ]
        yield accel.env.all_of(acks)
        accel.av_table.define(item, shares[accel.site])
        accel.locks.release(item, token)
        root.finish(accel.now, sites=len(order))
        accel.trace("cls.regular", f"{item} AV split {shares}")
        return shares

    def make_non_regular(self, item: str):
        """Generator: convert a regular item to non-regular everywhere."""
        accel = self.accel
        rec = accel.obs.recorder
        if not accel.av_table.defined(item):
            raise ReclassificationError(f"{item!r} is already non-regular")
        self.coordinated += 1
        token = f"cls:{accel.site}:{item}:{next(accel._req_ids)}"
        root = rec.start("cls.nonregular", accel.site, accel.now, item=item)

        # Reclassification involves exactly the item's replicas.
        order = sorted([accel.site, *accel.live_peers_for(item)])
        peers = [s for s in order if s != accel.site]

        # Phase 1: freeze + quiesce + lock everywhere (canonical order);
        # each participant reports the deltas its peers have not seen.
        unsynced_total = 0.0
        for site in order:
            if site == accel.site:
                accel.freeze(item)
                yield accel.quiesce(item)
                yield accel.locks.acquire(
                    item, token, LockMode.EXCLUSIVE,
                    span_id=root.span_id or None,
                )
            else:
                payload = {"item": item, "token": token}
                if rec.enabled:
                    # Participants parent their cls.lock span here.
                    payload["_obs"] = {
                        "trace": root.trace_id,
                        "span": root.span_id,
                    }
                reply = yield accel.endpoint.request(
                    site, "cls.lock", payload, tag=TAG_RECLASS
                )
                unsynced_total += reply["unsynced"]

        # Reconcile: our replica has everything except the balances the
        # peers owed *to us* (our own committed deltas are applied
        # locally already; what we owe others is superseded below).
        accel.clear_owed_item(item)
        true_value = accel.store.value(item) + unsynced_total

        # Phase 2: install the reconciled value, drop AV, unlock.
        acks = [
            accel.endpoint.request(
                peer,
                "cls.to_nonregular",
                {"item": item, "token": token, "value": true_value},
                tag=TAG_RECLASS,
            )
            for peer in peers
        ]
        yield accel.env.all_of(acks)
        accel.av_table.undefine(item)
        accel.store.set_value(item, true_value, now=accel.now)
        accel.unfreeze(item)
        accel.locks.release(item, token)
        root.finish(accel.now, sites=len(order), value=true_value)
        accel.trace("cls.nonregular", f"{item} reconciled to {true_value:g}")
        return true_value

    # ---------------------------------------------------------------- #
    # participant handlers
    # ---------------------------------------------------------------- #

    def handle_lock(self, msg):
        """Freeze the item, drain in-flight Delay updates, take the lock.

        Replies with the participant's unsynced delta sum (claimed by the
        coordinator: it is removed here so no later sync double-sends).
        """
        accel = self.accel
        rec = accel.obs.recorder
        item = msg.payload["item"]
        token = msg.payload["token"]
        ctx = msg.payload.get("_obs") if rec.enabled else None

        def locker():
            span = rec.start(
                "cls.lock", accel.site, accel.now,
                trace=ctx["trace"] if ctx else None,
                parent=ctx["span"] if ctx else None,
                item=item,
            )
            accel.freeze(item)
            yield accel.quiesce(item)
            yield accel.locks.acquire(
                item, token, LockMode.EXCLUSIVE, span_id=span.span_id or None
            )
            span.finish(accel.now)
            # Report the balance owed to the coordinator; everything
            # owed to other peers is superseded by the value the commit
            # installs, so it is dropped there.
            return {"unsynced": accel.take_owed(msg.src, item)}

        return locker()

    def handle_to_regular(self, msg):
        accel = self.accel
        item = msg.payload["item"]
        span = accel.obs.recorder.start(
            "cls.apply", accel.site, accel.now, item=item, to="regular"
        )
        accel.av_table.define(item, msg.payload["share"])
        accel.unfreeze(item)
        accel.locks.release(item, msg.payload["token"])
        span.finish(accel.now)
        return {"done": True}

    def handle_to_nonregular(self, msg):
        accel = self.accel
        item = msg.payload["item"]
        span = accel.obs.recorder.start(
            "cls.apply", accel.site, accel.now, item=item, to="nonregular"
        )
        if accel.av_table.defined(item):
            accel.av_table.undefine(item)
        accel.clear_owed_item(item)  # superseded by the installed value
        accel.store.set_value(item, msg.payload["value"], now=accel.now)
        accel.unfreeze(item)
        accel.locks.release(item, msg.payload["token"])
        span.finish(accel.now)
        return {"done": True}
