"""Delay Update: AV-gated autonomous local updates (paper §3.3, Figs. 3-4).

The protocol, exactly as the paper describes it:

1. The accelerator receives an update request whose item *has* an AV entry
   (the checking function already routed it here).
2. A stock **increase** mints new allowable volume: apply locally, add the
   delta to the local AV. Zero messages.
3. A stock **decrease** needs AV cover:

   * local AV sufficient → take it, apply locally. Zero messages.
   * otherwise → *hold all the AV at the site* and request peers for the
     shortage. The selecting strategy picks the target (believed-richest
     per the paper); the deciding policy sets the request amount (the
     shortage) and, at the grantor, the granted amount (half of holdings,
     per the SODA'99 reference). Replies piggyback the grantor's remaining
     AV, refreshing the requester's beliefs. The requester re-requests
     until it has enough, then applies; leftover AV goes back to the local
     table. If every reachable peer is dry, all accumulated AV is returned
     and the update is **rejected** (cannot ship).

Rollback needs no exclusive AV lock: an aborted update compensates with
the opposite delta, so concurrent updates may spend AV freely in between
(paper: "extra AV can be used by other process while one process accesses
the same data").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.types import (
    TAG_AV,
    TAG_PROPAGATE,
    UpdateKind,
    UpdateOutcome,
    UpdateRequest,
    UpdateResult,
)
from repro.net.endpoint import RequestTimeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.accelerator import Accelerator


class DelayUpdateProtocol:
    """Executes Delay Updates and serves AV-transfer requests for one site.

    Parameters
    ----------
    accel:
        The owning accelerator (provides endpoint, tables, strategy,
        policy, transactions, tracer, configuration).
    """

    def __init__(self, accel: "Accelerator") -> None:
        self.accel = accel
        accel.endpoint.on("av.request", self.handle_av_request)
        accel.endpoint.on("av.pool.request", self.handle_pool_request)
        accel.endpoint.on("av.pool.refill", self.handle_pool_refill)
        accel.endpoint.on("av.push", self.handle_av_push)
        if accel.reliable is not None:
            # Behind the session, propagation deltas dedup on (src, seq)
            # and the reply acks the retransmitting sender.
            accel.reliable.on("prop.push", self.handle_propagation)
        else:
            accel.endpoint.on("prop.push", self.handle_propagation)
        #: grants served, volume granted (diagnostics)
        self.grants_served = 0
        self.volume_granted = 0.0
        #: items with an upward ``av.pool.refill`` on the wire — a
        #: second pool request for the same item must not trigger a
        #: concurrent (duplicate) refill
        self._refill_inflight: set[str] = set()

    # ---------------------------------------------------------------- #
    # requester side
    # ---------------------------------------------------------------- #

    def execute(self, req: UpdateRequest, span=None):
        """Generator driving one Delay Update to completion.

        Wraps the protocol body with the freeze gate (reclassification
        stops new updates) and in-flight accounting (so `quiesce` can
        wait for the protocol to drain). ``span`` is the update's root
        span (or ``NULL_SPAN``); protocol phases open children of it.
        """
        accel = self.accel
        # Wait while the item is frozen (re-check: it may re-freeze).
        while True:
            gate = accel.frozen_gate(req.item)
            if gate is None:
                break
            yield gate
        if not accel.av_table.defined(req.item):
            # Reclassified to non-regular while we waited at the gate.
            result = yield from accel.immediate.execute(req, span=span)
            return result
        accel._delay_begin(req.item)
        try:
            result = yield from self._execute(req, span)
        finally:
            accel._delay_end(req.item)
        return result

    def _execute(self, req: UpdateRequest, span=None):
        """The protocol body (see class docs)."""
        accel = self.accel
        rec = accel.obs.recorder
        item, delta = req.item, req.delta
        av = accel.av_table

        if delta >= 0:
            # Increase: new stock is new headroom — mint AV locally.
            self._apply(item, delta, span)
            # Mint raises the conserved headroom; announce it before the
            # table grows so the conservation sum never transiently
            # exceeds the bound.
            accel.obs.emit("av.mint", accel.now, site=accel.site, item=item, amount=delta)
            av.add(item, delta)
            # Guard the trace calls on the zero-message paths: rendering
            # the request string dominates an otherwise O(1) local commit.
            if accel.tracer.enabled:
                accel.trace("delay.local", f"{req} minted {delta:g} AV")
            self._propagate(item, delta, span)
            return self._done(req, UpdateOutcome.COMMITTED, local=True)

        need = -delta
        if av.take_if_covered(item, need):
            # The paper's headline path: complete within the local site.
            # The fused probe spends the AV in one column/dict lookup.
            # Spend shrinks headroom; announce after the take so the sum
            # only dips in between.
            accel.obs.emit("av.spend", accel.now, site=accel.site, item=item, amount=need)
            self._apply(item, delta, span)
            if accel.tracer.enabled:
                accel.trace("delay.local", f"{req} covered by local AV")
            self._propagate(item, delta, span)
            return self._done(req, UpdateOutcome.COMMITTED, local=True)

        if not accel.allow_transfers:
            # Static-escrow ablation: the allocation is fixed at
            # bootstrap, so an uncovered decrement is simply rejected.
            accel.trace("delay.reject", f"{req} static escrow exhausted")
            return self._done(req, UpdateOutcome.REJECTED)

        # Local AV insufficient: hold everything we have and go shopping.
        hold_ctx = (
            (span.trace_id, span.span_id)
            if span is not None and span.span_id
            else None
        )
        hold = av.hold(item, ctx=hold_ctx)
        hold.add(av.take_all(item))
        accel.trace("delay.gather", f"{req} holding {hold.amount:g}, need {need:g}")

        tried: set[str] = set()
        av_requests = 0
        obtained = 0.0
        rounds = 0
        progress = False

        while hold.amount < need:
            select_span = rec.start(
                "av.selecting", accel.site, accel.now, parent=span
            )
            candidates = accel.live_peers_for(item)
            if accel.overload is not None:
                # Steer the ask away from peers that broadcast DEGRADED
                # (unless they are all we have left).
                candidates = accel.overload.filter_peers(candidates)
            # Hierarchical topologies ask the regional aggregator's pool
            # first — it exists to absorb its subtree's demand. Only
            # after the pool has been tried does the believed-richest
            # strategy shop the rest of the interest set.
            pool = accel.pool_parent
            use_pool = (
                pool is not None and pool not in tried and pool in candidates
            )
            if use_pool:
                target = pool
            else:
                target = accel.strategy.select(
                    item, candidates, frozenset(tried), accel.beliefs
                )
            select_span.finish(accel.now, target=target or "<none>")
            if target is not None:
                # The happens-before checker correlates this decision
                # with the grants that shaped (or should have shaped)
                # the belief it acted on.
                accel.obs.emit(
                    "av.select", accel.now,
                    site=accel.site, item=item, target=target,
                    believed=accel.beliefs.believed_volume(target, item),
                    trace=select_span.trace_id, span=select_span.span_id,
                )
            if target is None:
                # Everyone asked once this round. Retry only if somebody
                # granted something (otherwise the system is dry).
                if progress and rounds < accel.max_rounds:
                    rounds += 1
                    tried.clear()
                    progress = False
                    continue
                hold.release()
                accel.trace("delay.reject", f"{req} gathered {obtained:g}, dry")
                return self._done(
                    req,
                    UpdateOutcome.REJECTED,
                    av_requests=av_requests,
                    av_obtained=obtained,
                )

            tried.add(target)
            shortage = need - hold.amount
            ask = accel.policy.request_amount(shortage)
            av_requests += 1
            payload = {
                "item": item,
                "amount": ask,
                # piggyback our level so the grantor's beliefs stay fresh
                "requester_av": hold.amount,
            }
            req_span = rec.start(
                "av.request", accel.site, accel.now, parent=span,
                target=target, amount=ask,
            )
            if rec.enabled:
                # Cross-site span context: the grantor parents its
                # av.grant span under this round-trip span.
                payload["_obs"] = {
                    "trace": req_span.trace_id,
                    "span": req_span.span_id,
                }
            try:
                if use_pool:
                    reply = yield accel.endpoint.request(
                        target,
                        "av.pool.request",
                        payload,
                        tag=TAG_AV,
                        timeout=accel.request_timeout,
                    )
                else:
                    reply = yield accel.endpoint.request(
                        target,
                        "av.request",
                        payload,
                        tag=TAG_AV,
                        timeout=accel.request_timeout,
                    )
            except RequestTimeout:
                req_span.finish(accel.now, timeout=True)
                accel.trace("delay.timeout", f"{req} no reply from {target}")
                continue
            except BaseException:
                # Typically CrashedEndpointError: we died mid-gathering.
                # Return the held volume to the table so no AV leaks —
                # the site's state must be exact when it restarts.
                req_span.finish(accel.now, error=True)
                hold.release()
                raise

            granted = reply["granted"]
            req_span.finish(accel.now, granted=granted)
            lease_id = reply.get("lease")
            if lease_id is not None and accel.leases is not None:
                # Record the receipt and ack the grantor's lease; a
                # duplicate delivery must not double-apply the volume.
                if not accel.leases.receive(target, lease_id):
                    granted = 0
            accel.beliefs.observe(target, item, reply["av_after"], accel.now)
            if granted > 0:
                progress = True
                obtained += granted
                hold.add(granted)
            accel.trace(
                "delay.grant",
                f"{req} got {granted:g} from {target} (hold {hold.amount:g})",
            )

        hold.consume(need)
        self._apply(item, delta, span)
        accel.trace("delay.remote", f"{req} completed after {av_requests} requests")
        self._propagate(item, delta, span)
        return self._done(
            req,
            UpdateOutcome.COMMITTED,
            av_requests=av_requests,
            av_obtained=obtained,
        )

    # ---------------------------------------------------------------- #
    # grantor side
    # ---------------------------------------------------------------- #

    # Spans for the grant are recorded in _grant_from_table.
    def handle_av_request(self, msg):  # repro-lint: disable=span-coverage
        """Serve an AV transfer: grant per policy, piggyback our level."""
        return self._grant_from_table(msg, pool=False)

    def _grant_from_table(self, msg, pool: bool):
        """Shared grantor body for peer asks and hierarchical pool asks.

        Peer grants follow the deciding policy (SODA'99 half-split: the
        grantor keeps working capital). A *pool* grant fills the request
        outright — an aggregator's table exists to absorb its subtree's
        demand, and haggling would only add round trips.
        """
        accel = self.accel
        rec = accel.obs.recorder
        item = msg.payload["item"]
        requested = msg.payload["amount"]
        ctx = msg.payload.get("_obs") if rec.enabled else None
        grant_span = rec.start(
            "av.grant", accel.site, accel.now,
            trace=ctx["trace"] if ctx else None,
            parent=ctx["span"] if ctx else None,
            item=item, requester=msg.src,
        )
        accel.beliefs.observe(
            msg.src, item, msg.payload.get("requester_av", 0.0), accel.now
        )
        if not accel.av_table.defined(item):
            grant_span.finish(accel.now, granted=0.0, undefined=True)
            return {"granted": 0.0, "av_after": 0.0}
        available = accel.av_table.get(item)
        decide_span = rec.start(
            "av.deciding", accel.site, accel.now, parent=grant_span,
            available=available, requested=requested,
        )
        if pool:
            granted = min(available, requested)
        else:
            granted = accel.policy.grant_amount(available, requested)
            if accel.overload is not None:
                # Under strain, widen the grant past the half-split
                # policy: one round trip settles what repeat
                # correspondence would.
                widened = accel.overload.widened_grant(available, requested)
                if widened is not None:
                    granted = widened
        decide_span.finish(accel.now, granted=granted)
        if granted > 0:
            if accel.inject != "av-double-grant":
                # Planted bug (test-only, see SystemConfig.inject): the
                # broken variant ships the grant *without* deducting it,
                # so the same volume exists at both sites — the exact
                # double-count the AV-conservation oracle must catch.
                accel.av_table.take(item, granted)
            self.grants_served += 1
            self.volume_granted += granted
        after = accel.av_table.get(item)
        grant_span.finish(accel.now, granted=granted, av_after=after)
        accel.trace("delay.serve", f"granted {granted:g} {item} to {msg.src}")
        reply = {"granted": granted, "av_after": after}
        if granted > 0 and accel.leases is not None:
            # Hold the granted volume under a lease until the requester
            # acks; a lost or discarded reply reverts it to our table.
            reply["lease"] = accel.leases.grant(item, granted, msg.src).lease_id
        return reply

    # Spans for the grant are recorded in _grant_from_table.
    def handle_pool_refill(self, msg):  # repro-lint: disable=span-coverage
        """Serve a downstream aggregator's top-up from our own table.

        Deliberately *not* recursive: a refill never triggers another
        refill, so an ask chain is bounded by the tree depth (the leaf's
        strategy fallback covers a dry chain).
        """
        return self._grant_from_table(msg, pool=True)

    # Spans for the grant are recorded in _grant_from_table.
    def handle_pool_request(self, msg):  # repro-lint: disable=span-coverage
        """Aggregator side of hierarchical AV: serve a leaf from the
        regional pool, refilling from our supply parent first when dry.

        Generator handler — the reply is deferred until the (timeout-
        guarded) upward refill resolves, so the leaf sees one round trip
        whether or not the pool had cover on hand.
        """
        accel = self.accel
        item = msg.payload["item"]
        requested = msg.payload["amount"]
        parent = accel.interest.parent if accel.interest is not None else None
        available = (
            accel.av_table.get(item)
            if accel.av_table.defined(item) else 0.0
        )
        if (
            parent is not None
            and available < requested
            and accel.av_table.defined(item)
            and item not in self._refill_inflight
        ):
            # Top up: the leaf's shortage plus one request's worth of
            # buffer, so the next ask for a hot item stays regional.
            ask = (requested - available) + requested
            self._refill_inflight.add(item)
            payload = {
                "item": item,
                "amount": ask,
                "requester_av": available,
            }
            try:
                reply = yield accel.endpoint.request(
                    parent,
                    "av.pool.refill",
                    payload,
                    tag=TAG_AV,
                    timeout=accel.request_timeout,
                )
            except RequestTimeout:
                accel.trace("pool.timeout", f"refill of {item} timed out")
                reply = None
            finally:
                self._refill_inflight.discard(item)
            if reply is not None:
                granted = reply["granted"]
                lease_id = reply.get("lease")
                if lease_id is not None and accel.leases is not None:
                    if not accel.leases.receive(parent, lease_id):
                        granted = 0
                accel.beliefs.observe(
                    parent, item, reply["av_after"], accel.now
                )
                if granted > 0:
                    accel.obs.emit(
                        "av.refill", accel.now, site=accel.site,
                        item=item, amount=granted,
                    )
                    accel.av_table.add(item, granted)
                    accel.trace(
                        "pool.refill",
                        f"{item} topped up {granted:g} from {parent}",
                    )
        return self._grant_from_table(msg, pool=True)

    def handle_av_push(self, msg):
        """Accept unsolicited AV (from a proactive rebalancer, see
        :mod:`repro.core.rebalancer`); bounce it if we no longer manage
        the item, and drop an already-bounced push (conservative: losing
        headroom can never over-spend stock). A *leased* push replaces
        the bounce dance: refusing to ack makes the sender's lease
        revert, and a duplicate delivery is acked but not re-applied."""
        accel = self.accel
        item = msg.payload["item"]
        amount = msg.payload["amount"]
        lease_id = msg.payload.get("lease")
        push_span = accel.obs.recorder.start(
            "av.push.apply", accel.site, accel.now,
            item=item, amount=amount, sender=msg.src,
        )
        if not accel.av_table.defined(item):
            if lease_id is not None:
                # No receipt, no ack: the sender's lease reverts the
                # volume — strictly better than bouncing it back.
                push_span.finish(accel.now, refused=True)
                return
            if msg.payload.get("bounced"):
                accel.trace("rebal.drop", f"{amount:g} {item} (both ends closed)")
                push_span.finish(accel.now, dropped=True)
                return
            accel.endpoint.send(
                msg.src,
                "av.push",
                {"item": item, "amount": amount, "sender_av": 0.0, "bounced": True},
                tag=msg.tag,
            )
            push_span.finish(accel.now, bounced=True)
            return
        if lease_id is not None and accel.leases is not None:
            if not accel.leases.receive(msg.src, lease_id):
                push_span.finish(accel.now, duplicate=True)
                return
        accel.av_table.add(item, amount)
        accel.beliefs.observe(
            msg.src, item, msg.payload.get("sender_av", 0.0), accel.now
        )
        push_span.finish(accel.now, accepted=True)

    # ---------------------------------------------------------------- #
    # lazy propagation
    # ---------------------------------------------------------------- #

    def handle_propagation(self, msg):
        """Apply a peer's committed delta to our replica."""
        accel = self.accel
        rec = accel.obs.recorder
        item, delta = msg.payload["item"], msg.payload["delta"]
        ctx = msg.payload.get("_obs") if rec.enabled else None
        apply_span = rec.start(
            "prop.apply", accel.site, accel.now,
            trace=ctx["trace"] if ctx else None,
            parent=ctx["span"] if ctx else None,
            item=item, delta=delta, src=msg.src,
        )
        # force: replicas may transiently dip negative (see module docs).
        accel.store.apply_delta(item, delta, now=accel.now, force=True)
        apply_span.finish(accel.now)

    def _propagate(self, item: str, delta: float, span=None) -> None:
        """Record or push a committed delta for replica convergence.

        Eager mode (``accel.propagate``) pushes to every peer at once —
        the paper's "propagated ... at the earliest". Lazy mode
        accumulates the delta for batched sync (one message per peer per
        batch, sent by :meth:`Accelerator.sync_item`). Either way the
        traffic is tagged ``prop`` because Fig. 6 counts only the
        correspondences needed to *complete* updates.
        """
        accel = self.accel
        if delta == 0:
            return
        if not accel.propagate:
            accel.record_unsynced(item, delta)
            return
        rec = accel.obs.recorder
        prop_span = rec.start(
            "prop.push", accel.site, accel.now, parent=span, item=item
        )
        pushed = 0
        live = set(accel.live_peers())
        for peer in sorted(accel.replica_peers(item)):
            payload = {"item": item, "delta": delta}
            if rec.enabled:
                # Receivers parent their prop.apply span under this push
                # (and the sanitizer names it if the delta is lost).
                payload["_obs"] = {
                    "trace": prop_span.trace_id,
                    "span": prop_span.span_id,
                }
            if accel.reliable is not None:
                if peer not in live:
                    # Unreachable now: keep the delta owed; the rejoin
                    # flush (or a later sync pass) delivers it.
                    accel.retain_owed(peer, item, delta)
                    continue
                proc = accel.reliable.deliver(
                    peer, "prop.push", payload, tag=TAG_PROPAGATE
                )
                proc.callbacks.append(
                    lambda ev, peer=peer, item=item, delta=delta:
                        self._settle_eager(peer, item, delta, ev)
                )
                pushed += 1
                continue
            if peer not in live:
                continue
            accel.endpoint.send(peer, "prop.push", payload, tag=TAG_PROPAGATE)
            pushed += 1
        prop_span.finish(accel.now, peers=pushed)

    def _settle_eager(self, peer: str, item: str, delta: float, event) -> None:
        """An eager reliable push resolved; keep undelivered deltas owed."""
        if event.ok and event.value is True:
            return
        self.accel.retain_owed(peer, item, delta)

    # ---------------------------------------------------------------- #
    # helpers
    # ---------------------------------------------------------------- #

    def _apply(self, item: str, delta: float, span=None) -> None:
        """Apply a committed delta in its own (single-delta) transaction."""
        accel = self.accel
        apply_span = accel.obs.recorder.start(
            "delay.apply", accel.site, accel.now, parent=span,
            item=item, delta=delta,
        )
        accel.txns.apply_atomic(item, delta, force=True)
        apply_span.finish(accel.now)

    def _done(
        self,
        req: UpdateRequest,
        outcome: UpdateOutcome,
        local: bool = False,
        av_requests: int = 0,
        av_obtained: float = 0.0,
    ) -> UpdateResult:
        return UpdateResult(
            request=req,
            kind=UpdateKind.DELAY,
            outcome=outcome,
            local_only=local,
            finished_at=self.accel.now,
            av_requests=av_requests,
            av_obtained=av_obtained,
        )
