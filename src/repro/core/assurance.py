"""Assurance metrics (paper §2.1).

The paper defines *assurance* as satisfying heterogeneous — possibly
contradictory — per-site requirements **fairly**. Its evidence in Table 1
is that the retailer sites' correspondence counts are "almost same ...
and increase very slowly". We quantify both halves:

* **fairness** across the retailer sites' communication costs — Jain's
  fairness index (1.0 = perfectly equal);
* **real-time attainment** — the fraction of Delay Updates that completed
  with zero communication (locally), the paper's proxy for the
  retailers' real-time requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n · Σx²)``.

    Ranges from ``1/n`` (one site bears everything) to ``1.0`` (equal).
    An empty or all-zero vector is perfectly fair by convention.
    """
    xs = list(values)
    if not xs:
        return 1.0
    if any(x < 0 for x in xs):
        raise ValueError("fairness is defined over nonnegative costs")
    total = sum(xs)
    if total == 0:
        return 1.0
    return total * total / (len(xs) * sum(x * x for x in xs))


def max_spread(values: Sequence[float]) -> float:
    """Relative spread ``(max - min) / mean``; 0 when perfectly equal."""
    xs = list(values)
    if not xs:
        return 0.0
    mean = sum(xs) / len(xs)
    if mean == 0:
        return 0.0
    return (max(xs) - min(xs)) / mean


@dataclass(frozen=True)
class AssuranceReport:
    """Summary of how well the integrated system served everyone."""

    #: Jain index over the retailer sites' correspondence counts
    retailer_fairness: float
    #: relative spread of the same counts
    retailer_spread: float
    #: fraction of delay updates completed with zero communication
    local_completion_ratio: float
    #: fraction of delay updates that committed (vs rejected)
    commit_ratio: float

    @property
    def assured(self) -> bool:
        """The paper's qualitative bar: fair and mostly local."""
        return self.retailer_fairness > 0.95 and self.local_completion_ratio > 0.5

    def __str__(self) -> str:
        return (
            f"AssuranceReport(fairness={self.retailer_fairness:.4f},"
            f" spread={self.retailer_spread:.3f},"
            f" local={self.local_completion_ratio:.1%},"
            f" committed={self.commit_ratio:.1%})"
        )


def assurance_report(
    retailer_correspondences: Mapping[str, float],
    delay_total: int,
    delay_local: int,
    delay_committed: int,
) -> AssuranceReport:
    """Build an :class:`AssuranceReport` from harness counters."""
    counts = list(retailer_correspondences.values())
    return AssuranceReport(
        retailer_fairness=jain_index(counts),
        retailer_spread=max_spread(counts),
        local_completion_ratio=(delay_local / delay_total) if delay_total else 1.0,
        commit_ratio=(delay_committed / delay_total) if delay_total else 1.0,
    )
