"""Exceptions raised by the AV consistency core."""

from __future__ import annotations


class CoreError(Exception):
    """Base class for AV-core errors."""


class AVUndefined(CoreError):
    """An AV operation referenced an item with no AV entry.

    Per the paper's checking function, items *without* an AV entry take
    the Immediate Update path — touching their AV is a protocol bug.
    """

    def __init__(self, item: str) -> None:
        super().__init__(f"no allowable volume defined for item {item!r}")
        self.item = item


class InsufficientAV(CoreError):
    """A take exceeded the locally available allowable volume."""

    def __init__(self, item: str, available: float, requested: float) -> None:
        super().__init__(
            f"item {item!r}: requested {requested} AV but only {available} available"
        )
        self.item = item
        self.available = available
        self.requested = requested


class InvalidVolume(CoreError):
    """A negative (or otherwise nonsensical) AV amount was supplied."""
