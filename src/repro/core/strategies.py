"""Selecting strategies: which peer to ask for AV.

The paper's selecting function targets "the order of the volume the
other sites keep" — i.e. the believed-richest peer first
(:class:`BelievedRichestStrategy`). The alternatives exist for the
selection-strategy ablation (DESIGN.md, Ablation B).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.core.beliefs import BeliefTable


class SelectionStrategy(ABC):
    """Chooses the next peer to ask for AV for ``item``.

    ``tried`` holds the peers already asked during the current gathering
    round; implementations must never return one of them.
    """

    @abstractmethod
    def select(
        self,
        item: str,
        candidates: Sequence[str],
        tried: frozenset[str],
        beliefs: BeliefTable,
    ) -> Optional[str]:
        """Return the next peer to ask, or ``None`` if nobody is left."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class BelievedRichestStrategy(SelectionStrategy):
    """The paper's strategy: ask the peer believed to hold the most AV."""

    def select(self, item, candidates, tried, beliefs):
        remaining = [c for c in candidates if c not in tried]
        if not remaining:
            return None
        return beliefs.ranked_peers(item, remaining)[0]


class RoundRobinStrategy(SelectionStrategy):
    """Cycle through peers in a fixed order, ignoring beliefs."""

    def __init__(self) -> None:
        self._next_index: dict[str, int] = {}

    def select(self, item, candidates, tried, beliefs):
        remaining = [c for c in candidates if c not in tried]
        if not remaining:
            return None
        start = self._next_index.get(item, 0) % len(candidates)
        ordered = list(candidates[start:]) + list(candidates[:start])
        for peer in ordered:
            if peer not in tried:
                self._next_index[item] = (candidates.index(peer) + 1) % len(
                    candidates
                )
                return peer
        return None  # pragma: no cover - remaining nonempty implies a hit


class RandomStrategy(SelectionStrategy):
    """Pick a uniformly random untried peer (needs an rng for determinism)."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def select(self, item, candidates, tried, beliefs):
        remaining = [c for c in candidates if c not in tried]
        if not remaining:
            return None
        return remaining[int(self.rng.integers(len(remaining)))]


class FixedOrderStrategy(SelectionStrategy):
    """Always try peers in one configured order (e.g. maker first).

    Models the "always go to the base site" habit — a useful contrast
    showing why belief-guided selection spreads load.
    """

    def __init__(self, order: Sequence[str]) -> None:
        self.order = list(order)

    def select(self, item, candidates, tried, beliefs):
        candidate_set = set(candidates)
        for peer in self.order:
            if peer in candidate_set and peer not in tried:
                return peer
        # Fall back to any untried candidate not in the configured order.
        for peer in candidates:
            if peer not in tried:
                return peer
        return None

    def __repr__(self) -> str:
        return f"<FixedOrderStrategy {self.order}>"
