"""Read operations with explicit consistency levels.

The paper is update-centric, but any database front-end needs reads.
Three levels, matching the system's consistency spectrum:

* ``LOCAL`` — the site's replica value, instantly, zero messages. For a
  regular item this may lag ground truth by exactly the deltas peers
  have not propagated yet (the price of the Delay path).
* ``RECONCILED`` — one round of requests collecting, from every live
  peer, the balance it owes us; the reply sum added to the local replica
  reproduces the ground-truth value without mutating anything.
  ``2(n-1)`` messages, read-only, no locks. Exact in lazy-propagation
  mode (owed balances are complete); under eager propagation it can lag
  by at most the deltas whose pushes are in flight (≤ one network
  latency old).
* ``LOCKED`` — a reconciled read taken under the item's local lock, so
  it also serialises against Immediate Updates this site coordinates or
  participates in.

For non-regular items every level returns the same (globally
consistent) replica value; LOCAL suffices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.db.locks import LockMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.accelerator import Accelerator

#: message tag for reconciled-read traffic; canonically declared in the
#: protocol registry
from repro.net.protocol import TAG_READ  # noqa: F401


class ReadConsistency(enum.Enum):
    LOCAL = "local"
    RECONCILED = "reconciled"
    LOCKED = "locked"


@dataclass(frozen=True, slots=True)
class ReadResult:
    """Outcome of a read."""

    item: str
    value: float
    consistency: ReadConsistency
    #: peers that contributed (reconciled/locked reads only)
    peers_asked: int = 0
    finished_at: float = 0.0
    #: served from the local replica by a DEGRADED site instead of the
    #: requested fan-out (overload brownout; see repro.core.overload)
    degraded: bool = False
    #: explicit bound on how stale a degraded read may be: the replica
    #: lags ground truth by at most the deltas accumulated since the
    #: last completed sync pass, i.e. this many simulated seconds
    staleness_bound: float = 0.0


class ReadProtocol:
    """Read-side message handling for one site."""

    def __init__(self, accel: "Accelerator") -> None:
        self.accel = accel
        accel.endpoint.on("read.owed", self.handle_owed)
        #: reads served for peers (diagnostic)
        self.served = 0

    # ---------------------------------------------------------------- #
    # requester side
    # ---------------------------------------------------------------- #

    def execute(self, item: str, consistency: ReadConsistency):
        """Generator resolving one read at the requested level."""
        accel = self.accel
        rec = accel.obs.recorder

        if (
            consistency is ReadConsistency.LOCAL
            or not accel.av_table.defined(item)
        ):
            return ReadResult(
                item=item,
                value=accel.store.value(item),
                consistency=consistency,
                finished_at=accel.now,
            )

        if accel.overload is not None:
            # Brownout: a DEGRADED site answers reconciled reads from
            # its own replica — zero messages — but says so, with an
            # explicit staleness bound, instead of quietly adding 2(n-1)
            # messages to an already-overloaded system. LOCKED reads
            # still pay full price (they serialise against 2PC).
            bound = accel.overload.degraded_read_bound(accel.now)
            if bound is not None and consistency is ReadConsistency.RECONCILED:
                return ReadResult(
                    item=item,
                    value=accel.store.value(item),
                    consistency=consistency,
                    finished_at=accel.now,
                    degraded=True,
                    staleness_bound=bound,
                )

        span = rec.start(
            "read", accel.site, accel.now,
            item=item, consistency=consistency.value,
        )
        token = f"read:{accel.site}:{item}:{next(accel._req_ids)}"
        locked = consistency is ReadConsistency.LOCKED
        if locked:
            yield accel.locks.acquire(
                item, token, LockMode.EXCLUSIVE, span_id=span.span_id or None
            )
        try:
            # Only the item's replicas can owe us deltas for it.
            peers = accel.live_peers_for(item)
            replies = yield accel.env.all_of(
                [
                    accel.endpoint.request(
                        peer, "read.owed", {"item": item}, tag=TAG_READ
                    )
                    for peer in peers
                ]
            )
            missing = sum(r["owed"] for r in replies.values())
            value = accel.store.value(item) + missing
        finally:
            if locked:
                accel.locks.release(item, token)
        span.finish(accel.now, peers=len(peers))
        return ReadResult(
            item=item,
            value=value,
            consistency=consistency,
            peers_asked=len(peers),
            finished_at=accel.now,
        )

    # ---------------------------------------------------------------- #
    # responder side
    # ---------------------------------------------------------------- #

    # Pure read of the owed ledger — nothing timed happens here.
    def handle_owed(self, msg):  # repro-lint: disable=span-coverage
        """Report (without clearing!) the balance we owe the requester."""
        self.served += 1
        return {
            "owed": self.accel.owed_to(msg.src, msg.payload["item"]),
        }
