"""Beliefs about peers' allowable volumes.

The paper's selecting function orders candidate sites "according to the
amount of AV the site keeps, which information is collected at the
necessary communication for AV management and **may not be current
data**". :class:`BeliefTable` is that possibly-stale knowledge: every AV
request/grant piggybacks the sender's current AV level, and the receiver
records it with a timestamp. No extra messages are ever sent to refresh
beliefs — staleness is a feature of the design, and the staleness
ablation quantifies its cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True, slots=True)
class Belief:
    """One remembered observation of a peer's AV for an item."""

    volume: float
    observed_at: float


class BeliefTable:
    """What one site believes about the AV levels of its peers."""

    def __init__(self, site: str = "site") -> None:
        self.site = site
        #: (peer, item) -> Belief
        self._beliefs: Dict[Tuple[str, str], Belief] = {}
        #: observations recorded (diagnostic)
        self.observations = 0

    def observe(self, peer: str, item: str, volume: float, now: float) -> None:
        """Record that ``peer`` held ``volume`` AV for ``item`` at ``now``.

        Older observations never overwrite newer ones (out-of-order
        message delivery must not regress knowledge).
        """
        key = (peer, item)
        existing = self._beliefs.get(key)
        if existing is not None and existing.observed_at > now:
            return
        self._beliefs[key] = Belief(volume, now)
        self.observations += 1

    def believed_volume(self, peer: str, item: str) -> Optional[float]:
        """Last known AV of ``peer`` for ``item``; ``None`` if never seen."""
        belief = self._beliefs.get((peer, item))
        return belief.volume if belief is not None else None

    def belief(self, peer: str, item: str) -> Optional[Belief]:
        return self._beliefs.get((peer, item))

    def ranked_peers(self, item: str, candidates: list[str]) -> list[str]:
        """``candidates`` ordered richest-believed-first.

        Unknown peers rank *above* peers believed empty (an unknown peer
        might have plenty; a known-empty one almost surely does not) but
        below peers with known positive volume. Ties break by name so the
        ordering — and hence the whole simulation — is deterministic.
        """

        def sort_key(peer: str) -> tuple[float, str]:
            believed = self.believed_volume(peer, item)
            if believed is None:
                believed = 0.5  # between "known empty" and "known ≥ 1"
            return (-believed, peer)

        return sorted(candidates, key=sort_key)

    def entries(self):
        """Iterate ``(peer, item, Belief)`` over every held belief.

        Used by the observability sampler to compare believed against
        actual AV levels (belief staleness).
        """
        for (peer, item), belief in self._beliefs.items():
            yield peer, item, belief

    def forget_peer(self, peer: str) -> None:
        """Drop all beliefs about a peer (e.g. observed to have crashed)."""
        for key in [k for k in self._beliefs if k[0] == peer]:
            del self._beliefs[key]

    def __len__(self) -> int:
        return len(self._beliefs)

    def __repr__(self) -> str:
        return f"<BeliefTable {self.site!r} entries={len(self._beliefs)}>"
