"""Shared value types for the AV consistency core."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Optional

#: message-tag constants used for correspondence accounting; canonically
#: declared in the protocol registry, re-exported here for back-compat
from repro.net.protocol import (  # noqa: F401
    TAG_AV,
    TAG_CENTRAL,
    TAG_IMMEDIATE,
    TAG_PROPAGATE,
)

#: tags that constitute "correspondences for update" in the paper's sense:
#: messages required to *complete* an update (Fig. 6 counts these).
UPDATE_TAGS = (TAG_AV, TAG_IMMEDIATE, TAG_CENTRAL)


class UpdateKind(enum.Enum):
    """How an update must be applied (the checking function's verdict)."""

    DELAY = "delay"          #: AV-gated local update, lazy propagation
    IMMEDIATE = "immediate"  #: primary-copy global update


class UpdateOutcome(enum.Enum):
    """Terminal state of one update request."""

    COMMITTED = "committed"
    #: Delay Update could not gather enough AV (globally exhausted or
    #: unreachable); the business-level meaning is "cannot ship".
    REJECTED = "rejected"
    #: Immediate Update aborted (a participant voted no).
    ABORTED = "aborted"
    #: the originating site failed mid-protocol
    FAILED = "failed"
    #: deterministically rejected by overload admission control (or the
    #: tripped 2PC circuit breaker) before entering the protocol; the
    #: result carries a ``retry_after`` hint. Only produced when
    #: ``SystemConfig.overload`` is set.
    SHED = "shed"


_request_ids = count(1)


@dataclass(slots=True)
class UpdateRequest:
    """A user's request to change an item's stock by ``delta`` at ``site``."""

    site: str
    item: str
    delta: float
    issued_at: float = 0.0
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __str__(self) -> str:
        return f"upd#{self.request_id} {self.item}{self.delta:+} @{self.site}"


@dataclass(slots=True)
class UpdateResult:
    """Everything the harness wants to know about a finished update."""

    request: UpdateRequest
    kind: UpdateKind
    outcome: UpdateOutcome
    #: completed without any network traffic (the paper's headline event)
    local_only: bool = False
    #: simulation time the update finished
    finished_at: float = 0.0
    #: number of AV-transfer requests issued while gathering volume
    av_requests: int = 0
    #: AV volume obtained from peers for this update
    av_obtained: float = 0.0
    #: suggested client backoff (simulated seconds) on a SHED outcome
    retry_after: float = 0.0

    @property
    def latency(self) -> float:
        """Simulated time from issue to completion."""
        return self.finished_at - self.request.issued_at

    @property
    def committed(self) -> bool:
        return self.outcome is UpdateOutcome.COMMITTED

    def __str__(self) -> str:
        mark = "local" if self.local_only else f"{self.av_requests} av-req"
        return (
            f"{self.request} -> {self.outcome.value}"
            f" [{self.kind.value}, {mark}, t={self.finished_at:g}]"
        )
