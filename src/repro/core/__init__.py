"""The paper's contribution: AV tables, the accelerator, both update modes."""

from repro.core.accelerator import Accelerator
from repro.core.assurance import (
    AssuranceReport,
    assurance_report,
    jain_index,
    max_spread,
)
from repro.core.av_table import AVTable, Hold
from repro.core.beliefs import Belief, BeliefTable
from repro.core.delay_update import DelayUpdateProtocol
from repro.core.errors import AVUndefined, CoreError, InsufficientAV, InvalidVolume
from repro.core.immediate_update import ImmediateUpdateProtocol
from repro.core.leases import TAG_LEASE, Lease, LeaseTable
from repro.core.reads import TAG_READ, ReadConsistency, ReadProtocol, ReadResult
from repro.core.rebalancer import TAG_REBALANCE, AVRebalancer
from repro.core.sync import SyncScheduler
from repro.core.reclassify import (
    TAG_RECLASS,
    ReclassificationError,
    ReclassificationProtocol,
)
from repro.core.policies import (
    DecidingPolicy,
    ExactPolicy,
    GrantAllPolicy,
    OverdraftPolicy,
    ProportionalPolicy,
    Soda99Policy,
)
from repro.core.strategies import (
    BelievedRichestStrategy,
    FixedOrderStrategy,
    RandomStrategy,
    RoundRobinStrategy,
    SelectionStrategy,
)
from repro.core.types import (
    TAG_AV,
    TAG_CENTRAL,
    TAG_IMMEDIATE,
    TAG_PROPAGATE,
    UPDATE_TAGS,
    UpdateKind,
    UpdateOutcome,
    UpdateRequest,
    UpdateResult,
)

__all__ = [
    "AVRebalancer",
    "AVTable",
    "AVUndefined",
    "Accelerator",
    "ReclassificationError",
    "ReclassificationProtocol",
    "TAG_REBALANCE",
    "TAG_RECLASS",
    "AssuranceReport",
    "Belief",
    "BeliefTable",
    "BelievedRichestStrategy",
    "CoreError",
    "DecidingPolicy",
    "DelayUpdateProtocol",
    "ExactPolicy",
    "FixedOrderStrategy",
    "GrantAllPolicy",
    "Hold",
    "ImmediateUpdateProtocol",
    "InsufficientAV",
    "InvalidVolume",
    "Lease",
    "LeaseTable",
    "OverdraftPolicy",
    "ProportionalPolicy",
    "RandomStrategy",
    "ReadConsistency",
    "ReadProtocol",
    "ReadResult",
    "RoundRobinStrategy",
    "SelectionStrategy",
    "Soda99Policy",
    "SyncScheduler",
    "TAG_AV",
    "TAG_CENTRAL",
    "TAG_IMMEDIATE",
    "TAG_LEASE",
    "TAG_PROPAGATE",
    "TAG_READ",
    "UPDATE_TAGS",
    "UpdateKind",
    "UpdateOutcome",
    "UpdateRequest",
    "UpdateResult",
    "assurance_report",
    "jain_index",
    "max_spread",
]
