"""Proactive AV rebalancing — the paper's §3.4 circulation, made explicit.

§3.4: "it is essential to calculate the volume of AV transfer using
local information and to make AV **circulate** among the sites". The
on-demand transfer path circulates AV only when an update is already
blocked on it — the cost shows up as update latency. This module adds
the complementary proactive mover the section gestures at: a per-site
background process that pushes surplus AV toward believed-poor peers
*before* anyone blocks.

Everything is decided from local information (own AV + belief table),
per the paper's design rule. Pushes are one-way messages tagged
``rebal`` so the experiment harness can report proactive traffic
separately from update-completion traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.accelerator import Accelerator

#: message tag for proactive rebalancing traffic; canonically declared
#: in the protocol registry
from repro.net.protocol import TAG_REBALANCE  # noqa: F401


class AVRebalancer:
    """Background surplus-pusher for one site.

    Parameters
    ----------
    accel:
        The owning accelerator.
    interval:
        Simulated time between rebalancing passes.
    surplus_factor:
        A site pushes only while its AV exceeds ``surplus_factor ×``
        its believed fair share (own + believed peers, divided evenly).
    needy_factor:
        Only peers believed below ``needy_factor ×`` fair share receive.
    push_fraction:
        Fraction of the surplus above fair share pushed per pass.
    """

    def __init__(
        self,
        accel: "Accelerator",
        interval: float = 50.0,
        surplus_factor: float = 1.5,
        needy_factor: float = 0.5,
        push_fraction: float = 0.5,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if surplus_factor <= 1.0 or not 0.0 <= needy_factor < 1.0:
            raise ValueError("need surplus_factor > 1 and 0 <= needy_factor < 1")
        if not 0.0 < push_fraction <= 1.0:
            raise ValueError("push_fraction must be in (0, 1]")
        self.accel = accel
        self.interval = interval
        self.surplus_factor = surplus_factor
        self.needy_factor = needy_factor
        self.push_fraction = push_fraction
        #: diagnostics
        self.pushes_sent = 0
        self.volume_pushed = 0.0
        self._proc = None

    # ---------------------------------------------------------------- #
    # lifecycle
    # ---------------------------------------------------------------- #

    def start(self):
        """Spawn the periodic process (idempotent); returns it."""
        if self._proc is None or self._proc.triggered:
            self._proc = self.accel.env.process(
                self._loop(), name=f"{self.accel.site}.rebalancer"
            )
        return self._proc

    def stop(self) -> None:
        """Cancel the periodic process (idempotent)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stopped")

    def _loop(self):
        from repro.sim.errors import Interrupt

        accel = self.accel
        try:
            while True:
                yield accel.env.timeout(self.interval)
                if accel.endpoint.crashed:
                    continue
                self.rebalance_once()
        except Interrupt:
            return

    # ---------------------------------------------------------------- #
    # one pass
    # ---------------------------------------------------------------- #

    def rebalance_once(self) -> int:
        """Inspect every AV entry; push surpluses. Returns pushes sent."""
        accel = self.accel
        span = accel.obs.recorder.start("rebal.pass", accel.site, accel.now)
        sent = 0
        for item, own in list(accel.av_table.items()):
            if accel.frozen_gate(item) is not None:
                continue  # reclassification in progress
            peers = accel.live_peers_for(item)
            if not peers:
                continue
            believed = {
                p: accel.beliefs.believed_volume(p, item) for p in peers
            }
            known = {p: v for p, v in believed.items() if v is not None}
            if not known:
                continue  # no local information to act on
            total = own + sum(known.values())
            fair = total / (len(known) + 1)
            if fair <= 0 or own <= self.surplus_factor * fair:
                continue
            needy = [p for p, v in known.items() if v < self.needy_factor * fair]
            if not needy:
                continue
            target = min(needy, key=lambda p: (known[p], p))
            amount = (own - fair) * self.push_fraction
            if float(own).is_integer():
                amount = float(int(amount))
            if amount <= 0:
                continue
            accel.av_table.take(item, amount)
            payload = {
                "item": item,
                "amount": amount,
                "sender_av": accel.av_table.get(item),
            }
            if accel.leases is not None:
                # The push is fire-and-forget either way; the lease
                # reverts the volume if it never lands.
                payload["lease"] = accel.leases.grant(
                    item, amount, target
                ).lease_id
            accel.endpoint.send(target, "av.push", payload, tag=TAG_REBALANCE)
            # Optimistically assume delivery for our own bookkeeping.
            accel.beliefs.observe(
                target, item, known[target] + amount, accel.now
            )
            self.pushes_sent += 1
            self.volume_pushed += amount
            sent += 1
            accel.trace("rebal.push", f"{amount:g} {item} -> {target}")
        span.finish(accel.now, pushes=sent)
        return sent

    def __repr__(self) -> str:
        return (
            f"<AVRebalancer {self.accel.site!r} pushes={self.pushes_sent}"
            f" volume={self.volume_pushed:g}>"
        )
