"""Periodic batched replica synchronisation.

The paper's Delay Update propagates results "at the earliest" but its
measured metric counts only update-completion traffic — implying
replicas reconcile out of band. :class:`SyncScheduler` is that out-of-
band mechanism: every ``interval`` it pushes each item's *net* pending
delta to every peer (one message per peer per dirty item, however many
updates accumulated). Batching trades staleness for message count; the
``bench_sync_batching`` bench quantifies the trade.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.accelerator import Accelerator


class SyncScheduler:
    """Periodic :meth:`Accelerator.sync_all` driver for one site."""

    def __init__(self, accel: "Accelerator", interval: float = 50.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if accel.propagate:
            raise ValueError(
                "SyncScheduler is for lazy mode; eager propagation is on"
            )
        self.accel = accel
        self.interval = interval
        #: diagnostics
        self.passes = 0
        self.messages_sent = 0
        self._proc = None

    def start(self):
        """Spawn the periodic process (idempotent); returns it."""
        if self._proc is None or self._proc.triggered:
            self._proc = self.accel.env.process(
                self._loop(), name=f"{self.accel.site}.sync"
            )
        return self._proc

    def stop(self) -> None:
        """Cancel the periodic process (idempotent)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stopped")

    def _loop(self):
        from repro.sim.errors import Interrupt

        accel = self.accel
        ovl = accel.overload
        try:
            while True:
                # Under strain the overload controller halves the
                # interval: draining the backlog faster is the cheapest
                # pressure relief there is.
                interval = (
                    ovl.sync_interval(self.interval)
                    if ovl is not None
                    else self.interval
                )
                yield accel.env.timeout(interval)
                if accel.endpoint.crashed:
                    continue
                span = accel.obs.recorder.start(
                    "sync.pass", accel.site, accel.now
                )
                sent = accel.sync_all(parent=span)
                span.finish(accel.now, messages=sent)
                self.messages_sent += sent
                self.passes += 1
                if ovl is not None:
                    # The periodic pass doubles as the recovery clock:
                    # it re-evaluates the state machine while the surge
                    # tails off, driving RECOVERING → NORMAL.
                    ovl.note_sync_pass(accel.now)
        except Interrupt:
            return

    def __repr__(self) -> str:
        return (
            f"<SyncScheduler {self.accel.site!r} interval={self.interval}"
            f" passes={self.passes} sent={self.messages_sent}>"
        )
