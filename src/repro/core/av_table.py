"""The Allowable Volume management table (paper §2.2/§3.3).

Each site holds one :class:`AVTable`. For every *regular* item the table
stores the site's allowable volume: the amount by which the site may
decrease the item's stock autonomously, with zero communication. Items
absent from the table are non-regular and take the Immediate Update path
— so `defined()` **is** the paper's "checking function" predicate.

The table also implements *holds*: while gathering AV from peers, the
accelerator moves local AV into a hold so concurrent local updates cannot
double-spend it, yet without locking the item (paper: "it is not
necessary to lock the AV exclusively until the completion of whole
transaction").
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.core.errors import AVUndefined, InsufficientAV, InvalidVolume


class Hold:
    """AV reserved for one in-progress update.

    Accumulates volume (local takes and peer grants); at the end the
    protocol either :meth:`consume`\\ s the needed amount (returning any
    excess to the table) or :meth:`release`\\ s everything back. ``ctx``
    carries the opening update's ``(trace_id, span_id)`` so lifecycle
    diagnostics (leaks, double-closes) can name the responsible span.
    """

    __slots__ = ("table", "item", "amount", "closed", "hold_id", "ctx")

    def __init__(
        self,
        table: "AVTable",
        item: str,
        hold_id: int = 0,
        ctx: Optional[Tuple[str, int]] = None,
    ) -> None:
        self.table = table
        self.item = item
        self.amount = 0.0
        self.closed = False
        self.hold_id = hold_id
        self.ctx = ctx

    def add(self, amount: float) -> None:
        """Add volume (from a local take or a peer grant) to the hold."""
        self._check_open()
        if amount < 0:
            raise InvalidVolume(f"cannot hold negative volume {amount}")
        self.amount += amount
        m = self.table.monitor
        if m is not None:
            m.av_event(self.table, "hold.add", self.item, amount, hold=self)

    def consume(self, needed: float) -> None:
        """Spend ``needed`` from the hold; excess returns to the table."""
        self._check_open()
        if needed < 0:
            raise InvalidVolume(f"cannot consume negative volume {needed}")
        if needed > self.amount + 1e-9:
            raise InsufficientAV(self.item, self.amount, needed)
        excess = self.amount - needed
        # Notify before mutating: the monitor sees the hold's full volume
        # leave the holds account before the excess re-enters the table,
        # so the conservation sum only ever dips (safe for a <= bound).
        m = self.table.monitor
        if m is not None:
            m.av_event(self.table, "hold.consume", self.item, needed, hold=self)
        self.amount = 0.0
        self.closed = True
        self.table.open_holds -= 1
        if excess > 0:
            self.table.add(self.item, excess)

    def release(self) -> None:
        """Return the entire hold to the table (update gave up)."""
        self._check_open()
        returned = self.amount
        m = self.table.monitor
        if m is not None:
            m.av_event(self.table, "hold.release", self.item, returned, hold=self)
        self.amount = 0.0
        self.closed = True
        self.table.open_holds -= 1
        if returned > 0:
            self.table.add(self.item, returned)

    def _check_open(self) -> None:
        if self.closed:
            m = self.table.monitor
            if m is not None:
                m.av_event(self.table, "hold.reclose", self.item, 0.0, hold=self)
            raise InvalidVolume(f"hold on {self.item!r} already closed")

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{self.amount}"
        return f"<Hold {self.item!r} {state}>"


class AVTable:
    """Per-site allowable-volume ledger.

    Parameters
    ----------
    site:
        Owning site's name (for error messages and traces).
    """

    def __init__(self, site: str = "site") -> None:
        self.site = site
        self._av: Dict[str, float] = {}
        #: open holds (diagnostic; should be empty at quiescence)
        self.open_holds = 0
        #: optional duck-typed observer with an
        #: ``av_event(table, op, item, amount, hold=None)`` method; the
        #: runtime sanitizer installs one. ``None`` keeps every op at a
        #: single extra attribute check.
        self.monitor = None
        self._hold_seq = 0

    # ---------------------------------------------------------------- #
    # the checking-function predicate
    # ---------------------------------------------------------------- #

    def defined(self, item: str) -> bool:
        """``True`` iff AV is managed for ``item`` (⇒ Delay Update)."""
        return item in self._av

    # ---------------------------------------------------------------- #
    # schema
    # ---------------------------------------------------------------- #

    def define(self, item: str, initial: float = 0.0) -> None:
        """Register ``item`` for AV management with ``initial`` volume."""
        if item in self._av:
            raise InvalidVolume(f"AV for {item!r} already defined at {self.site}")
        if initial < 0:
            raise InvalidVolume(f"negative initial AV {initial}")
        if self.monitor is not None:
            self.monitor.av_event(self, "define", item, float(initial))
        self._av[item] = float(initial)

    def undefine(self, item: str) -> float:
        """Remove ``item`` from AV management; returns the dropped volume."""
        if item not in self._av:
            raise AVUndefined(item)
        dropped = self._av.pop(item)
        if self.monitor is not None:
            self.monitor.av_event(self, "undefine", item, dropped)
        return dropped

    # ---------------------------------------------------------------- #
    # volume movement
    # ---------------------------------------------------------------- #

    def get(self, item: str) -> float:
        """Current local AV for ``item``."""
        try:
            return self._av[item]
        except KeyError:
            raise AVUndefined(item) from None

    def add(self, item: str, amount: float) -> float:
        """Increase local AV (minting at the maker, or a received grant)."""
        if amount < 0:
            raise InvalidVolume(f"cannot add negative AV {amount}")
        if item not in self._av:
            raise AVUndefined(item)
        self._av[item] += amount
        if self.monitor is not None:
            self.monitor.av_event(self, "add", item, amount)
        return self._av[item]

    def take(self, item: str, amount: float) -> float:
        """Remove exactly ``amount``; raises :class:`InsufficientAV` if short."""
        available = self.get(item)
        if amount < 0:
            raise InvalidVolume(f"cannot take negative AV {amount}")
        if amount > available + 1e-9:
            raise InsufficientAV(item, available, amount)
        self._av[item] = available - amount
        if self.monitor is not None:
            self.monitor.av_event(self, "take", item, amount)
        return amount

    def take_if_covered(self, item: str, amount: float) -> bool:
        """Fused ``get`` + ``take``: spend ``amount`` iff fully covered.

        The Delay decrement hot path's single-lookup form of
        ``if av.get(item) >= need: av.take(item, need)`` — same monitor
        event, same arithmetic, one dict probe instead of three.
        Returns whether the take happened.
        """
        try:
            available = self._av[item]
        except KeyError:
            raise AVUndefined(item) from None
        if amount < 0:
            raise InvalidVolume(f"cannot take negative AV {amount}")
        if available < amount:
            return False
        self._av[item] = available - amount
        if self.monitor is not None:
            self.monitor.av_event(self, "take", item, amount)
        return True

    def take_up_to(self, item: str, amount: float) -> float:
        """Remove ``min(amount, available)``; returns what was taken."""
        if amount < 0:
            raise InvalidVolume(f"cannot take negative AV {amount}")
        available = self.get(item)
        taken = min(amount, available)
        self._av[item] = available - taken
        if self.monitor is not None:
            self.monitor.av_event(self, "take", item, taken)
        return taken

    def take_all(self, item: str) -> float:
        """Drain the item's AV (paper: "holds all the AV at the site")."""
        available = self.get(item)
        self._av[item] = 0.0
        if self.monitor is not None:
            self.monitor.av_event(self, "take", item, available)
        return available

    def hold(self, item: str, ctx: Optional[Tuple[str, int]] = None) -> Hold:
        """Open a :class:`Hold` for an in-progress update on ``item``.

        ``ctx`` is the opening update's ``(trace_id, span_id)``, attached
        to the hold for lifecycle diagnostics.
        """
        if item not in self._av:
            raise AVUndefined(item)
        self._hold_seq += 1
        self.open_holds += 1
        h = Hold(self, item, hold_id=self._hold_seq, ctx=ctx)
        if self.monitor is not None:
            self.monitor.av_event(self, "hold.open", item, 0.0, hold=h)
        return h

    # ---------------------------------------------------------------- #
    # test hook
    # ---------------------------------------------------------------- #

    def debug_set(self, item: str, volume: float) -> None:
        """TEST-ONLY: force a raw volume, bypassing every check.

        Exists on both kernels so invariant tests can corrupt state
        without reaching into kernel-specific internals.
        """
        self._av[item] = volume

    # ---------------------------------------------------------------- #
    # views
    # ---------------------------------------------------------------- #

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(self._av.items())

    def as_dict(self) -> Dict[str, float]:
        return dict(self._av)

    def total(self) -> float:
        """Sum of AV across all items (conservation diagnostics)."""
        return sum(self._av.values())

    def __contains__(self, item: str) -> bool:
        return item in self._av

    def __len__(self) -> int:
        return len(self._av)

    def __repr__(self) -> str:
        return f"<AVTable {self.site!r} items={len(self._av)} total={self.total():g}>"
