"""Columnar (struct-of-arrays) kernel for the protocol hot state.

The object kernel keeps AV volumes, beliefs and replica values in
per-item dicts of objects. At 100+ sites / 10⁵+ items that layout pays
a dict lookup plus object attribute access per touch and an object
header per item per site. This module restructures the three hot
tables into flat catalog-indexed columns:

* one insertion-ordered ``{key: slot}`` index dict per table, and
* ``array('d')`` / ``array('q')`` value columns indexed by slot.

A site pre-sizes its columns to its interest-set slice via
:meth:`reserve` (PR 9's ``InterestView`` knows exactly which items the
site serves), so partial replication allocates only the catalogue
slice it needs. Freed slots go on a free-list and are reused in
ascending order, keeping slot assignment deterministic.

Determinism contract — the reason this module is testable at all:
every columnar class mirrors its object twin *exactly*: same public
API, same exception types and messages, same monitor-event ordering
(``define`` notifies before the write; ``add``/``take`` mutate then
notify), same float arithmetic (``array('d')`` stores IEEE-754
doubles, the same representation a Python float dict holds), and same
iteration order (the index dict is insertion-ordered, exactly like the
object kernel's dicts). ``tests/test_kernel_differential.py`` runs
both kernels side-by-side over the experiment grids and fuzz cases and
asserts byte-identical digests.

Kernel selection: :func:`resolve_kernel` maps an explicit choice, the
``REPRO_KERNEL`` environment variable, or the default onto a kernel
name; the :func:`make_store` / :func:`make_av_table` /
:func:`make_belief_table` factories construct the matching classes.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.core.av_table import Hold
from repro.core.beliefs import Belief
from repro.core.errors import AVUndefined, InsufficientAV, InvalidVolume
from repro.db.errors import DuplicateItem, NegativeValue, UnknownItem

#: kernel names accepted everywhere a kernel can be chosen
KERNELS = ("columnar", "object")

#: the kernel used when neither the config nor the environment says
#: otherwise — columnar is the default core as of ROADMAP item 2
DEFAULT_KERNEL = "columnar"

#: environment override honoured by :func:`resolve_kernel`
KERNEL_ENV = "REPRO_KERNEL"


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Resolve a kernel choice: explicit arg → env var → default.

    ``None`` / ``""`` mean "not chosen at this layer"; anything else
    must be a member of :data:`KERNELS`.
    """
    if kernel:
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        return kernel
    env = os.environ.get(KERNEL_ENV, "")
    if env:
        if env not in KERNELS:
            raise ValueError(
                f"unknown {KERNEL_ENV}={env!r}; expected one of {KERNELS}"
            )
        return env
    return DEFAULT_KERNEL


class _SlotColumns:
    """Shared slot allocator: insertion-ordered index + free-list.

    Subclasses declare their value columns; this base owns slot
    assignment. Slots are handed out in ascending order — fresh slots
    extend the columns, freed slots are reused lowest-first — so two
    runs performing the same operation sequence always agree on the
    item → slot mapping.
    """

    __slots__ = ("_index", "_free")

    def __init__(self) -> None:
        self._index: Dict = {}
        self._free: list[int] = []

    def _grow(self, n: int) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _alloc(self, key) -> int:
        if self._free:
            slot = self._free.pop()
        else:
            slot = len(self._index) + len(self._free)
            self._grow(1)
        self._index[key] = slot
        return slot

    def _release(self, key) -> int:
        slot = self._index.pop(key)
        # Keep the free-list sorted descending so pop() yields the
        # lowest slot first (deterministic reuse order).
        free = self._free
        free.append(slot)
        if len(free) > 1 and free[-2] < slot:
            free.sort(reverse=True)
        return slot

    def reserve(self, n: int) -> None:
        """Pre-size the columns for ``n`` keys (interest-set slicing).

        Called at build time with the size of the site's catalogue
        slice so bootstrap never reallocates mid-load. Slots already
        allocated count toward ``n``.
        """
        have = len(self._index) + len(self._free)
        missing = n - have
        if missing <= 0:
            return
        base = have
        self._grow(missing)
        # Lowest-first reuse: store descending so pop() is ascending.
        self._free.extend(range(base + missing - 1, base - 1, -1))


class ColumnarAVTable(_SlotColumns):
    """Struct-of-arrays :class:`~repro.core.av_table.AVTable`.

    One ``array('d')`` volume column, slot-indexed by the shared
    allocator. Holds reuse the object kernel's :class:`Hold` — it only
    talks to the table through ``add``/``monitor``, which behave
    identically here.

    Parameters
    ----------
    site:
        Owning site's name (for error messages and traces).
    inject:
        TEST-ONLY planted-bug selector. ``"col-alias"`` makes
        :meth:`add` write to the *previous* slot — the classic
        off-by-one column-aliasing bug the fuzzer must find.
    """

    __slots__ = ("site", "_vol", "open_holds", "monitor", "_hold_seq", "inject")

    def __init__(self, site: str = "site", inject: str = "") -> None:
        super().__init__()
        self.site = site
        self._vol = array("d")
        #: open holds (diagnostic; should be empty at quiescence)
        self.open_holds = 0
        #: optional duck-typed observer (see :class:`AVTable.monitor`)
        self.monitor = None
        self._hold_seq = 0
        self.inject = inject

    def _grow(self, n: int) -> None:
        self._vol.extend([0.0] * n)

    # -- checking-function predicate --------------------------------- #

    def defined(self, item: str) -> bool:
        """``True`` iff AV is managed for ``item`` (⇒ Delay Update)."""
        return item in self._index

    # -- schema ------------------------------------------------------- #

    def define(self, item: str, initial: float = 0.0) -> None:
        """Register ``item`` for AV management with ``initial`` volume."""
        if item in self._index:
            raise InvalidVolume(f"AV for {item!r} already defined at {self.site}")
        if initial < 0:
            raise InvalidVolume(f"negative initial AV {initial}")
        if self.monitor is not None:
            self.monitor.av_event(self, "define", item, float(initial))
        self._vol[self._alloc(item)] = float(initial)

    def undefine(self, item: str) -> float:
        """Remove ``item`` from AV management; returns the dropped volume."""
        if item not in self._index:
            raise AVUndefined(item)
        slot = self._release(item)
        dropped = self._vol[slot]
        self._vol[slot] = 0.0
        if self.monitor is not None:
            self.monitor.av_event(self, "undefine", item, dropped)
        return dropped

    # -- volume movement ---------------------------------------------- #

    def get(self, item: str) -> float:
        """Current local AV for ``item``."""
        try:
            return self._vol[self._index[item]]
        except KeyError:
            raise AVUndefined(item) from None

    def add(self, item: str, amount: float) -> float:
        """Increase local AV (minting at the maker, or a received grant)."""
        if amount < 0:
            raise InvalidVolume(f"cannot add negative AV {amount}")
        slot = self._index.get(item)
        if slot is None:
            raise AVUndefined(item)
        vol = self._vol
        if self.inject == "col-alias" and slot > 0:
            # PLANTED BUG: the grant lands one column over — volume
            # leaks into whatever item owns the neighbouring slot. The
            # conservation oracles must catch this.
            vol[slot - 1] += amount
        else:
            vol[slot] += amount
        if self.monitor is not None:
            self.monitor.av_event(self, "add", item, amount)
        return vol[slot]

    def take(self, item: str, amount: float) -> float:
        """Remove exactly ``amount``; raises :class:`InsufficientAV` if short."""
        slot = self._index.get(item)
        if slot is None:
            raise AVUndefined(item)
        available = self._vol[slot]
        if amount < 0:
            raise InvalidVolume(f"cannot take negative AV {amount}")
        if amount > available + 1e-9:
            raise InsufficientAV(item, available, amount)
        self._vol[slot] = available - amount
        if self.monitor is not None:
            self.monitor.av_event(self, "take", item, amount)
        return amount

    def take_if_covered(self, item: str, amount: float) -> bool:
        """Fused ``get`` + ``take``: spend ``amount`` iff fully covered.

        The Delay decrement hot path's single-lookup form of
        ``if av.get(item) >= need: av.take(item, need)`` — one slot
        lookup instead of two, same monitor event, same arithmetic.
        Returns whether the take happened.
        """
        slot = self._index.get(item)
        if slot is None:
            raise AVUndefined(item)
        if amount < 0:
            raise InvalidVolume(f"cannot take negative AV {amount}")
        available = self._vol[slot]
        if available < amount:
            return False
        self._vol[slot] = available - amount
        if self.monitor is not None:
            self.monitor.av_event(self, "take", item, amount)
        return True

    def take_up_to(self, item: str, amount: float) -> float:
        """Remove ``min(amount, available)``; returns what was taken."""
        if amount < 0:
            raise InvalidVolume(f"cannot take negative AV {amount}")
        slot = self._index.get(item)
        if slot is None:
            raise AVUndefined(item)
        available = self._vol[slot]
        taken = min(amount, available)
        self._vol[slot] = available - taken
        if self.monitor is not None:
            self.monitor.av_event(self, "take", item, taken)
        return taken

    def take_all(self, item: str) -> float:
        """Drain the item's AV (paper: "holds all the AV at the site")."""
        slot = self._index.get(item)
        if slot is None:
            raise AVUndefined(item)
        available = self._vol[slot]
        self._vol[slot] = 0.0
        if self.monitor is not None:
            self.monitor.av_event(self, "take", item, available)
        return available

    def hold(self, item: str, ctx: Optional[Tuple[str, int]] = None) -> Hold:
        """Open a :class:`Hold` for an in-progress update on ``item``."""
        if item not in self._index:
            raise AVUndefined(item)
        self._hold_seq += 1
        self.open_holds += 1
        h = Hold(self, item, hold_id=self._hold_seq, ctx=ctx)
        if self.monitor is not None:
            self.monitor.av_event(self, "hold.open", item, 0.0, hold=h)
        return h

    # -- test hook ---------------------------------------------------- #

    def debug_set(self, item: str, volume: float) -> None:
        """TEST-ONLY: force a raw volume, bypassing every check.

        Mirrors the object kernel's raw dict write, including creating
        the entry when the item was never defined.
        """
        slot = self._index.get(item)
        if slot is None:
            slot = self._alloc(item)
        self._vol[slot] = volume

    # -- views -------------------------------------------------------- #

    def items(self) -> Iterator[Tuple[str, float]]:
        vol = self._vol
        return ((item, vol[slot]) for item, slot in self._index.items())

    def as_dict(self) -> Dict[str, float]:
        vol = self._vol
        return {item: vol[slot] for item, slot in self._index.items()}

    def total(self) -> float:
        """Sum of AV across all items (conservation diagnostics).

        Summed in insertion order — the same float accumulation order
        as the object kernel's ``sum(dict.values())``.
        """
        vol = self._vol
        return sum(vol[slot] for slot in self._index.values())

    def __contains__(self, item: str) -> bool:
        return item in self._index

    def __len__(self) -> int:
        return len(self._index)

    def __repr__(self) -> str:
        return (
            f"<ColumnarAVTable {self.site!r} items={len(self._index)}"
            f" total={self.total():g}>"
        )


class ColumnarBeliefTable(_SlotColumns):
    """Struct-of-arrays :class:`~repro.core.beliefs.BeliefTable`.

    Two parallel columns — believed volume and observation time —
    indexed by ``(peer, item)`` slots. :class:`Belief` values are
    materialised on demand (it is a frozen value type; identity never
    matters to callers).
    """

    __slots__ = ("site", "_vol", "_at", "observations")

    def __init__(self, site: str = "site") -> None:
        super().__init__()
        self.site = site
        self._vol = array("d")
        self._at = array("d")
        #: observations recorded (diagnostic)
        self.observations = 0

    def _grow(self, n: int) -> None:
        zeros = [0.0] * n
        self._vol.extend(zeros)
        self._at.extend(zeros)

    def observe(self, peer: str, item: str, volume: float, now: float) -> None:
        """Record that ``peer`` held ``volume`` AV for ``item`` at ``now``.

        Older observations never overwrite newer ones (out-of-order
        message delivery must not regress knowledge).
        """
        key = (peer, item)
        slot = self._index.get(key)
        if slot is None:
            slot = self._alloc(key)
        elif self._at[slot] > now:
            return
        self._vol[slot] = volume
        self._at[slot] = now
        self.observations += 1

    def believed_volume(self, peer: str, item: str) -> Optional[float]:
        """Last known AV of ``peer`` for ``item``; ``None`` if never seen."""
        slot = self._index.get((peer, item))
        return self._vol[slot] if slot is not None else None

    def belief(self, peer: str, item: str) -> Optional[Belief]:
        slot = self._index.get((peer, item))
        if slot is None:
            return None
        return Belief(self._vol[slot], self._at[slot])

    def ranked_peers(self, item: str, candidates: list[str]) -> list[str]:
        """``candidates`` ordered richest-believed-first (ties by name)."""
        index = self._index
        vol = self._vol

        def sort_key(peer: str) -> tuple[float, str]:
            slot = index.get((peer, item))
            believed = vol[slot] if slot is not None else 0.5
            return (-believed, peer)

        return sorted(candidates, key=sort_key)

    def entries(self):
        """Iterate ``(peer, item, Belief)`` over every held belief."""
        vol = self._vol
        at = self._at
        for (peer, item), slot in self._index.items():
            yield peer, item, Belief(vol[slot], at[slot])

    def forget_peer(self, peer: str) -> None:
        """Drop all beliefs about a peer (e.g. observed to have crashed)."""
        for key in [k for k in self._index if k[0] == peer]:
            self._release(key)

    def __len__(self) -> int:
        return len(self._index)

    def __repr__(self) -> str:
        return f"<ColumnarBeliefTable {self.site!r} entries={len(self._index)}>"


class _ColumnRecord:
    """Record view over one store slot (compatibility shim).

    Everything hot goes through :meth:`ColumnarStore.apply_delta` /
    ``set_value`` directly on the columns; this view only serves the
    occasional ``store.record(item)`` caller (tests, diagnostics).
    """

    __slots__ = ("_store", "_slot", "item")

    def __init__(self, store: "ColumnarStore", slot: int, item: str) -> None:
        self._store = store
        self._slot = slot
        self.item = item

    @property
    def value(self) -> float:
        return self._store._val[self._slot]

    @value.setter
    def value(self, v: float) -> None:
        self._store._val[self._slot] = v

    @property
    def version(self) -> int:
        return self._store._ver[self._slot]

    @version.setter
    def version(self, v: int) -> None:
        self._store._ver[self._slot] = v

    @property
    def updated_at(self) -> float:
        return self._store._at[self._slot]

    @updated_at.setter
    def updated_at(self, t: float) -> None:
        self._store._at[self._slot] = t

    def apply(self, delta: float, now: float = 0.0) -> float:
        """Add ``delta`` to the value; returns the new value."""
        store, slot = self._store, self._slot
        store._val[slot] += delta
        store._ver[slot] += 1
        store._at[slot] = now
        return store._val[slot]

    def set(self, value: float, now: float = 0.0) -> None:
        """Overwrite the value (used by bootstrap and replication)."""
        store, slot = self._store, self._slot
        store._val[slot] = value
        store._ver[slot] += 1
        store._at[slot] = now

    def __str__(self) -> str:
        return f"{self.item}={self.value} (v{self.version})"

    def __repr__(self) -> str:
        # Mirrors the dataclass repr of repro.db.record.Record.
        return (
            f"Record(item={self.item!r}, value={self.value!r},"
            f" version={self.version!r}, updated_at={self.updated_at!r})"
        )


class ColumnarStore(_SlotColumns):
    """Struct-of-arrays :class:`~repro.db.storage.Store`.

    Value / version / updated-at columns replace per-item
    :class:`~repro.db.record.Record` objects; the public API —
    the only surface any protocol layer touches — is identical.
    """

    __slots__ = ("name", "allow_negative", "_val", "_ver", "_at", "mutations")

    def __init__(self, name: str = "store", allow_negative: bool = False) -> None:
        super().__init__()
        self.name = name
        self.allow_negative = allow_negative
        self._val = array("d")
        self._ver = array("q")
        self._at = array("d")
        #: mutation counter across all records (diagnostic)
        self.mutations = 0

    def _grow(self, n: int) -> None:
        zeros = [0.0] * n
        self._val.extend(zeros)
        self._ver.extend([0] * n)
        self._at.extend(zeros)

    # -- schema ------------------------------------------------------- #

    def insert(self, item: str, value: float, now: float = 0.0) -> _ColumnRecord:
        """Create a new record; the id must be fresh."""
        if item in self._index:
            raise DuplicateItem(f"item {item!r} already in store {self.name!r}")
        if not self.allow_negative and value < 0:
            raise NegativeValue(item, 0, value)
        slot = self._alloc(item)
        self._val[slot] = value
        self._ver[slot] = 0
        self._at[slot] = now
        return _ColumnRecord(self, slot, item)

    def drop(self, item: str) -> None:
        if item not in self._index:
            raise UnknownItem(item)
        slot = self._release(item)
        self._val[slot] = 0.0
        self._ver[slot] = 0
        self._at[slot] = 0.0

    # -- access ------------------------------------------------------- #

    def record(self, item: str) -> _ColumnRecord:
        try:
            return _ColumnRecord(self, self._index[item], item)
        except KeyError:
            raise UnknownItem(item) from None

    def value(self, item: str) -> float:
        try:
            return self._val[self._index[item]]
        except KeyError:
            raise UnknownItem(item) from None

    def __contains__(self, item: str) -> bool:
        return item in self._index

    def __len__(self) -> int:
        return len(self._index)

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate ``(item, value)`` pairs in insertion order."""
        val = self._val
        return ((item, val[slot]) for item, slot in self._index.items())

    def item_ids(self) -> Iterable[str]:
        return self._index.keys()

    # -- mutation ----------------------------------------------------- #

    def apply_delta(
        self, item: str, delta: float, now: float = 0.0, force: bool = False
    ) -> float:
        """Add ``delta`` to a record; returns the new value.

        Same contract as :meth:`Store.apply_delta` — ``force=True``
        bypasses the non-negativity check for replica application.
        """
        slot = self._index.get(item)
        if slot is None:
            raise UnknownItem(item)
        val = self._val
        value = val[slot]
        if not force and not self.allow_negative and value + delta < 0:
            raise NegativeValue(item, value, delta)
        self.mutations += 1
        value += delta
        val[slot] = value
        self._ver[slot] += 1
        self._at[slot] = now
        return value

    def set_value(self, item: str, value: float, now: float = 0.0) -> None:
        """Overwrite a record's value (replication/bootstrap path)."""
        slot = self._index.get(item)
        if slot is None:
            raise UnknownItem(item)
        if not self.allow_negative and value < 0:
            raise NegativeValue(item, self._val[slot], value - self._val[slot])
        self.mutations += 1
        self._val[slot] = value
        self._ver[slot] += 1
        self._at[slot] = now

    # -- bulk views --------------------------------------------------- #

    def as_dict(self) -> Dict[str, float]:
        """Plain ``{item: value}`` snapshot of current values."""
        val = self._val
        return {item: val[slot] for item, slot in self._index.items()}

    def total(self) -> float:
        """Sum of all values (conservation checks)."""
        val = self._val
        return sum(val[slot] for slot in self._index.values())

    def values_for(self, items: Iterable[str]) -> list[float]:
        """Batched read: current values for ``items``, in given order."""
        index = self._index
        val = self._val
        try:
            return [val[index[item]] for item in items]
        except KeyError as exc:
            raise UnknownItem(exc.args[0]) from None

    def __repr__(self) -> str:
        return (
            f"<ColumnarStore {self.name!r} items={len(self._index)}"
            f" mutations={self.mutations}>"
        )


# --------------------------------------------------------------------- #
# factories
# --------------------------------------------------------------------- #


def make_store(name: str = "store", kernel: Optional[str] = None,
               allow_negative: bool = False):
    """Construct the resolved kernel's store class."""
    if resolve_kernel(kernel) == "columnar":
        return ColumnarStore(name, allow_negative=allow_negative)
    from repro.db.storage import Store

    return Store(name, allow_negative=allow_negative)


def make_av_table(site: str = "site", kernel: Optional[str] = None,
                  inject: str = ""):
    """Construct the resolved kernel's AV table.

    ``inject`` is the planted-bug selector; the object kernel has no
    column layout to corrupt, so it ignores column-kernel injections.
    """
    if resolve_kernel(kernel) == "columnar":
        return ColumnarAVTable(site, inject=inject)
    from repro.core.av_table import AVTable

    return AVTable(site)


def make_belief_table(site: str = "site", kernel: Optional[str] = None):
    """Construct the resolved kernel's belief table."""
    if resolve_kernel(kernel) == "columnar":
        return ColumnarBeliefTable(site)
    from repro.core.beliefs import BeliefTable

    return BeliefTable(site)
