"""Deciding policies: how much AV to request and how much to grant.

The paper's deciding function (§3.3) fixes, per §4, the policy taken from
the SODA'99 electronic-money distribution work [Kawazoe et al.]:

* **request** exactly the shortage still needed, and
* **grant** half of what the grantee currently keeps.

:class:`Soda99Policy` implements that; the alternatives quantify the
design choice in the ablation benches (DESIGN.md, Ablation A).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class DecidingPolicy(ABC):
    """Strategy pair used by the accelerator's deciding function."""

    @abstractmethod
    def request_amount(self, shortage: float) -> float:
        """Volume to ask a peer for, given the outstanding shortage."""

    @abstractmethod
    def grant_amount(self, available: float, requested: float) -> float:
        """Volume a grantor hands over, given its holdings and the ask.

        Must satisfy ``0 <= grant <= available``.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


def _ceil_half(x: float) -> float:
    """Half of ``x`` rounded up to an integer when ``x`` is integral.

    Integral stock keeps AV integral, and rounding *up* avoids the
    livelock where a site holding 1 unit would forever grant 0.
    """
    if x <= 0:
        return 0.0
    if float(x).is_integer():
        return float(math.ceil(x / 2))
    return x / 2


class Soda99Policy(DecidingPolicy):
    """The paper's policy: request the shortage, grant half of holdings."""

    def request_amount(self, shortage: float) -> float:
        return shortage

    def grant_amount(self, available: float, requested: float) -> float:
        return min(available, _ceil_half(available))


class GrantAllPolicy(DecidingPolicy):
    """Grantor hands over everything it has (greedy; starves the grantor)."""

    def request_amount(self, shortage: float) -> float:
        return shortage

    def grant_amount(self, available: float, requested: float) -> float:
        return available


class ExactPolicy(DecidingPolicy):
    """Grantor gives exactly what was asked (if it can) and nothing more.

    Minimises volume moved per transfer but maximises transfer frequency:
    the requester ends with zero slack, so its next decrement immediately
    needs another transfer.
    """

    def request_amount(self, shortage: float) -> float:
        return shortage

    def grant_amount(self, available: float, requested: float) -> float:
        return min(available, requested)


class ProportionalPolicy(DecidingPolicy):
    """Grantor gives ``fraction`` of its holdings (generalised SODA'99).

    ``fraction=0.5`` reproduces :class:`Soda99Policy` up to rounding.
    """

    def __init__(self, fraction: float = 0.5) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction {fraction} not in (0, 1]")
        self.fraction = fraction

    def request_amount(self, shortage: float) -> float:
        return shortage

    def grant_amount(self, available: float, requested: float) -> float:
        grant = available * self.fraction
        if float(available).is_integer():
            grant = float(math.ceil(grant))
        return min(available, grant)

    def __repr__(self) -> str:
        return f"<ProportionalPolicy {self.fraction}>"


class OverdraftPolicy(DecidingPolicy):
    """Request more than the shortage (prefetch factor ≥ 1).

    Requesting ``factor × shortage`` builds local slack so *future*
    updates complete locally — trades volume concentration for fewer
    transfers. The grantor side still grants half of holdings, capped at
    the (inflated) ask.
    """

    def __init__(self, factor: float = 2.0) -> None:
        if factor < 1.0:
            raise ValueError(f"factor {factor} must be >= 1")
        self.factor = factor

    def request_amount(self, shortage: float) -> float:
        amount = shortage * self.factor
        if float(shortage).is_integer():
            amount = float(math.ceil(amount))
        return amount

    def grant_amount(self, available: float, requested: float) -> float:
        return min(available, max(_ceil_half(available), min(available, requested)))

    def __repr__(self) -> str:
        return f"<OverdraftPolicy {self.factor}>"
