"""Immediate Update: primary-copy global update (paper §3.3, Fig. 5).

For non-regular items (no AV entry), maker and retailer both demand
global consistency. The requesting accelerator acts as coordinator:

1. lock the item at every site and apply the operation provisionally
   (*ready* votes);
2. exchange commit messages; completion is judged by the
   acknowledgement from the accelerator at the **base** site (the
   primary copy, normally the maker).

Messages for ``n`` sites: ``2(n-1)`` prepare/ready + ``2(n-1)``
commit/ack = ``4(n-1)`` messages = ``2(n-1)`` correspondences — the
textbook pattern the paper sketches.

Deadlock note: the paper locks locally first and then "sends the lock
request to the other accelerators simultaneously", which deadlocks (or
livelocks, under abort-and-retry) as soon as two coordinators race on
one item. We keep the paper's message *count* but acquire locks in
canonical site order — the standard total-order fix: every coordinator
requests locks along the same global order, so waits form no cycle and
contention resolves by queuing instead of aborting. The latency cost
(sequential lock phase) only touches non-regular items, which the
paper's own workload excludes from the measured experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.core.types import (
    TAG_IMMEDIATE,
    UpdateKind,
    UpdateOutcome,
    UpdateRequest,
    UpdateResult,
)
from repro.db.locks import LockMode
from repro.db.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.accelerator import Accelerator


class ImmediateUpdateProtocol:
    """Coordinator and participant roles for one site."""

    def __init__(self, accel: "Accelerator") -> None:
        self.accel = accel
        #: provisional transactions by transaction token
        self._pending: Dict[str, tuple[Transaction, str]] = {}
        #: coordinator decision log: token -> "commit" | "abort".
        #: Written before any phase-2 message, consulted by restarting
        #: participants (the 2PC termination protocol); tokens without
        #: an entry are presumed aborted.
        self.decisions: Dict[str, str] = {}
        #: tokens this coordinator is still deciding on
        self.in_progress: set = set()
        accel.endpoint.on("imm.prepare", self.handle_prepare)
        accel.endpoint.on("imm.commit", self.handle_commit)
        accel.endpoint.on("imm.abort", self.handle_abort)
        accel.endpoint.on("imm.status", self.handle_status)
        accel.endpoint.on("imm.snapshot", self.handle_snapshot)
        #: diagnostics
        self.coordinated = 0
        self.retries = 0  # kept for observability; canonical order
        #                   resolves contention by queuing, not retrying

    # ---------------------------------------------------------------- #
    # coordinator
    # ---------------------------------------------------------------- #

    def execute(self, req: UpdateRequest, span=None):
        """Generator driving one Immediate Update as coordinator.

        ``span`` is the update's root span (or ``NULL_SPAN``); the lock
        wait, each prepare round-trip, and the decision phase open
        children of it.
        """
        accel = self.accel
        rec = accel.obs.recorder
        item, delta = req.item, req.delta
        token = f"imm:{req.request_id}:{req.site}"
        ovl = accel.overload
        if ovl is not None:
            # Circuit breaker: while the 2PC path is tripped (repeated
            # prepare timeouts), shed instead of queueing one more
            # doomed coordination round. HALF_OPEN admits one probe.
            allowed, retry_after = ovl.breaker_allow(accel.now)
            if not allowed:
                ovl.record_shed(accel.now, retry_after)
                return UpdateResult(
                    request=req,
                    kind=UpdateKind.IMMEDIATE,
                    outcome=UpdateOutcome.SHED,
                    finished_at=accel.now,
                    retry_after=retry_after,
                )
        self.coordinated += 1
        # Visible to handle_status: "no decision YET" is answered as
        # "pending" (the participant must keep waiting), never as a
        # premature presumed-abort.
        self.in_progress.add(token)

        # Participants are the item's replicas (everyone, sans topology)
        # in canonical site order — a site outside the interest set never
        # hears about the item.
        order = sorted([accel.site, *accel.live_peers_for(item)])
        prepared_peers: list[str] = []
        holds_local = False
        ready = True

        # Phase 1: lock + provisional apply in canonical site order. A
        # prepare that times out (crashed participant, fault-aware mode)
        # counts as a no vote.
        from repro.net.endpoint import RequestTimeout

        for site in order:
            if site == accel.site:
                lock_span = rec.start(
                    "imm.lock", accel.site, accel.now, parent=span, item=item
                )
                yield accel.locks.acquire(
                    item, token, LockMode.EXCLUSIVE,
                    span_id=lock_span.span_id or None,
                )
                lock_span.finish(accel.now)
                if ovl is not None and accel.av_table.defined(item):
                    # The item was demoted to regular (overload
                    # degradation) while we queued for the lock; a
                    # global decrement now would double-count against
                    # the AV already distributed. Reroute to the Delay
                    # path — mirrors the same re-check in delay_update.
                    accel.locks.release(item, token)
                    self.in_progress.discard(token)
                    result = yield from accel.delay.execute(req, span=span)
                    return result
                holds_local = True
                if accel.store.value(item) + delta < 0:
                    ready = False
                    break
            else:
                payload = {"item": item, "delta": delta, "token": token}
                prep_span = rec.start(
                    "imm.prepare", accel.site, accel.now, parent=span,
                    target=site,
                )
                if rec.enabled:
                    # Cross-site span context: the participant parents
                    # its lock-wait span under this round-trip span.
                    payload["_obs"] = {
                        "trace": prep_span.trace_id,
                        "span": prep_span.span_id,
                    }
                try:
                    reply = yield accel.endpoint.request(
                        site,
                        "imm.prepare",
                        payload,
                        tag=TAG_IMMEDIATE,
                        timeout=accel.request_timeout,
                    )
                except RequestTimeout:
                    prep_span.finish(accel.now, timeout=True)
                    accel.trace("imm.unreachable", f"{site} ({token})")
                    if ovl is not None:
                        ovl.record_2pc_timeout(accel.now)
                    ready = False
                    break
                prep_span.finish(accel.now, ready=reply["ready"])
                if not reply["ready"]:
                    ready = False
                    break
                prepared_peers.append(site)

        if not ready:
            # Phase 2a: roll back everyone already prepared. The
            # decision is logged first so a prepared-but-unreachable
            # participant resolves to abort via the status query.
            self.decisions[token] = "abort"
            self.in_progress.discard(token)
            if accel.tracer.enabled:
                accel.trace("imm.abort", str(req))
            abort_span = rec.start(
                "imm.abort", accel.site, accel.now, parent=span,
                peers=len(prepared_peers),
            )
            if accel.request_timeout is None:
                abort_payload = {"token": token}
                if rec.enabled:
                    # Participants parent their imm.apply span here.
                    abort_payload["_obs"] = {
                        "trace": abort_span.trace_id,
                        "span": abort_span.span_id,
                    }
                acks = [
                    accel.endpoint.request(
                        peer, "imm.abort", abort_payload, tag=TAG_IMMEDIATE
                    )
                    for peer in prepared_peers
                ]
                yield accel.env.all_of(acks)
            else:
                deliveries = [
                    accel.env.process(
                        self._deliver_decision(peer, "imm.abort", token),
                        name=f"{accel.site}.abort->{peer}",
                    )
                    for peer in prepared_peers
                ]
                yield accel.env.all_of(deliveries)
            abort_span.finish(accel.now)
            if holds_local:
                accel.locks.release(item, token)
            return UpdateResult(
                request=req,
                kind=UpdateKind.IMMEDIATE,
                outcome=UpdateOutcome.ABORTED,
                finished_at=accel.now,
            )

        # Phase 2b: decide, apply locally, then commit everywhere
        # simultaneously. The decision is logged before any message so a
        # restarting participant can learn the outcome.
        self.decisions[token] = "commit"
        self.in_progress.discard(token)
        with accel.txns.atomic() as txn:
            txn.apply(item, delta)
        commit_span = rec.start(
            "imm.commit", accel.site, accel.now, parent=span,
            peers=len(prepared_peers),
        )
        if accel.request_timeout is None:
            commit_payload = {"token": token}
            if rec.enabled:
                # Participants parent their imm.apply span here.
                commit_payload["_obs"] = {
                    "trace": commit_span.trace_id,
                    "span": commit_span.span_id,
                }
            acks = [
                accel.endpoint.request(
                    peer, "imm.commit", commit_payload, tag=TAG_IMMEDIATE
                )
                for peer in prepared_peers
            ]
            results = yield accel.env.all_of(acks)
            # Paper: completion is judged by the base accelerator's message.
            base = accel.base_site
            if base != accel.site and base in prepared_peers:
                base_ack = results[acks[prepared_peers.index(base)]]
                if not base_ack.get("done", False):  # pragma: no cover
                    raise RuntimeError(
                        f"base site {base} failed to confirm {req}"
                    )
        else:
            # Fault-aware mode: bounded resend per peer; a peer that
            # stays unreachable resolves later via the status query.
            deliveries = [
                accel.env.process(
                    self._deliver_decision(peer, "imm.commit", token),
                    name=f"{accel.site}.commit->{peer}",
                )
                for peer in prepared_peers
            ]
            yield accel.env.all_of(deliveries)
        commit_span.finish(accel.now)
        if ovl is not None:
            ovl.record_2pc_success(accel.now)
        accel.locks.release(item, token)
        if accel.tracer.enabled:
            accel.trace("imm.commit", str(req))
        return UpdateResult(
            request=req,
            kind=UpdateKind.IMMEDIATE,
            outcome=UpdateOutcome.COMMITTED,
            finished_at=accel.now,
        )

    def _deliver_decision(self, peer: str, kind: str, token: str):
        """Resend ``kind`` to ``peer`` until acked or retries exhausted.

        The handler is idempotent, so at-least-once delivery is safe; a
        peer that never answers is left to the termination protocol
        (its restart queries :meth:`handle_status`).
        """
        from repro.net.endpoint import CrashedEndpointError, RequestTimeout

        accel = self.accel
        for _attempt in range(accel.max_immediate_retries):
            try:
                reply = yield accel.endpoint.request(
                    peer,
                    kind,
                    {"token": token},
                    tag=TAG_IMMEDIATE,
                    timeout=accel.request_timeout,
                )
            except RequestTimeout:
                self.retries += 1
                continue
            except CrashedEndpointError:
                # We crashed mid-resend. The decision log survives; the
                # participant resolves via the status query instead.
                return None
            return reply
        accel.trace("imm.undelivered", f"{kind} to {peer} ({token})")
        return None

    # ---------------------------------------------------------------- #
    # participant
    # ---------------------------------------------------------------- #

    def handle_prepare(self, msg):
        """Wait for the item lock, apply provisionally, vote."""
        accel = self.accel
        rec = accel.obs.recorder
        item = msg.payload["item"]
        delta = msg.payload["delta"]
        token = msg.payload["token"]

        ctx = msg.payload.get("_obs") if rec.enabled else None
        lock_span = rec.start(
            "imm.lock", accel.site, accel.now,
            trace=ctx["trace"] if ctx else None,
            parent=ctx["span"] if ctx else None,
            item=item,
        )
        yield accel.locks.acquire(
            item, token, LockMode.EXCLUSIVE, span_id=lock_span.span_id or None
        )
        lock_span.finish(accel.now)
        if accel.store.value(item) + delta < 0:
            accel.locks.release(item, token)
            return {"ready": False}
        txn = accel.txns.begin()
        txn.apply(item, delta)
        self._pending[token] = (txn, item)
        if accel.request_timeout is not None:
            # Participant-side termination timer: if neither commit nor
            # abort arrives, learn the outcome from the coordinator.
            accel.env.process(
                self._watchdog(token), name=f"{accel.site}.watchdog({token})"
            )
        return {"ready": True}

    def _watchdog(self, token: str):
        accel = self.accel
        yield accel.env.timeout(accel.request_timeout * 4)
        if token in self._pending and not accel.endpoint.crashed:
            accel.trace("imm.watchdog", token)
            yield from self._resolve(token)

    # Thin wrappers: the shared _apply_decision body opens the imm.apply
    # span for both outcomes.
    def handle_commit(self, msg):  # repro-lint: disable=span-coverage
        """Commit the provisional txn. Idempotent: a resend after the
        token was already resolved (or after restart resolution) acks."""
        return self._apply_decision(msg, commit=True)

    def handle_abort(self, msg):  # repro-lint: disable=span-coverage
        return self._apply_decision(msg, commit=False)

    def _apply_decision(self, msg, commit: bool):
        accel = self.accel
        rec = accel.obs.recorder
        token = msg.payload["token"]
        ctx = msg.payload.get("_obs") if rec.enabled else None
        apply_span = rec.start(
            "imm.apply", accel.site, accel.now,
            trace=ctx["trace"] if ctx else None,
            parent=ctx["span"] if ctx else None,
            token=token, decision="commit" if commit else "abort",
        )
        entry = self._pending.pop(token, None)
        if entry is not None:
            txn, item = entry
            if commit:
                txn.commit()
            else:
                txn.abort()
            accel.locks.release(item, token)
        apply_span.finish(accel.now, applied=entry is not None)
        return {"done": True}

    # Pure read of the decision log — nothing timed happens, so a span
    # would only add noise to traces.
    def handle_status(self, msg):  # repro-lint: disable=span-coverage
        """Termination protocol: report this coordinator's decision.

        Three answers: a logged decision; ``"pending"`` while the
        coordinator is still deciding (the participant re-asks later —
        never a premature presumed-abort); and ``"abort"`` for unknown
        tokens (the coordinator never reached a decision before dying,
        and its own cleanup treats them the same way).
        """
        token = msg.payload["token"]
        decided = self.decisions.get(token)
        if decided is not None:
            return {"decision": decided}
        if token in self.in_progress:
            return {"decision": "pending"}
        return {"decision": "abort"}

    # Pure read assembled from local state — no waits, no mutations.
    def handle_snapshot(self, msg):  # repro-lint: disable=span-coverage
        """Serve the current values of all non-regular items.

        Used by a restarting peer to catch up on Immediate Updates it
        missed while crashed (live-membership updates commit without
        it; the paper's base re-delivers data, §3.2). Items with an
        unresolved provisional transaction here are withheld — our
        value for them is not authoritative until the termination
        protocol resolves them (the puller keeps its own recovered
        value; the next Immediate Update on the item re-syncs everyone).
        """
        accel = self.accel
        in_doubt = {item for _txn, item in self._pending.values()}
        values = {}
        withheld = []
        for item, value in accel.store.items():
            if accel.av_table.defined(item):
                continue
            if item in in_doubt:
                withheld.append(item)
            else:
                values[item] = value
        return {"values": values, "withheld": withheld}

    def catch_up(self, max_pulls: int = 10):
        """Generator: pull missed non-regular state from the base.

        Prefers the base site (the primary copy); falls back to any
        live peer. A source withholds items with an unresolved
        provisional transaction — a withheld value will soon change, so
        installing it would freeze a superseded state here. We re-pull
        until every item has been served (or the retry budget runs
        out); an update that was mid-2PC when we rejoined resolves
        within a bounded number of retries.
        """
        from repro.net.endpoint import RequestTimeout

        accel = self.accel
        missing = {
            item for item, _v in accel.store.items()
            if not accel.av_table.defined(item)
        }
        applied = 0
        for _pull in range(max_pulls):
            if not missing:
                break
            base = accel.base_site
            candidates = [base] if base != accel.site else []
            candidates += [p for p in accel.live_peers() if p != base]
            reply = None
            for source in candidates:
                if accel.endpoint.network.faults.is_crashed(source):
                    continue
                try:
                    reply = yield accel.endpoint.request(
                        source,
                        "imm.snapshot",
                        None,
                        tag=TAG_IMMEDIATE,
                        timeout=accel.request_timeout,
                    )
                except RequestTimeout:
                    continue
                break
            if reply is None:
                return applied  # nobody reachable; stay stale for now
            for item, value in reply["values"].items():
                if item in missing and not accel.av_table.defined(item):
                    accel.store.set_value(item, value, now=accel.now)
                    missing.discard(item)
                    applied += 1
            if missing:
                yield accel.env.timeout(accel.request_timeout or 1.0)
        accel.trace("imm.catchup", f"{applied} items, {len(missing)} unresolved")
        return applied

    # ---------------------------------------------------------------- #
    # restart resolution (called by Site.restart)
    # ---------------------------------------------------------------- #

    def resolve_pending(self) -> list:
        """Spawn a resolution process per in-doubt provisional txn.

        Each process queries the token's coordinator until it answers,
        then commits or aborts accordingly. Returns the processes.
        """
        return [
            self.accel.env.process(
                self._resolve(token), name=f"{self.accel.site}.resolve({token})"
            )
            for token in list(self._pending)
        ]

    def _resolve(self, token: str):
        from repro.net.endpoint import RequestTimeout

        accel = self.accel
        coordinator = token.split(":")[2]
        while True:
            try:
                reply = yield accel.endpoint.request(
                    coordinator,
                    "imm.status",
                    {"token": token},
                    tag=TAG_IMMEDIATE,
                    timeout=accel.request_timeout,
                )
            except RequestTimeout:
                continue  # coordinator still down: classic 2PC blocking
            if reply["decision"] == "pending":
                # Coordinator alive but undecided: keep waiting.
                yield accel.env.timeout(accel.request_timeout or 1.0)
                continue
            entry = self._pending.pop(token, None)
            if entry is None:
                return reply["decision"]  # resolved concurrently by resend
            txn, item = entry
            if reply["decision"] == "commit":
                txn.commit()
            else:
                txn.abort()
            accel.locks.release(item, token)
            accel.trace("imm.resolved", f"{token} -> {reply['decision']}")
            return reply["decision"]
