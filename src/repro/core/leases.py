"""AV grant leases: granted-but-unacked volume can revert, never vanish.

Without leases, volume a grantor takes out of its table lives only in
the reply (or rebalancer push) carrying it: if that message is dropped,
or the requester times out and discards the late reply, the volume is
*conservatively lost* — headroom shrinks forever. The PR 2 sanitizer
reports each such loss as a warning. This module closes the hole:

* the grantor keeps every granted-but-unacknowledged transfer in an
  **open lease** (item, amount, holder) keyed by a site-local id that
  rides in the transfer payload;
* the holder records a **receipt** for each lease it applies and sends
  an ``av.lease.ack``; the grantor **discharges** the lease on ack;
* a lease still open after ``lease_timeout`` makes the grantor **probe**
  the holder (``av.lease.probe``). Per-directed-pair FIFO makes the
  answer definitive — the transfer travelled the same channel before
  the probe — so "not received" licenses a **revert**: the volume goes
  back into the grantor's table. "Received" (the ack was lost) simply
  discharges.

Transfers themselves are *not* retransmitted: a lost transfer reverts,
and the requester's gather loop (or a later rebalancing pass) moves
volume again under a fresh lease. Every lease therefore resolves exactly
once — discharged or reverted — which the sanitizer's
:class:`~repro.analysis.invariants.LeaseAudit` checks structurally, and
"conservative in-transit loss" becomes a counted non-event instead of a
warning.

The probe loop retries forever (a bounded budget would strand volume);
runs where a holder stays unreachable for good must be bounded with
``run(until=...)``. Any schedule that eventually heals drains cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.net.endpoint import CrashedEndpointError, RequestTimeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.accelerator import Accelerator
    from repro.net.reliable import ReliabilityParams

#: message tag for lease control traffic (acks, probes); never counted
#: as update traffic — Fig. 6's accounting must not change. Canonically
#: declared in the protocol registry.
from repro.net.protocol import TAG_LEASE  # noqa: F401


@dataclass(frozen=True)
class Lease:
    """One granted-but-unacknowledged AV transfer, held at the grantor."""

    lease_id: int
    item: str
    amount: float
    holder: str
    opened_at: float


class LeaseTable:
    """Both halves of the lease protocol for one site.

    Grantor side: :meth:`grant` opens a lease (and its expiry timer);
    the ack handler / probe outcome resolves it via :meth:`discharge` or
    revert. Holder side: :meth:`receive` records the receipt and acks;
    :meth:`re_ack` replays acks after a crash (receipts survive — a
    crash here is network isolation, not memory loss).

    Parameters
    ----------
    accel:
        The owning accelerator (endpoint, AV table, obs hub).
    params:
        The site's :class:`~repro.net.reliable.ReliabilityParams`
        (``lease_timeout``, ``probe_interval``, ``ack_timeout``).
    """

    def __init__(self, accel: "Accelerator", params: "ReliabilityParams") -> None:
        self.accel = accel
        self.env = accel.env
        self.params = params
        self._ids = count(1)
        #: open leases we granted: lease_id -> Lease
        self._open: Dict[int, Lease] = {}
        #: how each of our leases resolved: lease_id -> "discharged"|"reverted"
        self._resolved: Dict[int, str] = {}
        #: transfers we received and applied: (grantor, lease_id) -> time
        self._receipts: Dict[Tuple[str, int], float] = {}
        #: diagnostics
        self.opened = 0
        self.discharged = 0
        self.reverted = 0
        self.probes = 0
        self.acks_sent = 0
        accel.endpoint.on("av.lease.ack", self._handle_ack)
        accel.endpoint.on("av.lease.probe", self._handle_probe)

    # ---------------------------------------------------------------- #
    # grantor side
    # ---------------------------------------------------------------- #

    def grant(self, item: str, amount: float, holder: str) -> Lease:
        """Open a lease for volume just taken out of our table.

        The caller puts ``lease.lease_id`` in the transfer payload (the
        ``av.request`` reply or ``av.push`` message) so the holder can
        ack it.
        """
        lease = Lease(next(self._ids), item, float(amount), holder, self.env.now)
        self._open[lease.lease_id] = lease
        self.opened += 1
        self.accel.obs.emit(
            "av.lease.open", self.env.now,
            site=self.accel.site, item=item, amount=lease.amount,
            holder=holder, lease=lease.lease_id,
        )
        self.env.process(
            self._expiry(lease),
            name=f"{self.accel.site}.lease#{lease.lease_id}",
        )
        return lease

    def discharge(self, lease_id: int) -> bool:
        """Close a lease whose transfer is known applied at the holder."""
        lease = self._open.pop(lease_id, None)
        if lease is None:
            return False
        self._resolved[lease_id] = "discharged"
        self.discharged += 1
        self.accel.obs.emit(
            "av.lease.discharge", self.env.now,
            site=self.accel.site, item=lease.item, amount=lease.amount,
            holder=lease.holder, lease=lease_id,
        )
        return True

    def _revert(self, lease: Lease) -> None:
        """The transfer definitively never arrived: reclaim the volume."""
        if self._open.pop(lease.lease_id, None) is None:
            return
        self._resolved[lease.lease_id] = "reverted"
        self.reverted += 1
        # Emit before the table add: the conservation sum only dips in
        # between (the revert raises the LHS back by exactly the leased
        # amount the in-transit account gave up at the drop).
        self.accel.obs.emit(
            "av.lease.revert", self.env.now,
            site=self.accel.site, item=lease.item, amount=lease.amount,
            holder=lease.holder, lease=lease.lease_id,
        )
        self.accel.av_table.add(lease.item, lease.amount)
        self.accel.trace(
            "lease.revert",
            f"{lease.amount:g} {lease.item} back from lost transfer to {lease.holder}",
        )

    def _expiry(self, lease: Lease):
        """Timer: probe the holder once the lease outlives its timeout.

        FIFO makes the first answered probe definitive, so the loop only
        needs to survive timeouts and crash windows (either end). It
        exits as soon as the lease resolves — including via an ack that
        lands while a probe is in flight.
        """
        params = self.params
        yield self.env.timeout(params.lease_timeout)
        while lease.lease_id in self._open:
            if self.accel.endpoint.crashed:
                yield self.env.timeout(params.probe_interval)
                continue
            try:
                reply = yield self.accel.endpoint.request(
                    lease.holder,
                    "av.lease.probe",
                    {"lease": lease.lease_id},
                    tag=TAG_LEASE,
                    timeout=params.ack_timeout,
                )
            except RequestTimeout:
                self.probes += 1
                yield self.env.timeout(params.probe_interval)
                continue
            except CrashedEndpointError:
                yield self.env.timeout(params.probe_interval)
                continue
            self.probes += 1
            if lease.lease_id not in self._open:
                break  # an ack resolved it during the round-trip
            if reply["received"]:
                self.discharge(lease.lease_id)
            else:
                self._revert(lease)

    def _handle_ack(self, msg):
        lease_id = msg.payload["lease"]
        if self.discharge(lease_id):
            return
        if self._resolved.get(lease_id) == "reverted":
            # The holder applied a transfer we already reclaimed: the
            # volume now exists twice. Only reachable when a message
            # outlives lease_timeout in flight — which ReliabilityParams
            # forbids — so surface it loudly.
            self.accel.obs.emit(
                "av.lease.conflict", self.env.now,
                site=self.accel.site, holder=msg.src, lease=lease_id,
            )
        # acks for already-discharged leases (re_ack replays) are normal

    # ---------------------------------------------------------------- #
    # holder side
    # ---------------------------------------------------------------- #

    def receive(self, grantor: str, lease_id: int) -> bool:
        """Record a leased transfer's arrival and ack it.

        Returns ``False`` for a duplicate delivery — the caller must not
        apply the volume again (the first delivery did).
        """
        key = (grantor, lease_id)
        if key in self._receipts:
            self._send_ack(grantor, lease_id)
            return False
        self._receipts[key] = self.env.now
        self._send_ack(grantor, lease_id)
        return True

    def _send_ack(self, grantor: str, lease_id: int) -> None:
        try:
            self.accel.endpoint.send(
                grantor, "av.lease.ack", {"lease": lease_id}, tag=TAG_LEASE
            )
            self.acks_sent += 1
        except CrashedEndpointError:
            # We are isolated; the receipt is recorded, so either the
            # grantor's probe or our rejoin-time re_ack resolves it.
            pass

    def re_ack(self) -> int:
        """Replay acks for every recorded receipt (crash-recovery rejoin).

        Idempotent at the grantor: acks for discharged leases are
        ignored, and a receipt guarantees the lease cannot have
        reverted (the probe would have answered "received").
        """
        sent = 0
        for grantor, lease_id in sorted(self._receipts):
            self._send_ack(grantor, lease_id)
            sent += 1
        return sent

    def _handle_probe(self, msg):
        """Definitive (FIFO) answer: did this grantor's lease arrive?"""
        return {
            "received": (msg.src, msg.payload["lease"]) in self._receipts
        }

    # ---------------------------------------------------------------- #
    # views
    # ---------------------------------------------------------------- #

    @property
    def open_leases(self) -> int:
        return len(self._open)

    def outstanding(self, item: Optional[str] = None) -> float:
        """Leased volume not yet resolved (optionally for one item)."""
        return sum(
            lease.amount
            for lease in self._open.values()
            if item is None or lease.item == item
        )

    def __repr__(self) -> str:
        return (
            f"<LeaseTable {self.accel.site!r} open={len(self._open)}"
            f" discharged={self.discharged} reverted={self.reverted}>"
        )
