"""The accelerator (paper §3.3): one per site.

The accelerator is the paper's central artifact — the component placed at
each site that owns the AV management table and realises both update
modes through three functions:

* **checking** — classify each user update as Delay (AV entry exists) or
  Immediate (no AV entry);
* **selecting** — choose which peer to ask for AV
  (:mod:`repro.core.strategies`);
* **deciding** — how much AV to request/grant
  (:mod:`repro.core.policies`).

Construction wires the protocol handlers onto the site's endpoint; the
only entry point users need is :meth:`update`, which returns a process
event yielding an :class:`~repro.core.types.UpdateResult`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.delay_update import DelayUpdateProtocol
from repro.core.immediate_update import ImmediateUpdateProtocol
from repro.core.overload import OverloadParams
from repro.core.policies import DecidingPolicy, Soda99Policy
from repro.core.strategies import BelievedRichestStrategy, SelectionStrategy
from repro.core.types import UpdateKind, UpdateRequest
from repro.db.locks import LockManager
from repro.db.storage import Store
from repro.db.transaction import TransactionManager
from repro.net.endpoint import Endpoint
from repro.net.reliable import ReliabilityParams
from repro.obs.hub import NULL_OBS, Observability
from repro.sim.process import Process
from repro.sim.tracing import NullTracer, Tracer


class Accelerator:
    """Per-site protocol engine.

    Parameters
    ----------
    endpoint:
        The site's network endpoint (handlers are registered on it).
    store:
        The site's local replica.
    base_site:
        Name of the base (primary-copy) site, normally the maker.
    strategy, policy:
        Selecting strategy and deciding policy; default to the paper's
        (believed-richest, SODA'99 half-grant).
    rng:
        Random stream for protocol jitter (immediate-update backoff).
        Required: pass a dedicated :class:`~repro.sim.rng.RngRegistry`
        stream; there is deliberately no seeded default (two sites
        sharing stream 0 is a silent determinism bug).
    propagate:
        Push committed Delay deltas to peers asynchronously.
    request_timeout:
        Timeout for AV transfer requests; ``None`` waits forever (fine
        without faults; fault experiments set one).
    max_rounds:
        Extra all-peer passes allowed while gathering AV, provided the
        previous pass made progress.
    max_immediate_retries:
        Attempts before an Immediate Update gives up under contention.
    reliability:
        ``None`` (default) keeps the seed's honest-loss behaviour. A
        :class:`~repro.net.reliable.ReliabilityParams` turns on the
        robustness layer: reliable (ack/retransmit, effectively-once)
        propagation, AV grant leases, and the crash-recovery rejoin
        protocol.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        store: Store,
        base_site: str,
        strategy: Optional[SelectionStrategy] = None,
        policy: Optional[DecidingPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        tracer: Optional[Tracer] = None,
        obs: Optional[Observability] = None,
        propagate: bool = False,
        request_timeout: Optional[float] = None,
        max_rounds: int = 8,
        max_immediate_retries: int = 10,
        allow_transfers: bool = True,
        reliability: Optional[ReliabilityParams] = None,
        inject: str = "",
        overload: Optional[OverloadParams] = None,
        interest=None,  # Optional[repro.cluster.topology.InterestView]
        kernel: Optional[str] = None,
    ) -> None:
        self.endpoint = endpoint
        self.env = endpoint.env
        self.site = endpoint.name
        self.store = store
        self.base_site = base_site
        #: this site's slice of the deployment topology (items served,
        #: per-item peers, supply-tree parent). ``None`` = the paper's
        #: full replication: every peer replicates every item
        self.interest = interest
        #: aggregator to ask FIRST in the Delay gather loop (hierarchical
        #: AV); ``None`` keeps the seed's strategy-only gather
        self.pool_parent = interest.pool_parent if interest is not None else None
        from repro.core.columns import make_av_table, make_belief_table, resolve_kernel

        #: resolved hot-state kernel name ("columnar" or "object")
        self.kernel = resolve_kernel(kernel)
        self.av_table = make_av_table(self.site, kernel=self.kernel, inject=inject)
        self.beliefs = make_belief_table(self.site, kernel=self.kernel)
        self.locks = LockManager(self.env, name=f"{self.site}.locks")
        self.txns = TransactionManager(store, clock=lambda: self.env.now)
        self.strategy = strategy if strategy is not None else BelievedRichestStrategy()
        self.policy = policy if policy is not None else Soda99Policy()
        if rng is None:
            # A default seed here would silently hand every accelerator
            # the *same* stream; thread one from RngRegistry instead
            # (e.g. ``rngs.stream(f"accel.{site}")``).
            raise ValueError(
                f"Accelerator {self.site!r} requires an explicit rng stream"
            )
        self.rng = rng
        self.tracer = tracer if tracer is not None else NullTracer()
        self.obs = obs if obs is not None else NULL_OBS
        self.propagate = propagate
        self.request_timeout = request_timeout
        self.max_rounds = max_rounds
        self.max_immediate_retries = max_immediate_retries
        #: False = static escrow: never request AV from peers (ablation D)
        self.allow_transfers = allow_transfers
        #: TEST-ONLY planted-bug selector (see SystemConfig.inject);
        #: empty string = correct protocol
        self.inject = inject

        self.reliability = reliability
        if reliability is not None:
            from repro.core.leases import LeaseTable
            from repro.net.reliable import ReliableSession

            self.reliable = ReliableSession(endpoint, self.rng, reliability)
            self.leases = LeaseTable(self, reliability)
        else:
            self.reliable = None
            self.leases = None
        #: non-None while a recovered site re-syncs; new updates wait on
        #: it (only ever set when the reliability layer is on)
        self._rejoin_gate = None
        #: (peer, item) balances with a reliable delivery in flight —
        #: guards against sending the same balance twice concurrently
        self._sync_inflight: set[tuple[str, str]] = set()

        self.delay = DelayUpdateProtocol(self)
        self.immediate = ImmediateUpdateProtocol(self)
        from repro.core.reclassify import ReclassificationProtocol

        self.reclassify = ReclassificationProtocol(self)
        from repro.core.reads import ReadProtocol

        self.reads = ReadProtocol(self)

        # Overload robustness layer (admission control, 2PC circuit
        # breaker, degradation state machine). Wired after the protocols
        # it instruments; None keeps every seed path byte-identical.
        if overload is not None:
            from repro.core.overload import OverloadController

            self.overload = OverloadController(self, overload)
        else:
            self.overload = None

        #: counts by kind (diagnostics)
        self.updates_started = 0
        # Per-site request ids keep repeated runs in one process
        # bit-identical (the module-global fallback does not).
        from itertools import count as _count

        self._req_ids = _count(1)

        #: committed Delay deltas not yet pushed, **per peer**:
        #: ``(peer, item) -> net delta``. Per-peer balances make batched
        #: sync fault-tolerant: a crashed peer's balance is simply
        #: retained until it recovers (a single aggregate would be lost
        #: the first time a sync partially delivers). Eager propagation
        #: keeps this empty.
        self.owed: dict[tuple[str, str], float] = {}
        # Dirty-set index over `owed`: item -> number of (peer, item)
        # balances currently non-zero. Maintained incrementally by
        # `_set_owed` so the periodic sync scan touches only dirty items
        # (O(dirty), O(1) when clean) instead of rescanning the whole
        # ledger every pass.
        self._dirty_items: dict[str, int] = {}
        # Freeze/quiesce machinery for reclassification: a frozen item
        # admits no new Delay updates, and `quiesce` fires once in-flight
        # ones drain.
        from repro.sim.events import Event as _Event

        self._frozen: dict[str, "_Event"] = {}
        self._active_delay: dict[str, int] = {}
        self._quiesce_waiters: dict[str, list["_Event"]] = {}

    # ---------------------------------------------------------------- #
    # paper functions
    # ---------------------------------------------------------------- #

    def check(self, item: str) -> UpdateKind:
        """The checking function: Delay iff AV is defined for the item."""
        return UpdateKind.DELAY if self.av_table.defined(item) else UpdateKind.IMMEDIATE

    # ---------------------------------------------------------------- #
    # public entry point
    # ---------------------------------------------------------------- #

    def update(self, item: str, delta: float) -> Process:
        """Start an update; returns a process yielding an UpdateResult."""
        req = UpdateRequest(
            site=self.site,
            item=item,
            delta=delta,
            issued_at=self.env.now,
            request_id=next(self._req_ids),
        )
        self.updates_started += 1
        # Name by request id, not str(req): rendering the full request
        # (float formatting) on every issued update is pure overhead —
        # the name only ever surfaces in reprs and error messages.
        return self.env.process(
            self._run(req), name=f"{self.site}.upd#{req.request_id}"
        )

    def read(self, item: str, consistency=None) -> Process:
        """Start a read; the process yields a ReadResult.

        ``consistency`` is a :class:`~repro.core.reads.ReadConsistency`
        (default LOCAL — instant, zero messages).
        """
        from repro.core.reads import ReadConsistency

        if consistency is None:
            consistency = ReadConsistency.LOCAL
        return self.env.process(
            self.reads.execute(item, consistency),
            name=f"{self.site}.read({item},{consistency.value})",
        )

    def make_regular(self, item: str, av_fraction: float = 1.0, weights=None) -> Process:
        """Start a global reclassification to regular (Delay-eligible).

        Raises :class:`~repro.core.reclassify.ReclassificationError`
        immediately if the item is already regular here.
        """
        from repro.core.reclassify import ReclassificationError

        if self.av_table.defined(item):
            raise ReclassificationError(f"{item!r} is already regular")
        return self.env.process(
            self.reclassify.make_regular(item, av_fraction, weights),
            name=f"{self.site}.make_regular({item})",
        )

    def make_non_regular(self, item: str) -> Process:
        """Start a global reclassification to non-regular (Immediate).

        Raises :class:`~repro.core.reclassify.ReclassificationError`
        immediately if the item is already non-regular here.
        """
        from repro.core.reclassify import ReclassificationError

        if not self.av_table.defined(item):
            raise ReclassificationError(f"{item!r} is already non-regular")
        return self.env.process(
            self.reclassify.make_non_regular(item),
            name=f"{self.site}.make_non_regular({item})",
        )

    def _run(self, req: UpdateRequest):
        from repro.core.types import UpdateOutcome, UpdateResult
        from repro.net.endpoint import CrashedEndpointError
        from repro.obs.spans import NULL_SPAN

        ovl = self.overload
        if ovl is not None:
            # Admission control: over the inflight budget, the update is
            # shed *now* — a typed rejection with a retry-after hint
            # instead of one more queued process. Shedding happens
            # before the rejoin gate so a recovering site cannot pile up
            # an unbounded backlog behind it either.
            retry = ovl.admit(self.env.now)
            if retry is not None:
                ovl.record_shed(self.env.now, retry)
                return UpdateResult(
                    request=req,
                    kind=self.check(req.item),
                    outcome=UpdateOutcome.SHED,
                    finished_at=self.env.now,
                    retry_after=retry,
                )

        # A recovering site finishes its rejoin round (WAL replay,
        # anti-entropy with live peers) before accepting new updates;
        # re-check because a flapping site may re-enter rejoin.
        while self._rejoin_gate is not None:
            yield self._rejoin_gate

        rec = self.obs.recorder
        if rec.enabled:
            # The update's root span: every child — checking, AV
            # transfer round-trips at either site, lock waits, applies —
            # hangs off this trace id.
            root = rec.start(
                "update", self.site, self.env.now,
                trace=f"{req.site}:u{req.request_id}",
                item=req.item, delta=req.delta,
            )
        else:
            root = NULL_SPAN
        check_span = rec.start(
            "av.checking", self.site, self.env.now,
            trace=root.trace_id, parent=root,
        )
        kind = self.check(req.item)
        check_span.finish(self.env.now, verdict=kind.value)
        if ovl is not None:
            ovl.begin(self.env.now)
        try:
            if kind is UpdateKind.DELAY:
                result = yield from self.delay.execute(req, span=root)
            else:
                result = yield from self.immediate.execute(req, span=root)
        except CrashedEndpointError:
            # The site died mid-protocol. The protocol released its hold
            # on the way out, so local AV state is exact; volume granted
            # by a peer while our reply was in flight is lost in transit
            # — conservative: the AV-conservation bound only ever loses
            # volume that way, never gains it.
            result = UpdateResult(
                request=req,
                kind=kind,
                outcome=UpdateOutcome.FAILED,
                finished_at=self.env.now,
            )
        finally:
            if ovl is not None:
                ovl.end(self.env.now)
        root.finish(self.env.now, outcome=result.outcome.value)
        return result

    # ---------------------------------------------------------------- #
    # helpers used by the protocols
    # ---------------------------------------------------------------- #

    @property
    def now(self) -> float:
        return self.env.now

    def live_peers(self) -> list[str]:
        """Peers not currently known-crashed.

        The fault model is crash-visible (retailers learn of a maker
        outage out of band, as the paper's autonomous-decentralised
        systems assume); protocols simply skip crashed peers and rely on
        request timeouts for crashes they race with.
        """
        faults = self.endpoint.network.faults
        peers = self.endpoint.peers()
        if not faults.any_crashed:
            return peers
        return [p for p in peers if not faults.is_crashed(p)]

    def serves_item(self, item: str) -> bool:
        """Whether this site replicates ``item`` (always, sans topology)."""
        return self.interest is None or self.interest.serves(item)

    def replica_peers(self, item: str) -> list[str]:
        """Peers replicating ``item`` — every peer under full
        replication, the item's interest set (minus us) with a topology.
        """
        if self.interest is None:
            return self.endpoint.peers()
        return list(self.interest.peers_for(item))

    def live_neighbors(self) -> list[str]:
        """Live peers sharing at least one item with us — everyone
        under full replication. Rejoin/flush traffic goes only here."""
        if self.interest is None:
            return self.live_peers()
        faults = self.endpoint.network.faults
        return [
            p for p in self.interest.neighbors if not faults.is_crashed(p)
        ]

    def live_peers_for(self, item: str) -> list[str]:
        """`replica_peers` minus known-crashed sites (gather candidates).
        """
        if self.interest is None:
            return self.live_peers()
        faults = self.endpoint.network.faults
        return [
            p for p in self.interest.peers_for(item)
            if not faults.is_crashed(p)
        ]

    def trace(self, kind: str, detail: str) -> None:
        self.tracer.emit(self.env.now, kind, self.site, detail)

    # ---------------------------------------------------------------- #
    # lazy propagation (batched sync)
    # ---------------------------------------------------------------- #

    def _set_owed(self, key: tuple[str, str], balance: float) -> None:
        """Write one owed balance, keeping the dirty-item index exact.

        Every mutation of ``self.owed`` must route through here (or
        :meth:`_pop_owed`): the index is what makes the periodic sync
        scan O(dirty) rather than O(all balances).
        """
        owed = self.owed
        if balance == 0.0:
            self._pop_owed(key)
        else:
            if key not in owed:
                item = key[1]
                self._dirty_items[item] = self._dirty_items.get(item, 0) + 1
            owed[key] = balance

    def _pop_owed(self, key: tuple[str, str]) -> float:
        """Remove one owed balance (0.0 if absent), updating the index."""
        balance = self.owed.pop(key, 0.0)
        if balance != 0.0:
            item = key[1]
            remaining = self._dirty_items[item] - 1
            if remaining:
                self._dirty_items[item] = remaining
            else:
                del self._dirty_items[item]
        return balance

    def record_unsynced(self, item: str, delta: float) -> None:
        """Remember a committed Delay delta each replica has not seen yet.

        Only peers in the item's interest set owe a balance — a sync
        push to anyone else would reference an item outside the
        receiver's slice.

        The fan-out is batched: one pass folds the delta into every
        peer balance and reconciles the dirty-item index once, instead
        of a ``_set_owed`` call (two dict probes plus index upkeep) per
        peer. Runs once per committed Delay delta — with eager
        propagation off this is the single hottest owed-ledger path.
        """
        owed = self.owed
        added = 0
        for peer in self.replica_peers(item):
            key = (peer, item)
            old = owed.get(key)
            if old is None:
                if delta != 0.0:
                    owed[key] = delta
                    added += 1
            else:
                balance = old + delta
                if balance == 0.0:
                    del owed[key]
                    added -= 1
                else:
                    owed[key] = balance
        if added:
            dirty = self._dirty_items
            count = dirty.get(item, 0) + added
            if count:
                dirty[item] = count
            else:
                del dirty[item]
        if self.overload is not None:
            # Backpressure: an over-budget backlog is flushed inline
            # instead of growing until the next scheduled sync pass.
            self.overload.note_backlog(self.env.now)

    def owed_to(self, peer: str, item: str) -> float:
        """Net delta ``peer`` has not yet seen for ``item``."""
        return self.owed.get((peer, item), 0.0)

    def take_owed(self, peer: str, item: str) -> float:
        """Claim (and clear) the balance owed to ``peer`` for ``item``."""
        return self._pop_owed((peer, item))

    def retain_owed(self, peer: str, item: str, delta: float) -> None:
        """Fold a delta back into the owed ledger (undelivered push)."""
        key = (peer, item)
        self._set_owed(key, self.owed.get(key, 0.0) + delta)

    def clear_owed_item(self, item: str) -> None:
        """Drop every balance for ``item`` (its value was superseded)."""
        for key in [k for k in self.owed if k[1] == item]:
            self._pop_owed(key)

    def unsynced_items(self) -> set[str]:
        """Items with any pending balance (O(dirty), via the index)."""
        return set(self._dirty_items)

    def sync_item(self, item: str, parent=None, only=None, live=None) -> int:
        """Push the item's batched delta to every live peer it is owed to.

        Returns the number of messages sent — one per (live) peer with a
        balance, however many updates accumulated. Balances owed to
        crashed peers are retained for delivery after recovery.
        ``parent`` is the enclosing sync-pass span, if any; ``only``
        restricts the push to a subset of peers (rejoin flush).

        Without the reliability layer the balance is claimed at send
        time — a dropped message loses it for good (the sanitizer's
        ``prop.lost`` violation). With it, the balance stays owed until
        the reliable delivery acks, so loss can only delay convergence.

        ``live`` lets a scan pass (:meth:`sync_all` / :meth:`sync_to`)
        compute the live-peer set once for the whole pass instead of
        once per dirty item — no event fires between the items of one
        pass, so the set cannot change mid-scan.
        """
        from repro.core.types import TAG_PROPAGATE

        sent = 0
        if live is None:
            live = sorted(set(self.live_peers()))
        rec = self.obs.recorder
        span = rec.start(
            "sync.push", self.site, self.now, parent=parent, item=item
        )
        for peer in live:
            if only is not None and peer not in only:
                continue
            key = (peer, item)
            delta = self.owed.get(key, 0.0)
            if delta == 0.0:
                continue
            payload = {"item": item, "delta": delta}
            if rec.enabled:
                payload["_obs"] = {"trace": span.trace_id, "span": span.span_id}
            if self.reliable is not None:
                if key in self._sync_inflight:
                    continue  # this balance is already on the wire
                self._sync_inflight.add(key)
                proc = self.reliable.deliver(
                    peer, "prop.push", payload, tag=TAG_PROPAGATE
                )
                proc.callbacks.append(
                    lambda ev, key=key, delta=delta: self._settle_sync(
                        key, delta, ev
                    )
                )
            else:
                self._pop_owed(key)
                self.endpoint.send(peer, "prop.push", payload, tag=TAG_PROPAGATE)
            sent += 1
        span.finish(self.now, messages=sent)
        if sent and self.tracer.enabled:
            self.trace("sync.push", f"{item} to {sent} peers")
        return sent

    def _settle_sync(self, key: tuple[str, str], delta: float, event) -> None:
        """Resolve a reliable sync delivery: clear the balance on ack.

        Only the delivered snapshot is subtracted — deltas recorded
        while the message was in flight stay owed. An undelivered
        outcome (definitive, via probe) leaves the balance owed for a
        later sync pass to retry under a fresh sequence number.
        """
        self._sync_inflight.discard(key)
        if not event.ok or event.value is not True:
            return
        current = self.owed.get(key)
        if current is None:
            return  # superseded (e.g. clear_owed_item during reclassify)
        self._set_owed(key, current - delta)

    def sync_to(self, peer: str, parent=None) -> int:
        """Push every balance owed to one peer (serves rejoin flushes)."""
        dirty = sorted(self._dirty_items)
        if not dirty:
            return 0
        live = sorted(set(self.live_peers()))
        return sum(
            self.sync_item(item, parent=parent, only={peer}, live=live)
            for item in dirty
        )

    def sync_all(self, parent=None) -> int:
        """Push every pending batched delta; returns messages sent.

        Scans only the dirty-item index — a clean pass is O(1), and a
        dirty one touches exactly the items with outstanding balances.
        The live-peer set is computed once per pass (see
        :meth:`sync_item`).
        """
        dirty = sorted(self._dirty_items)
        if not dirty:
            return 0
        live = sorted(set(self.live_peers()))
        return sum(
            self.sync_item(item, parent=parent, live=live)
            for item in dirty
        )

    # ---------------------------------------------------------------- #
    # freeze / quiesce (used by reclassification)
    # ---------------------------------------------------------------- #

    def freeze(self, item: str) -> None:
        """Stop admitting new Delay updates for ``item`` (idempotent)."""
        if item not in self._frozen:
            from repro.sim.events import Event

            self._frozen[item] = Event(self.env)

    def unfreeze(self, item: str) -> None:
        """Re-admit Delay updates; wakes everything waiting on the gate."""
        gate = self._frozen.pop(item, None)
        if gate is not None:
            gate.succeed()

    def frozen_gate(self, item: str):
        """The event a Delay update must wait on, or ``None`` if open."""
        return self._frozen.get(item)

    def quiesce(self, item: str):
        """Event firing once no Delay update on ``item`` is in flight."""
        from repro.sim.events import Event

        event = Event(self.env)
        if self._active_delay.get(item, 0) == 0:
            event.succeed()
        else:
            self._quiesce_waiters.setdefault(item, []).append(event)
        return event

    def _delay_begin(self, item: str) -> None:
        self._active_delay[item] = self._active_delay.get(item, 0) + 1

    def _delay_end(self, item: str) -> None:
        remaining = self._active_delay.get(item, 0) - 1
        if remaining <= 0:
            self._active_delay.pop(item, None)
            for event in self._quiesce_waiters.pop(item, []):
                if not event.triggered:
                    event.succeed()
        else:
            self._active_delay[item] = remaining

    def __repr__(self) -> str:
        return (
            f"<Accelerator {self.site!r} av_items={len(self.av_table)}"
            f" updates={self.updates_started}>"
        )
