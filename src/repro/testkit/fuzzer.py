"""Fuzz campaigns: batched case generation, sharded execution, repro
artifacts, and byte-identical replay.

A campaign enumerates case indices from a root seed, runs them in
batches through the sharded sweep runner (``experiment="fuzz"`` tasks —
each worker regenerates its case from ``(root_seed, index)``, so
nothing but coordinates crosses the process boundary), and stops at the
first violating case or when the wall-clock/case budget runs out. The
violating case is then shrunk and written as a JSON **repro artifact**:

.. code-block:: json

    {
      "format": "repro-fuzz-repro/1",
      "root_seed": 0, "case_index": 7,
      "original_case": { ... },
      "case": { ...minimal shrunk case... },
      "fingerprint": [["av.conservation", "item2"]],
      "digest": "…sha256 of the minimal case's full outcome…",
      "findings": ["violation: av.conservation t=41.3 …"],
      "shrink": {"runs": 57, "ops": [36, 2], "faults": [4, 0]}
    }

``python -m repro fuzz --replay artifact.json`` re-runs the embedded
case and demands the same fingerprint *and* the same outcome digest —
i.e. the artifact reproduces byte-identically, not just approximately.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.perf.runner import run_sweep
from repro.perf.tasks import SweepTask
from repro.testkit.runner import run_case
from repro.testkit.schedule import FuzzCase
from repro.testkit.shrink import ShrinkResult, shrink_case

#: repro artifact format tag
ARTIFACT_FORMAT = "repro-fuzz-repro/1"


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    root_seed: int
    cases_run: int = 0
    #: payload of the first violating case (None = campaign clean)
    violating: Optional[dict] = None
    shrink: Optional[ShrinkResult] = None
    artifact_path: Optional[str] = None
    #: replay-after-shrink verified byte-identical
    replay_ok: Optional[bool] = None
    elapsed_s: float = 0.0
    events_processed: int = 0

    @property
    def ok(self) -> bool:
        return self.violating is None

    def render(self) -> str:
        status = "clean" if self.ok else "VIOLATION"
        lines = [
            f"fuzz campaign seed={self.root_seed}: {status}"
            f" ({self.cases_run} cases, {self.events_processed} kernel"
            f" events, {self.elapsed_s:.1f}s)"
        ]
        if self.violating is not None:
            index = self.violating.get("task", {}).get("index", "?")
            lines.append(
                f"  case #{index} fingerprint:"
                f" {self.violating['fingerprint']}"
            )
            for finding in self.violating.get("findings", [])[:8]:
                lines.append("    " + finding)
        if self.shrink is not None:
            lines.append("  " + self.shrink.render())
        if self.artifact_path is not None:
            lines.append(f"  repro artifact: {self.artifact_path}")
        if self.replay_ok is not None:
            lines.append(
                "  replay: "
                + ("byte-identical" if self.replay_ok else "MISMATCH")
            )
        return "\n".join(lines)


def _parse_budget(text: Optional[str]) -> Optional[float]:
    """``"10s"``/``"2m"``/``"120"`` -> seconds."""
    if text is None:
        return None
    text = text.strip().lower()
    scale = 1.0
    if text.endswith("ms"):
        scale, text = 1e-3, text[:-2]
    elif text.endswith("s"):
        text = text[:-1]
    elif text.endswith("m"):
        scale, text = 60.0, text[:-1]
    return float(text) * scale


def write_artifact(
    directory: str,
    report_root_seed: int,
    case_index: int,
    original: dict,
    shrink: ShrinkResult,
) -> str:
    """Shrunk case -> repro artifact on disk; returns the path."""
    outcome = run_case(shrink.case)
    artifact = {
        "format": ARTIFACT_FORMAT,
        "root_seed": report_root_seed,
        "case_index": case_index,
        "original_case": original,
        "case": shrink.case.to_dict(),
        "fingerprint": [list(pair) for pair in outcome.fingerprint],
        "digest": outcome.digest(),
        "findings": [v.render() for v in outcome.findings],
        "shrink": {
            "runs": shrink.runs,
            "ops": [shrink.ops_before, shrink.ops_after],
            "faults": [shrink.faults_before, shrink.faults_after],
        },
    }
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, f"repro-{outcome.digest()[:12]}.json"
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def replay_artifact(path: str) -> tuple:
    """Re-run an artifact's case; ``(reproduced, report_text)``.

    Reproduction requires the recorded fingerprint *and* the recorded
    outcome digest — the latter covers update tags, replicas and kernel
    counters, so a pass means the replay was byte-identical.
    """
    with open(path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    if artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"unsupported artifact format {artifact.get('format')!r}"
        )
    case = FuzzCase.from_dict(artifact["case"])
    outcome = run_case(case)
    fingerprint = [list(pair) for pair in outcome.fingerprint]
    same_fingerprint = fingerprint == artifact["fingerprint"]
    same_digest = outcome.digest() == artifact["digest"]
    reproduced = same_fingerprint and same_digest
    lines = [
        f"replay {os.path.basename(path)}:"
        f" {'REPRODUCED' if reproduced else 'NOT REPRODUCED'}",
        f"  fingerprint: {'match' if same_fingerprint else 'MISMATCH'}"
        f" {fingerprint}",
        f"  outcome digest: {'match' if same_digest else 'MISMATCH'}",
    ]
    lines += ["  " + v.render() for v in outcome.findings[:8]]
    return reproduced, "\n".join(lines)


def run_fuzz(
    root_seed: int = 0,
    budget_s: Optional[float] = None,
    max_cases: Optional[int] = None,
    shards: int = 1,
    n_ops: int = 36,
    inject: str = "",
    artifact_dir: Optional[str] = None,
    do_shrink: bool = True,
    shrink_max_runs: int = 400,
    batch: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run a campaign until a violation, the budget, or the case cap.

    At least one batch always runs, even with a zero budget — a
    campaign that tests nothing reports nothing.
    """
    if budget_s is None and max_cases is None:
        raise ValueError("need a wall-clock budget or a case cap")
    emit = log if log is not None else (lambda _line: None)
    # Campaign pacing is operator wall-clock, never simulation input.
    start = time.perf_counter()  # repro-lint: disable=wall-clock (campaign budget)
    report = FuzzReport(root_seed=root_seed)
    batch_size = batch if batch is not None else max(16, 8 * max(shards, 1))
    index = 0
    last_emit = start

    while True:
        if max_cases is not None:
            batch_size = min(batch_size, max_cases - index)
            if batch_size <= 0:
                break
        tasks = [
            SweepTask(
                index=i,
                experiment="fuzz",
                seed=root_seed,
                n_updates=n_ops,
                scenario=inject,
            )
            for i in range(index, index + batch_size)
        ]
        sweep = run_sweep(
            tasks, shards=shards, grid="fuzz", root_seed=root_seed
        )
        report.cases_run += len(sweep.results)
        report.events_processed += sweep.events_processed
        index += batch_size
        for payload in sweep.results:
            if not payload["ok"]:
                report.violating = payload
                break
        now = time.perf_counter()  # repro-lint: disable=wall-clock (campaign budget)
        elapsed = now - start
        if report.violating is not None or now - last_emit >= 2.0:
            last_emit = now
            emit(
                f"fuzz: {report.cases_run} cases, {elapsed:.1f}s,"
                f" {'violation found' if report.violating else 'clean'}"
            )
        if report.violating is not None:
            break
        if budget_s is not None and elapsed >= budget_s:
            break
        if max_cases is not None and index >= max_cases:
            break

    if report.violating is not None and do_shrink:
        payload = report.violating
        case = FuzzCase.from_dict(payload["case"])
        target = [tuple(pair) for pair in payload["fingerprint"]]
        emit(f"shrinking case #{payload['task']['index']} …")
        report.shrink = shrink_case(
            case, fingerprint=target, max_runs=shrink_max_runs
        )
        emit("  " + report.shrink.render())
        if artifact_dir is not None:
            report.artifact_path = write_artifact(
                artifact_dir,
                root_seed,
                payload["task"]["index"],
                payload["case"],
                report.shrink,
            )
            reproduced, replay_text = replay_artifact(report.artifact_path)
            report.replay_ok = reproduced
            emit(replay_text)

    report.elapsed_s = time.perf_counter() - start  # repro-lint: disable=wall-clock (campaign budget)
    return report
