"""End-state oracles: what must be true of a *finished* fuzz run.

The runtime sanitizer audits every event as it happens; these oracles
judge the quiescent end state with independent arithmetic, so a bug in
the incremental bookkeeping cannot hide a bug in the protocol (or vice
versa). Three oracles, each reported as structured
:class:`~repro.analysis.invariants.Violation` findings under an
``oracle.*`` rule:

* **convergence** — the system's own quiescent invariant check: byte
  identical replicas that equal the ground-truth ledger.
* **conservation at settle** — recomputed from the *live* AV tables and
  lease registries (not the sanitizer's running sums): per item,
  ``Σ tables + outstanding leases`` must equal the headroom account
  exactly when the robustness layer is on (nothing may be in flight or
  held at settle); without it, conservative in-transit loss is legal
  and only the ``<=`` bound holds.
* **sequential spec** — an in-process single-site reference executor:
  starting from the catalogue's initial stock, apply every committed
  delta exactly once. Final replicas and the metrics ledger must both
  match (commutativity makes order irrelevant, so one pass suffices).
* **overload rest state** — when the overload layer is attached, every
  controller must have settled back at NORMAL with nothing demoted,
  admission must never have let inflight exceed its budget, and every
  shed the controllers count must have surfaced as an observable
  ``SHED`` result (a silently dropped request is a lost update).
"""

from __future__ import annotations

from typing import List

from repro.analysis.invariants import Violation
from repro.core.types import UpdateOutcome

EPS = 1e-6


# ----------------------------------------------------------------- #
# convergence
# ----------------------------------------------------------------- #

def convergence_findings(system) -> List[Violation]:
    """Replica convergence + ledger agreement at quiescence."""
    from repro.cluster.system import InvariantViolation

    try:
        system.check_invariants(quiescent=True)
    except InvariantViolation as exc:
        return [Violation(
            rule="oracle.convergence",
            time=float(system.env.now),
            detail=str(exc),
        )]
    return []


# ----------------------------------------------------------------- #
# conservation at settle
# ----------------------------------------------------------------- #

def conservation_findings(system, strict: bool) -> List[Violation]:
    """Exact AV accounting, recomputed from live tables at settle."""
    sanitizer = system.sanitizer
    if sanitizer is None:
        raise ValueError("conservation oracle needs a sanitized system")
    conservation = sanitizer.conservation
    now = float(system.env.now)
    sites = [system.sites[name] for name in sorted(system.sites)]
    findings: List[Violation] = []

    items = sorted(set(conservation.headroom) | set(conservation.av_sum))
    for item in items:
        in_flight = conservation.in_flight.get(item, 0.0)
        if abs(in_flight) > EPS:
            findings.append(Violation(
                rule="oracle.settle", item=item, time=now,
                detail=f"{in_flight:g} AV still in transit at settle",
            ))
        held = conservation.holds_sum.get(item, 0.0)
        if abs(held) > EPS:
            findings.append(Violation(
                rule="oracle.settle", item=item, time=now,
                detail=f"{held:g} AV still held at settle",
            ))

        tables = sum(
            site.av_table.get(item)
            for site in sites
            if site.av_table.defined(item)
        )
        leased = sum(
            site.accelerator.leases.outstanding(item)
            for site in sites
            if site.accelerator.leases is not None
        )
        total = tables + leased
        bound = conservation.headroom.get(item, 0.0)
        if total > bound + EPS:
            findings.append(Violation(
                rule="oracle.conservation", item=item, time=now,
                detail=(
                    f"settled AV {total:g} exceeds headroom {bound:g}"
                    f" (tables {tables:g} + leased {leased:g})"
                ),
            ))
        elif strict and total < bound - EPS:
            findings.append(Violation(
                rule="oracle.av-leak", item=item, time=now,
                detail=(
                    f"settled AV {total:g} below headroom {bound:g}"
                    " with the robustness layer on — volume vanished"
                ),
            ))
    return findings


# ----------------------------------------------------------------- #
# sequential spec
# ----------------------------------------------------------------- #

def sequential_spec_findings(system, results) -> List[Violation]:
    """Reference executor: committed deltas applied once, in one pass."""
    now = float(system.env.now)
    expected = {
        product.item: float(product.initial_stock)
        for product in system.catalog
    }
    for result in results:
        if result.outcome is UpdateOutcome.COMMITTED:
            expected[result.request.item] += result.request.delta

    findings: List[Violation] = []
    ledger = system.collector.ledger
    for item in sorted(expected):
        want = expected[item]
        have = ledger.true_value(item)
        if abs(have - want) > EPS:
            findings.append(Violation(
                rule="oracle.spec", item=item, time=now,
                detail=(
                    f"ledger value {have:g} != reference execution {want:g}"
                ),
            ))
        # Only the item's replicas hold a value to compare (under a
        # topology the interest set; the whole cluster without one).
        for name in sorted(s.name for s in system.interested_sites(item)):
            got = system.sites[name].store.value(item)
            if abs(got - want) > EPS:
                findings.append(Violation(
                    rule="oracle.spec", item=item, site=name, time=now,
                    detail=(
                        f"replica value {got:g} != reference execution"
                        f" {want:g}"
                    ),
                ))
    return findings


# ----------------------------------------------------------------- #
# interest scope (multi-level pools)
# ----------------------------------------------------------------- #

def interest_scope_findings(system) -> List[Violation]:
    """Partial-replication hygiene over every level of the supply tree.

    No-op (empty list) without a topology. With one: every AV entry —
    leaf tables *and* aggregator pools — must name an item inside the
    holding site's interest set and carry a non-negative level, and
    every store record must stay inside the slice. A stray entry means
    some protocol path (grant, push, catalog reconcile, rejoin) leaked
    an item across an interest boundary.
    """
    topology = system.config.topology
    if topology is None:
        return []
    now = float(system.env.now)
    findings: List[Violation] = []
    for name in sorted(system.sites):
        site = system.sites[name]
        interest = set(topology.interest_of(name))
        for item, volume in sorted(site.av_table.items()):
            if item not in interest:
                findings.append(Violation(
                    rule="oracle.interest-scope", item=item, site=name,
                    time=now,
                    detail="AV entry outside the site's interest set",
                ))
            if volume < -EPS:
                findings.append(Violation(
                    rule="oracle.interest-scope", item=item, site=name,
                    time=now,
                    detail=f"negative pooled AV {volume:g}",
                ))
        for item in sorted(site.store.item_ids()):
            if item not in interest:
                findings.append(Violation(
                    rule="oracle.interest-scope", item=item, site=name,
                    time=now,
                    detail="store record outside the site's interest set",
                ))
    return findings


# ----------------------------------------------------------------- #
# overload rest state
# ----------------------------------------------------------------- #

def overload_findings(system) -> List[Violation]:
    """Degradation ring settled, sheds observable, budgets respected.

    No-op (empty list) when the overload layer is not attached.
    """
    from repro.core.overload import DegradationState

    controllers = [
        (name, system.sites[name].accelerator.overload)
        for name in sorted(system.sites)
    ]
    controllers = [(n, o) for n, o in controllers if o is not None]
    if not controllers:
        return []

    now = float(system.env.now)
    findings: List[Violation] = []
    total_shed = 0
    for name, ovl in controllers:
        total_shed += ovl.shed
        if ovl.state is not DegradationState.NORMAL:
            findings.append(Violation(
                rule="oracle.overload-state", site=name, time=now,
                detail=f"controller ended {ovl.state.value}, not normal",
            ))
        if ovl.demoted_items:
            findings.append(Violation(
                rule="oracle.overload-demoted", site=name, time=now,
                detail=(
                    "items never re-promoted:"
                    f" {sorted(ovl.demoted_items)}"
                ),
            ))
        if ovl.peak_inflight > ovl.params.inflight_budget:
            findings.append(Violation(
                rule="oracle.overload-admission", site=name, time=now,
                detail=(
                    f"peak inflight {ovl.peak_inflight} exceeded budget"
                    f" {ovl.params.inflight_budget}"
                ),
            ))

    shed_seen = sum(
        1 for r in system.collector.results
        if r.outcome is UpdateOutcome.SHED
    )
    if shed_seen != total_shed:
        findings.append(Violation(
            rule="oracle.overload-shed", time=now,
            detail=(
                f"controllers shed {total_shed} requests but only"
                f" {shed_seen} surfaced as SHED results"
            ),
        ))
    for r in system.collector.results:
        if r.outcome is UpdateOutcome.SHED and r.retry_after <= 0:
            findings.append(Violation(
                rule="oracle.overload-shed",
                item=r.request.item, time=now,
                detail="shed result carries no positive retry-after hint",
            ))
            break
    return findings


# ----------------------------------------------------------------- #
# combined
# ----------------------------------------------------------------- #

def end_state_findings(system, results, strict: bool) -> List[Violation]:
    """All the oracles over one quiesced system, in a stable order."""
    return (
        convergence_findings(system)
        + conservation_findings(system, strict=strict)
        + sequential_spec_findings(system, results)
        + interest_scope_findings(system)
        + overload_findings(system)
    )
