"""Schedule-space perturbation: seeded jitter behind the kernel hooks.

The simulator exposes two perturbation points (added for this testkit):

* :attr:`repro.net.network.Network.perturb` — called per message with
  the sampled latency, *before* the per-pair FIFO clamp. Jitter here
  reorders deliveries **across** site pairs while each directed pair
  stays FIFO — the ordering guarantee reliable sessions and lease
  probes rely on for definitive answers is preserved by construction.
* :attr:`repro.sim.engine.Environment.perturb` — called per scheduled
  event with ``delay > 0``. :class:`Perturbation` only jitters
  :class:`~repro.sim.events.Timeout` instances (timers: retransmit
  backoff, lease expiry, sync intervals, arrival spacing), leaving
  network-delivery events to the latency hook and zero-delay events
  (same-step ordering is a protocol correctness assumption) untouched.

Both streams are derived from one ``perturb_seed`` via SeedSequence
spawning, and draws happen in schedule order — so a perturbation vector
is exactly as deterministic as the simulation it perturbs.
"""

from __future__ import annotations

import numpy as np

from repro.sim.events import Timeout


class Perturbation:
    """Multiplicative jitter ``delay * (1 + amp * U[-1, 1])``.

    ``amp`` in ``[0, 1)`` keeps every perturbed delay strictly positive,
    so causal order (send before receive, timer set before fire) is
    never inverted — the fuzzer explores interleavings, not
    impossibilities.
    """

    def __init__(
        self,
        seed: int,
        latency_amp: float = 0.0,
        timer_amp: float = 0.0,
    ) -> None:
        if not 0.0 <= latency_amp < 1.0:
            raise ValueError(f"latency_amp {latency_amp} not in [0, 1)")
        if not 0.0 <= timer_amp < 1.0:
            raise ValueError(f"timer_amp {timer_amp} not in [0, 1)")
        self.seed = int(seed)
        self.latency_amp = float(latency_amp)
        self.timer_amp = float(timer_amp)
        # Perturbation streams deliberately live OUTSIDE the system's
        # RngRegistry: they are seeded by the fuzz case, not the system
        # seed, so the same system can be explored under many schedules.
        latency_seq, timer_seq = np.random.SeedSequence(self.seed).spawn(2)
        self._latency_rng = np.random.default_rng(latency_seq)  # repro-lint: disable=seeded-rng (case-seeded, external to the system under test)
        self._timer_rng = np.random.default_rng(timer_seq)  # repro-lint: disable=seeded-rng (case-seeded, external to the system under test)

    # ------------------------------------------------------------- #
    # hook adapters
    # ------------------------------------------------------------- #

    def latency(self, msg, delay: float) -> float:
        """``Network.perturb`` adapter: jitter one message's latency."""
        if self.latency_amp <= 0.0 or delay <= 0.0:
            return delay
        swing = 2.0 * float(self._latency_rng.random()) - 1.0
        return delay * (1.0 + self.latency_amp * swing)

    def timer(self, event, priority: int, delay: float) -> float:
        """``Environment.perturb`` adapter: jitter one timer's delay."""
        if self.timer_amp <= 0.0 or delay <= 0.0:
            return delay
        if not isinstance(event, Timeout):
            return delay
        swing = 2.0 * float(self._timer_rng.random()) - 1.0
        return delay * (1.0 + self.timer_amp * swing)

    def install(self, system) -> "Perturbation":
        """Attach both adapters to a built system; returns self."""
        system.network.perturb = self.latency
        system.env.perturb = self.timer
        return self

    def __repr__(self) -> str:
        return (
            f"<Perturbation seed={self.seed}"
            f" latency±{self.latency_amp:g} timer±{self.timer_amp:g}>"
        )
