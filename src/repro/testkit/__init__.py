"""Deterministic schedule-space fuzzer with invariant oracles.

The testkit turns the repository's deterministic simulator into a
FoundationDB-style test harness. A :class:`~repro.testkit.schedule.FuzzCase`
is a *complete, replayable description* of one run: the workload ops,
the fault schedule, and a perturbation vector (latency jitter, timer
jitter, perturbation seed) that explores the schedule space around the
unperturbed execution. Every case is a pure function of
``(root_seed, index)``, so any run — clean or violating — replays
bit-identically from its JSON form.

Pipeline (``python -m repro fuzz``):

1. :func:`~repro.testkit.schedule.make_case` derives a case from the
   campaign root seed and case index (workload + fault + perturbation
   mutations all drawn from one seeded stream).
2. :func:`~repro.testkit.runner.run_case` executes it under the full
   runtime :class:`~repro.analysis.sanitizer.ProtocolSanitizer` plus the
   end-state oracles in :mod:`repro.testkit.oracles` (replica
   convergence, exact AV conservation at settle, sequential-spec
   equivalence against an in-process reference executor).
3. On a violation, :func:`~repro.testkit.shrink.shrink_case`
   delta-debugs the op trace, fault schedule and perturbation vector
   down to a minimal case with the same violation fingerprint, and
   :mod:`repro.testkit.fuzzer` writes a JSON repro artifact that
   replays byte-identically via ``python -m repro fuzz --replay``.

Campaign batches ride the sharded sweep runner (:mod:`repro.perf`), so
fuzz throughput scales over worker processes without giving up the
merged-result determinism the perf suite already guarantees.
"""

from repro.testkit.fuzzer import FuzzReport, replay_artifact, run_fuzz
from repro.testkit.oracles import end_state_findings
from repro.testkit.perturb import Perturbation
from repro.testkit.runner import CaseOutcome, run_case
from repro.testkit.schedule import FuzzCase, make_case
from repro.testkit.shrink import ShrinkResult, shrink_case

__all__ = [
    "CaseOutcome",
    "FuzzCase",
    "FuzzReport",
    "Perturbation",
    "ShrinkResult",
    "end_state_findings",
    "make_case",
    "replay_artifact",
    "run_case",
    "run_fuzz",
    "shrink_case",
]
