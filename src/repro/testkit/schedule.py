"""Fuzz cases: complete, replayable schedule descriptions.

A :class:`FuzzCase` freezes everything a run depends on — system seed,
workload ops, fault schedule, perturbation vector and topology shape —
as plain data. Frozen-tuple fields make cases hashable (the shrinker
memoises on them) and ``to_dict``/``from_dict`` round-trip through
canonical JSON, which is what makes repro artifacts replayable
byte-for-byte on any host.

:func:`make_case` is the generator: a pure function of
``(root_seed, index)`` that mutates the paper's §4 workload (demand
spikes, retargeted ops, duplicate bursts), draws fault motifs
(crash/recover, partition/heal, loss windows, link cuts) and picks a
perturbation vector. All randomness comes from one
:class:`numpy.random.Generator` seeded by SeedSequence, so the same
coordinates always produce the same case on every platform.
"""

from __future__ import annotations

import zlib
from dataclasses import asdict, dataclass, replace
from typing import Dict, Tuple

import numpy as np

from repro.net.faults import FaultSchedule
from repro.perf.grids import derive_seed

#: artifact/case format tag (bump on incompatible field changes)
CASE_FORMAT = "repro-fuzz-case/1"


def _freeze(value):
    """Lists (JSON) -> tuples (hashable case fields), recursively."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value):
    """Tuples -> lists, recursively (for JSON serialisation)."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class FuzzCase:
    """One fully-determined fuzz run.

    Attributes
    ----------
    seed:
        Root seed for every RNG stream inside the simulated system.
    ops:
        Workload as ``(site, item, delta)`` triples, interleaved in
        issue order (split per site by the runner).
    faults:
        Fault schedule as :meth:`FaultSchedule.to_specs` triples
        ``(time, action, args)``.
    latency_amp, timer_amp, perturb_seed:
        The perturbation vector (see :class:`repro.testkit.perturb.Perturbation`);
        amplitudes are relative jitter in ``[0, 1)``.
    n_items, n_retailers, initial_stock:
        Topology/catalogue shape.
    interarrival, horizon, settle, sync_interval:
        Run-shape timings (same three-phase shape as the chaos harness).
    reliability:
        Run with the robustness layer on (the default; without it,
        conservative in-transit loss is legal and the conservation
        oracle only checks the ``<=`` bound).
    inject:
        TEST-ONLY planted-bug name (see ``SystemConfig.inject``).
    overload:
        Surge case: the overload layer is attached (tight budgets), the
        runner issues arrivals open-loop, and the end-state oracles
        additionally demand the degradation ring settled back at NORMAL
        with every shed observably rejected.
    topology:
        Scale-out case: a :func:`repro.cluster.topology.Topology.parse`
        spec (e.g. ``"regional:2x3:s2"``). Empty string = the flat
        paper layout (``n_retailers`` applies). When set, every op is
        retargeted inside its item's interest set and the fault
        vocabulary includes aggregator crash motifs.
    kernel:
        AV/store kernel for the run: ``""`` = the process default
        (columnar), ``"object"`` = the dict-of-objects reference
        kernel. ~30% of generated cases pin the reference kernel, so a
        campaign is also a continuous columnar-vs-object differential
        test (the oracles never look at the kernel).
    """

    seed: int
    ops: Tuple[Tuple[str, str, float], ...]
    faults: Tuple[tuple, ...] = ()
    latency_amp: float = 0.0
    timer_amp: float = 0.0
    perturb_seed: int = 0
    n_items: int = 4
    n_retailers: int = 2
    initial_stock: float = 100.0
    interarrival: float = 3.0
    horizon: float = 240.0
    settle: float = 160.0
    sync_interval: float = 25.0
    reliability: bool = True
    inject: str = ""
    overload: bool = False
    topology: str = ""
    #: AV/store kernel override: "" = process default (columnar),
    #: "object" pins the dict-of-objects reference kernel — drawn for
    #: ~30% of cases so every campaign differentially exercises both
    #: cores (see repro.core.columns)
    kernel: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.latency_amp < 1.0:
            raise ValueError(f"latency_amp {self.latency_amp} not in [0, 1)")
        if not 0.0 <= self.timer_amp < 1.0:
            raise ValueError(f"timer_amp {self.timer_amp} not in [0, 1)")

    # ------------------------------------------------------------- #
    # serialisation
    # ------------------------------------------------------------- #

    def to_dict(self) -> Dict:
        data = asdict(self)
        data["ops"] = _thaw(self.ops)
        data["faults"] = _thaw(self.faults)
        data["format"] = CASE_FORMAT
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "FuzzCase":
        data = dict(data)
        fmt = data.pop("format", CASE_FORMAT)
        if fmt != CASE_FORMAT:
            raise ValueError(f"unsupported case format {fmt!r}")
        data["ops"] = _freeze(data.get("ops", []))
        data["faults"] = _freeze(data.get("faults", []))
        return cls(**data)

    # ------------------------------------------------------------- #
    # derived views
    # ------------------------------------------------------------- #

    @property
    def site_names(self) -> list:
        if self.topology:
            from repro.cluster.topology import Topology

            return list(Topology.parse(self.topology, self.item_names).names)
        return [f"site{i}" for i in range(self.n_retailers + 1)]

    @property
    def item_names(self) -> list:
        width = len(str(self.n_items - 1))
        return [f"item{i:0{width}d}" for i in range(self.n_items)]

    def fault_schedule(self) -> FaultSchedule:
        return FaultSchedule.from_specs(_thaw(self.faults))

    def with_(self, **changes) -> "FuzzCase":
        """A copy with fields replaced (shrinker convenience)."""
        return replace(self, **changes)


# ----------------------------------------------------------------- #
# generation
# ----------------------------------------------------------------- #

def _mutation_rng(root_seed: int, index: int) -> np.random.Generator:
    seq = np.random.SeedSequence(
        [int(root_seed), zlib.crc32(b"fuzz.mutate"), int(index)]
    )
    # Mutation decisions are campaign-level (root seed + index), made
    # before any system exists — no RngRegistry to derive from.
    return np.random.default_rng(seq)  # repro-lint: disable=seeded-rng (campaign-coordinate stream, no system registry yet)


def _mutate_ops(trace, sites, retailers, mut) -> Tuple[Tuple[str, str, float], ...]:
    """Perturb the paper workload into an adversarial op stream."""
    ops = []
    for event in trace:
        site, item, delta = event.site, event.item, float(event.delta)
        roll = float(mut.random())
        if roll < 0.12:
            # Demand spike: scaled decrements exhaust local AV and force
            # cross-site transfers even in very short (shrunk) traces.
            delta *= float(mut.integers(2, 6))
        elif roll < 0.18 and delta < 0 and len(retailers) > 1:
            # Retarget a decrement to a different retailer (sign stays
            # site-appropriate: only the maker mints).
            site = retailers[int(mut.integers(0, len(retailers)))]
        ops.append((site, item, delta))
        if float(mut.random()) < 0.06:
            # Duplicate burst: same op twice back-to-back.
            ops.append((site, item, delta))
    return tuple(ops)


def _surge_ops(ops, retailers, mut) -> Tuple[Tuple[str, str, float], ...]:
    """Splice a flash-sale burst into the op stream (surge cases).

    A run of consecutive unit decrements against one hot item from one
    site — issued open-loop by the runner, so the burst arrives at the
    interarrival rate regardless of completion and it is the system's
    admission control, not the driver, that has to bound concurrency.
    """
    items = sorted({item for _site, item, _delta in ops})
    hot = items[int(mut.integers(0, len(items)))]
    site = retailers[int(mut.integers(0, len(retailers)))]
    burst = int(mut.integers(30, 81))
    pos = int(mut.integers(0, len(ops) + 1))
    burst_ops = tuple((site, hot, -1.0) for _ in range(burst))
    return ops[:pos] + burst_ops + ops[pos:]


def _draw_faults(sites, horizon, mut) -> FaultSchedule:
    """0-2 fault motifs with randomized victims, windows and rates."""
    schedule = FaultSchedule()
    for _ in range(int(mut.integers(0, 3))):
        kind = ("crash", "partition", "drop", "link")[int(mut.integers(0, 4))]
        start = round(float(mut.uniform(20.0, horizon * 0.6)), 3)
        duration = round(float(mut.uniform(20.0, 100.0)), 3)
        if kind == "crash":
            victim = sites[int(mut.integers(0, len(sites)))]
            schedule.crash(start, victim).recover(start + duration, victim)
        elif kind == "partition":
            cut = int(mut.integers(1, len(sites)))
            schedule.partition(start, sites[:cut], sites[cut:])
            schedule.heal(start + duration)
        elif kind == "drop":
            rate = round(float(mut.uniform(0.02, 0.2)), 3)
            schedule.drop(start, rate).drop(start + duration, 0.0)
        else:
            peer = sites[1 + int(mut.integers(0, len(sites) - 1))]
            schedule.link_down(start, sites[0], peer)
            schedule.link_up(start + duration, sites[0], peer)
    return schedule


def _draw_topology(n_items: int, mut) -> str:
    """A random small region tree (the topology mutation vocabulary)."""
    if float(mut.random()) < 0.35:
        regions = int(mut.integers(1, 3))
        subs = int(mut.integers(1, 3))
        leaves = int(mut.integers(1, 3))
        spread = int(mut.integers(1, 3))
        return f"deep:{regions}x{subs}x{leaves}:s{spread}"
    regions = int(mut.integers(1, 4))
    leaves = int(mut.integers(1, 4))
    spread = int(mut.integers(1, 3))
    return f"regional:{regions}x{leaves}:s{spread}"


def _retarget_into_interest(ops, topology, mut):
    """Interest-set churn: re-home every op inside its item's replicas.

    Ops were drawn against the flat paper layout; under a topology a
    site may only update items it replicates, so each decrement is
    retargeted to a random *leaf* in the item's interest set (the
    maker's mints already land in every set). The churn — consecutive
    decrements of one item hopping between its leaves — is exactly what
    stresses pool grants, owed-balance routing, and belief staleness.
    """
    retargeted = []
    for site, item, delta in ops:
        if site != topology.maker:
            leaves = [
                s
                for s in topology.sites_for(item)
                if topology.role_of(s) == "retailer"
            ]
            site = leaves[int(mut.integers(0, len(leaves)))]
        retargeted.append((site, item, delta))
    return tuple(retargeted)


def _draw_topology_faults(topology, horizon, mut) -> FaultSchedule:
    """Fault motifs over a region tree, biased toward aggregators.

    An aggregator mid-crash is the scale-out-specific hazard: leaves
    below it lose their pool and must fall back to the believed-richest
    strategy, and its own pooled AV must survive the restart.
    """
    schedule = FaultSchedule()
    names = list(topology.names)
    aggregators = [n for n in names if topology.role_of(n) == "aggregator"]
    for _ in range(int(mut.integers(0, 3))):
        start = round(float(mut.uniform(20.0, horizon * 0.6)), 3)
        duration = round(float(mut.uniform(20.0, 100.0)), 3)
        roll = float(mut.random())
        if aggregators and roll < 0.5:
            victim = aggregators[int(mut.integers(0, len(aggregators)))]
            schedule.crash(start, victim).recover(start + duration, victim)
        elif roll < 0.75:
            victim = names[int(mut.integers(0, len(names)))]
            schedule.crash(start, victim).recover(start + duration, victim)
        else:
            rate = round(float(mut.uniform(0.02, 0.15)), 3)
            schedule.drop(start, rate).drop(start + duration, 0.0)
    return schedule


def make_case(
    root_seed: int,
    index: int,
    n_ops: int = 36,
    inject: str = "",
) -> FuzzCase:
    """Derive fuzz case ``index`` of the campaign rooted at ``root_seed``.

    Pure: the same coordinates always yield the same case, which is what
    lets the sharded campaign regenerate a case anywhere and what makes
    ``--replay`` meaningful.
    """
    from repro.experiments.fig6 import make_paper_trace

    mut = _mutation_rng(root_seed, index)
    seed = derive_seed(root_seed, "fuzz.case", index)
    perturb_seed = derive_seed(root_seed, "fuzz.perturb", index)

    n_retailers = int(mut.integers(2, 4))
    n_items = int(mut.integers(3, 7))
    sites = [f"site{i}" for i in range(n_retailers + 1)]
    retailers = sites[1:]

    trace = make_paper_trace(
        n_ops, seed, n_items=n_items, n_retailers=n_retailers
    )
    ops = _mutate_ops(trace, sites, retailers, mut)

    horizon = 240.0
    faults = _draw_faults(sites, horizon, mut)
    latency_amp = float(mut.choice([0.0, 0.3, 0.6, 0.9]))
    timer_amp = float(mut.choice([0.0, 0.2, 0.5]))
    interarrival = round(float(mut.uniform(2.0, 5.0)), 3)
    sync_interval = float(mut.choice([15.0, 25.0, 40.0]))

    # The surge roll consumes the stream last among the original draws,
    # so pre-existing campaign coordinates keep producing byte-identical
    # cases; the topology draws below extend the stream strictly after.
    overload = bool(mut.random() < 0.2)
    if overload:
        # Demotion (make_regular) is not fault-tolerant by design; in a
        # surge case the workload is the adversary, the network stays
        # healthy. Arrivals are dense — a flash sale, not a drizzle —
        # so the open-loop burst actually outpaces completion.
        faults = FaultSchedule()
        ops = _surge_ops(ops, retailers, mut)
        interarrival = round(float(mut.uniform(0.2, 1.0)), 3)

    # Scale-out cases: re-lay the cluster as a random region tree,
    # re-home ops inside interest sets, and redraw faults with the
    # aggregator-crash motif. Skipped for surge cases (the overload
    # oracles assume the flat layout's believed-richest flow).
    topology = ""
    if not overload and float(mut.random()) < 0.30:
        from repro.cluster.topology import Topology

        topology = _draw_topology(n_items, mut)
        width = len(str(n_items - 1))
        items = [f"item{i:0{width}d}" for i in range(n_items)]
        topo = Topology.parse(topology, items)
        ops = _retarget_into_interest(ops, topo, mut)
        faults = _draw_topology_faults(topo, horizon, mut)

    # Kernel draw: ~30% of cases pin the dict-of-objects reference
    # kernel so every campaign runs both cores against the same
    # schedules (a continuous differential test — the oracles are
    # kernel-blind). Drawn strictly after the topology block so
    # pre-existing campaign coordinates keep their ops/faults/topology
    # byte-identical; only this trailing draw is new.
    kernel = "object" if float(mut.random()) < 0.30 else ""

    return FuzzCase(
        seed=seed,
        ops=ops,
        faults=_freeze(faults.to_specs()),
        latency_amp=latency_amp,
        timer_amp=timer_amp,
        perturb_seed=perturb_seed,
        n_items=n_items,
        n_retailers=n_retailers,
        interarrival=interarrival,
        horizon=horizon,
        settle=160.0,
        sync_interval=sync_interval,
        inject=inject,
        overload=overload,
        topology=topology,
        kernel=kernel,
    )
