"""Execute one fuzz case to quiescence and judge the end state.

The run shape is the chaos harness's three phases — drive the workload
through the fault window, heal the world, settle/drain/sync to a
fixpoint — with the case's perturbation vector installed in the kernel
hooks before the first event fires. The outcome bundles the sanitizer
report, the end-state oracle findings, and the determinism surface
(update tags, replicas, counters) whose canonical digest is what
``--replay`` compares byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.analysis.invariants import Violation
from repro.cluster import DistributedSystem, paper_config
from repro.core.overload import OverloadParams
from repro.core.sync import SyncScheduler
from repro.net.reliable import ReliabilityParams
from repro.perf.tasks import canonical_json, digest
from repro.testkit.oracles import end_state_findings
from repro.testkit.perturb import Perturbation
from repro.testkit.schedule import FuzzCase
from repro.workload.driver import run_open, split_by_site
from repro.workload.generators import WorkloadEvent

#: sanitizer warnings that count as findings when the robustness layer
#: is on (same set the chaos harness fails on)
LOSS_RULES = ("av.grant-lost", "av.push-lost", "net.in-flight", "lease.unresolved")

#: overload layer attached to surge cases — budgets tight enough that
#: an open-loop burst actually exercises admission and the state ring
SURGE_PARAMS = OverloadParams(
    inflight_budget=4,
    backlog_budget=24,
    lock_wait_budget=4,
    recover_hold=10.0,
)


@dataclass
class CaseOutcome:
    """Everything one executed case produced."""

    case: FuzzCase
    #: sanitizer violations + oracle findings (+ loss warnings when the
    #: robustness layer is on) — any entry means the case failed
    findings: List[Violation]
    #: tolerated sanitizer warnings not promoted to findings
    warnings: int
    counters: Dict[str, int] = field(default_factory=dict)
    update_tags: List[str] = field(default_factory=list)
    replicas: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def fingerprint(self) -> List[tuple]:
        """Sorted unique ``(rule, item)`` pairs over all findings.

        Conservation fires on *every* failing check and its details
        carry times and amounts, so raw findings are neither
        deduplicated nor stable under shrinking — this projection is
        both, which is what makes it a valid shrink-preservation and
        replay-identity target.
        """
        return sorted({(v.rule, v.item or "") for v in self.findings})

    @property
    def rules(self) -> List[str]:
        """Sorted unique finding rules — the *bug class* signature.

        This is the shrink-preservation target: a minimal case must
        exhibit the same kinds of violation, but may do so on fewer
        items than the original (shrinking away ops naturally narrows
        the blast radius without changing what went wrong).
        """
        return sorted({v.rule for v in self.findings})

    def canonical(self) -> str:
        """Canonical JSON of the full determinism surface."""
        return canonical_json({
            "case": self.case.to_dict(),
            "fingerprint": [list(pair) for pair in self.fingerprint],
            "findings": [
                [v.rule, v.item, v.site, v.time, v.detail]
                for v in self.findings
            ],
            "warnings": self.warnings,
            "update_tags": self.update_tags,
            "replicas": self.replicas,
            "counters": self.counters,
        })

    def digest(self) -> str:
        return digest(self.canonical())

    def payload(self) -> Dict[str, Any]:
        """Sweep-task fingerprint: picklable, canonically serialisable."""
        return {
            "ok": self.ok,
            "fingerprint": [list(pair) for pair in self.fingerprint],
            "digest": self.digest(),
            "findings": [v.render() for v in self.findings],
            "update_tags": self.update_tags,
            "replicas": self.replicas,
            "counters": self.counters,
            "case": self.case.to_dict(),
        }

    def render(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"fuzz case: {status}"
            f" ({len(self.case.ops)} ops, {len(self.case.faults)} faults,"
            f" latency±{self.case.latency_amp:g}"
            f" timer±{self.case.timer_amp:g},"
            f" {len(self.findings)} findings)",
        ]
        lines += ["  " + v.render() for v in self.findings]
        return "\n".join(lines)


def _validate(case: FuzzCase, config) -> None:
    sites = set(config.site_names)
    for site, item, _delta in case.ops:
        if site not in sites:
            raise ValueError(f"op references unknown site {site!r}")


def run_case(case: FuzzCase) -> CaseOutcome:
    """Run one case end to end; pure function of the case."""
    topology = None
    if case.topology:
        from repro.cluster.topology import Topology

        topology = Topology.parse(case.topology, case.item_names)
    config = paper_config(
        n_items=case.n_items,
        n_retailers=case.n_retailers,
        initial_stock=case.initial_stock,
        seed=case.seed,
        request_timeout=8.0,
        observe=True,
        sanitize=True,
        reliability=ReliabilityParams() if case.reliability else None,
        inject=case.inject,
        overload=SURGE_PARAMS if case.overload else None,
        topology=topology,
        kernel=case.kernel or None,
    )
    _validate(case, config)
    system = DistributedSystem.build(config)
    Perturbation(
        case.perturb_seed, case.latency_amp, case.timer_amp
    ).install(system)

    events = [WorkloadEvent(site, item, delta) for site, item, delta in case.ops]
    per_site = split_by_site(events)

    schedulers = [
        SyncScheduler(
            system.sites[name].accelerator, interval=case.sync_interval
        )
        for name in sorted(system.sites)
    ]
    for scheduler in schedulers:
        scheduler.start()

    faults = system.network.faults

    def on_recover(name: str) -> None:
        # The shrinker may orphan a recover step from its crash —
        # restarting a site that never went down must be a no-op.
        if faults.is_crashed(name):
            system.sites[name].restart()

    case.fault_schedule().install(system.env, faults, on_recover=on_recover)

    # Phase 1: drive the workload through the fault window. Surge cases
    # issue open-loop: bounding concurrency is the system's job.
    results = run_open(
        system, per_site, interarrival=case.interarrival, until=case.horizon,
        open_loop=case.overload,
    )

    # Phase 2: heal the world — convergence is only promised for fault
    # windows that end.
    faults.heal()
    faults.clear_link_faults()
    faults.set_drop_probability(0.0)
    for name in sorted(system.sites):
        if faults.is_crashed(name):
            system.sites[name].restart()

    # Phase 3: settle, drain, and flush sync backlogs to a fixpoint.
    system.run(until=system.env.now + case.settle)
    for scheduler in schedulers:
        scheduler.stop()
    system.run()

    def drain_sync() -> None:
        while True:
            for name in sorted(system.sites):
                system.sites[name].accelerator.sync_all()
            system.run()
            if not any(
                system.sites[name].accelerator.unsynced_items()
                for name in sorted(system.sites)
            ):
                break

    drain_sync()
    if config.overload is not None:
        # Settle the degradation ring at proven quiescence and run the
        # owed re-promotions before the oracles judge the end state.
        for name in sorted(system.sites):
            system.sites[name].accelerator.overload.finalize(system.env.now)
        system.run()
        drain_sync()

    report = system.sanitizer.finish()
    oracle_findings = end_state_findings(
        system, results, strict=case.reliability
    )
    findings = list(report.violations) + oracle_findings
    if case.reliability:
        findings += [w for w in report.warnings if w.rule in LOSS_RULES]

    counters = dict(report.counters)
    counters["events_processed"] = system.env.events_processed
    counters["updates_issued"] = len(events)
    counters["updates_completed"] = len(results)
    counters["oracle_findings"] = len(oracle_findings)

    item_ids = sorted(system.collector.ledger.items())
    # With partial replication a site's store holds only its interest
    # slice; the fingerprint records exactly what each site replicates
    # (the flat path keeps the original all-sites × all-items shape).
    replicas = {
        name: {
            item: system.sites[name].store.value(item)
            for item in item_ids
            if system.sites[name].accelerator.serves_item(item)
        }
        for name in sorted(system.sites)
    }
    from repro.perf.tasks import _update_tags

    return CaseOutcome(
        case=case,
        findings=findings,
        warnings=len(report.warnings) - (
            len([w for w in report.warnings if w.rule in LOSS_RULES])
            if case.reliability else 0
        ),
        counters=counters,
        update_tags=_update_tags(results),
        replicas=replicas,
    )
