"""Counterexample shrinking: delta-debugging over the failing case.

Given a violating :class:`~repro.testkit.schedule.FuzzCase`, the
shrinker searches for the smallest case exhibiting the *same bug
class*: the sorted set of finding **rules** (``av.conservation``,
``oracle.convergence``, …). Rules are the right preservation target —
raw finding lists carry times and amounts that move as the schedule
shrinks, and the per-item fingerprint would force the minimal case to
keep one op per originally-affected item even though every item
exhibits the same bug. Three reduction passes, repeated to a fixpoint:

1. **ddmin over the fault schedule** (faults first: fewer faults means
   faster candidate runs for everything after),
2. **ddmin over the op trace**,
3. **scalar simplification** of the perturbation vector (zero the
   latency/timer amplitudes, zero the perturbation seed) — each change
   kept only if the fingerprint survives.

Every candidate execution is memoised on the (hashable, frozen) case,
and the whole search is bounded by ``max_runs`` — on exhaustion the
best case found so far is returned, which is still a valid repro.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.testkit.runner import run_case
from repro.testkit.schedule import FuzzCase, _freeze


@dataclass
class ShrinkResult:
    """A minimised counterexample plus search statistics."""

    case: FuzzCase
    #: the preserved bug class (sorted unique finding rules)
    rules: List[str]
    runs: int
    ops_before: int
    ops_after: int
    faults_before: int
    faults_after: int

    def render(self) -> str:
        return (
            f"shrunk {self.ops_before} -> {self.ops_after} ops,"
            f" {self.faults_before} -> {self.faults_after} faults"
            f" in {self.runs} runs; preserved rules {self.rules}"
        )


def _ddmin(items: list, rebuild: Callable, failing: Callable) -> list:
    """Classic ddmin: greedily drop complement chunks while still failing."""
    if items and failing(rebuild([])):
        return []
    n = 2
    while len(items) >= 2:
        size = max(1, (len(items) + n - 1) // n)
        chunks = [items[i:i + size] for i in range(0, len(items), size)]
        reduced = False
        for drop_index in range(len(chunks)):
            candidate = [
                element
                for index, chunk in enumerate(chunks)
                if index != drop_index
                for element in chunk
            ]
            if candidate != items and failing(rebuild(candidate)):
                items = candidate
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), 2 * n)
    return items


def shrink_case(
    case: FuzzCase,
    fingerprint: Optional[List[tuple]] = None,
    max_runs: int = 400,
    run: Callable = run_case,
) -> ShrinkResult:
    """Minimise ``case`` while preserving its bug class.

    ``fingerprint`` is the ``(rule, item)`` fingerprint the campaign
    observed; it is projected onto its rule set, which is what every
    candidate must reproduce exactly. Omitted, the unshrunk case is run
    once to obtain it.
    """
    if fingerprint is None:
        outcome = run(case)
        fingerprint = outcome.fingerprint
        if not fingerprint:
            raise ValueError("cannot shrink a passing case")
    target = sorted({pair[0] for pair in fingerprint})

    cache = {}
    budget = [max_runs]

    def failing(candidate: FuzzCase) -> bool:
        hit = cache.get(candidate)
        if hit is not None:
            return hit
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        preserved = run(candidate).rules == target
        cache[candidate] = preserved
        return preserved

    ops_before = len(case.ops)
    faults_before = len(case.faults)
    current = case

    while True:
        previous = current

        faults = _ddmin(
            list(current.faults),
            lambda specs: current.with_(faults=_freeze(specs)),
            failing,
        )
        current = current.with_(faults=_freeze(faults))

        ops = _ddmin(
            list(current.ops),
            lambda selected: current.with_(ops=tuple(selected)),
            failing,
        )
        current = current.with_(ops=tuple(ops))

        for simplified in (
            current.with_(latency_amp=0.0),
            current.with_(timer_amp=0.0),
            current.with_(perturb_seed=0),
        ):
            if simplified != current and failing(simplified):
                current = simplified

        if current == previous or budget[0] <= 0:
            break

    return ShrinkResult(
        case=current,
        rules=target,
        runs=max_runs - budget[0],
        ops_before=ops_before,
        ops_after=len(current.ops),
        faults_before=faults_before,
        faults_after=len(current.faults),
    )
