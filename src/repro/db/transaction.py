"""Transactions with compensation-based rollback.

A :class:`Transaction` groups deltas against one site's store. Abort
applies the *opposite* deltas in reverse order (paper §3.3: "the recovery
of operation can be done by updating with opposite of update volume").
Because compensation commutes with concurrent deltas on the same numeric
records, Delay Updates need no long-held exclusive locks — the property
the paper leans on to keep AV usable by concurrent transactions.
"""

from __future__ import annotations

import enum
from itertools import count
from typing import Callable, Optional

from repro.db.errors import TransactionClosed
from repro.db.storage import Store
from repro.db.wal import WriteAheadLog


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of work against a :class:`~repro.db.storage.Store`.

    Not created directly — use :meth:`TransactionManager.begin` or the
    manager's context-manager helper :meth:`TransactionManager.atomic`.
    """

    def __init__(
        self,
        txn_id: int,
        store: Store,
        wal: WriteAheadLog,
        clock: Callable[[], float],
        on_finish: Optional[Callable[["Transaction"], None]] = None,
    ) -> None:
        self.txn_id = txn_id
        self.store = store
        self.wal = wal
        self._clock = clock
        self._on_finish = on_finish
        self.state = TxnState.ACTIVE
        #: (item, delta) pairs applied so far, in order
        self.deltas: list[tuple[str, float]] = []
        wal.log_begin(txn_id)

    def _check_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionClosed(
                f"txn {self.txn_id} is {self.state.value}, not active"
            )

    def apply(self, item: str, delta: float, force: bool = False) -> float:
        """Apply a delta through the transaction; returns the new value.

        See :meth:`repro.db.storage.Store.apply_delta` for ``force``.
        """
        self._check_active()
        # WAL first (write-ahead), then the store mutation.
        self.wal.log_delta(self.txn_id, item, delta)
        value = self.store.apply_delta(item, delta, now=self._clock(), force=force)
        self.deltas.append((item, delta))
        return value

    def read(self, item: str) -> float:
        self._check_active()
        return self.store.value(item)

    def commit(self) -> None:
        self._check_active()
        self.wal.log_commit(self.txn_id)
        self.state = TxnState.COMMITTED
        if self._on_finish is not None:
            self._on_finish(self)

    def abort(self) -> None:
        """Compensate every applied delta, newest first."""
        self._check_active()
        for item, delta in reversed(self.deltas):
            self.wal.log_delta(self.txn_id, item, -delta)
            # Compensation must always succeed: it restores committed
            # state, so the negativity guard does not apply.
            self.store.apply_delta(item, -delta, now=self._clock(), force=True)
        self.wal.log_abort(self.txn_id)
        self.state = TxnState.ABORTED
        if self._on_finish is not None:
            self._on_finish(self)

    def __repr__(self) -> str:
        return f"<Transaction {self.txn_id} {self.state.value} deltas={len(self.deltas)}>"


class TransactionManager:
    """Creates transactions for one site."""

    def __init__(
        self,
        store: Store,
        wal: Optional[WriteAheadLog] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.store = store
        self.wal = wal if wal is not None else WriteAheadLog(f"{store.name}.wal")
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._ids = count(1)
        self.begun = 0
        self.committed = 0
        self.aborted = 0

    def begin(self) -> Transaction:
        self.begun += 1
        return Transaction(
            next(self._ids), self.store, self.wal, self._clock, self._finished
        )

    def atomic(self) -> "_Atomic":
        """``with tm.atomic() as txn:`` — commits on success, aborts on error."""
        return _Atomic(self)

    def apply_atomic(self, item: str, delta: float, force: bool = False) -> float:
        """One-delta transaction, fused: begin + apply + commit.

        The Delay apply hot path runs thousands of single-delta
        transactions per task; this skips the Transaction/_Atomic
        object churn while leaving every observable surface identical
        to ``with self.atomic() as txn: txn.apply(item, delta, force)``
        — same txn id consumed, same three WAL records and lsns, same
        begun/committed counters, same store mutation with the same
        clock read. A store error propagates after BEGIN/DELTA/COMMIT
        are logged; the caller treats it exactly as the unfused abort
        path would have left the store (no delta was applied).
        """
        self.begun += 1
        txn_id = next(self._ids)
        self.wal.log_atomic(txn_id, item, delta)
        value = self.store.apply_delta(
            item, delta, now=self._clock(), force=force
        )
        self.committed += 1
        return value

    def _finished(self, txn: Transaction) -> None:
        if txn.state is TxnState.COMMITTED:
            self.committed += 1
        elif txn.state is TxnState.ABORTED:
            self.aborted += 1

    def __repr__(self) -> str:
        return (
            f"<TransactionManager store={self.store.name!r}"
            f" begun={self.begun} committed={self.committed} aborted={self.aborted}>"
        )


class _Atomic:
    """Context manager wrapping begin/commit/abort."""

    def __init__(self, manager: TransactionManager) -> None:
        self.manager = manager
        self.txn: Optional[Transaction] = None

    def __enter__(self) -> Transaction:
        self.txn = self.manager.begin()
        return self.txn

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self.txn is not None
        if self.txn.state is TxnState.ACTIVE:
            if exc_type is None:
                self.txn.commit()
            else:
                self.txn.abort()
        return False  # propagate exceptions
