"""Point-in-time snapshots and store comparison utilities.

Used by the bootstrap (initial delivery of all data from the base site,
paper §3.2), by fault-injection tests (capture → crash → recover →
compare), and by the convergence checks in the integration suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.db.storage import Store


@dataclass(frozen=True)
class Snapshot:
    """Immutable capture of a store's values (not versions)."""

    name: str
    taken_at: float
    values: Dict[str, float]

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, item: str) -> float:
        return self.values[item]

    def __contains__(self, item: str) -> bool:
        return item in self.values


def take_snapshot(store: Store, now: float = 0.0) -> Snapshot:
    """Capture current values of ``store``."""
    return Snapshot(name=store.name, taken_at=now, values=store.as_dict())


def restore_snapshot(store: Store, snapshot: Snapshot, now: float = 0.0) -> None:
    """Overwrite ``store`` values from ``snapshot``; item sets must match."""
    store_items = set(store.item_ids())
    snap_items = set(snapshot.values)
    if store_items != snap_items:
        missing = snap_items - store_items
        extra = store_items - snap_items
        raise ValueError(
            f"item mismatch restoring {snapshot.name!r} into {store.name!r}:"
            f" missing={sorted(missing)} extra={sorted(extra)}"
        )
    for item, value in snapshot.values.items():
        store.set_value(item, value, now=now)


def diff_stores(a: Store, b: Store) -> Dict[str, tuple[float, float]]:
    """Items whose values differ between two stores: ``{item: (a, b)}``.

    Items present in only one store appear with ``float('nan')`` on the
    missing side.
    """
    nan = float("nan")
    out: Dict[str, tuple[float, float]] = {}
    items = set(a.item_ids()) | set(b.item_ids())
    for item in sorted(items):
        va = a.value(item) if item in a else nan
        vb = b.value(item) if item in b else nan
        if not (va == vb):  # NaN-safe inequality
            out[item] = (va, vb)
    return out


def stores_equal(a: Store, b: Store) -> bool:
    """``True`` when both stores hold identical item/value sets."""
    return not diff_stores(a, b)
