"""Lock manager: per-item shared/exclusive locks with FIFO queuing.

The Immediate Update protocol (primary-copy scheme, paper §3.3) locks the
item at every site before applying. Lock waits integrate with the
simulation kernel: :meth:`LockManager.acquire` returns an event that
succeeds when the lock is granted, so protocol processes simply ``yield``
it.

Fairness: requests queue FIFO; a grant wave admits the longest-waiting
request plus any immediately following compatible ones (no starvation, no
barging).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.db.errors import LockError, LockUpgradeError
from repro.sim.engine import Environment
from repro.sim.events import Event


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass(slots=True)
class _Waiter:
    owner: str
    mode: LockMode
    event: Event


class _ItemLock:
    """Lock state for a single item."""

    __slots__ = ("holders", "queue")

    def __init__(self) -> None:
        #: current holders: owner -> mode
        self.holders: Dict[str, LockMode] = {}
        self.queue: Deque[_Waiter] = deque()  # repro-lint: disable=unbounded-queue (wait depth is capped at admission — OverloadController.lock_wait_budget sheds before enqueue)

    def mode(self) -> Optional[LockMode]:
        if not self.holders:
            return None
        if any(m is LockMode.EXCLUSIVE for m in self.holders.values()):
            return LockMode.EXCLUSIVE
        return LockMode.SHARED


class LockManager:
    """Per-item S/X locks for one site's store."""

    def __init__(self, env: Environment, name: str = "locks") -> None:
        self.env = env
        self.name = name
        self._locks: Dict[str, _ItemLock] = {}
        #: grants performed (diagnostic)
        self.grants = 0
        #: maximum simultaneous waiters observed (diagnostic)
        self.max_queue = 0
        #: optional duck-typed observer with a
        #: ``lock_event(manager, op, item, owner, mode, span_id, holders,
        #: queue)`` method; the runtime sanitizer installs one to rebuild
        #: wait-for edges. ``None`` keeps every op at one extra check.
        self.monitor = None

    def _notify(
        self,
        op: str,
        item: str,
        owner: str,
        mode: Optional[LockMode],
        span_id: Optional[int],
        lock: _ItemLock,
    ) -> None:
        self.monitor.lock_event(
            self,
            op,
            item,
            owner,
            mode,
            span_id,
            dict(lock.holders),
            [(w.owner, w.mode) for w in lock.queue],
        )

    def _lock(self, item: str) -> _ItemLock:
        lock = self._locks.get(item)
        if lock is None:
            lock = _ItemLock()
            self._locks[item] = lock
        return lock

    # ---------------------------------------------------------------- #
    # public API
    # ---------------------------------------------------------------- #

    def acquire(
        self,
        item: str,
        owner: str,
        mode: LockMode = LockMode.EXCLUSIVE,
        span_id: Optional[int] = None,
    ) -> Event:
        """Request a lock; the returned event succeeds on grant.

        Re-acquiring a mode already held is granted immediately.
        A shared→exclusive upgrade succeeds only if ``owner`` is the sole
        holder; otherwise :class:`LockUpgradeError` is raised (the caller
        must release and re-acquire — keeps the manager deadlock-free for
        our protocols). ``span_id`` ties the request to the requesting
        update's span for wait-for diagnostics.
        """
        lock = self._lock(item)
        event = Event(self.env)
        held = lock.holders.get(owner)

        if held is not None:
            if held is mode or held is LockMode.EXCLUSIVE:
                # Reentrant or downgrade-as-noop: grant immediately.
                self.grants += 1
                if self.monitor is not None:
                    self._notify("grant", item, owner, mode, span_id, lock)
                return event.succeed((item, mode))
            # Upgrade S -> X.
            if len(lock.holders) == 1:
                lock.holders[owner] = LockMode.EXCLUSIVE
                self.grants += 1
                if self.monitor is not None:
                    self._notify("grant", item, owner, mode, span_id, lock)
                return event.succeed((item, mode))
            raise LockUpgradeError(
                f"{owner!r} cannot upgrade {item!r}: {len(lock.holders) - 1} other holder(s)"
            )

        if not lock.queue and self._grantable(lock, mode):
            lock.holders[owner] = mode
            self.grants += 1
            if self.monitor is not None:
                self._notify("grant", item, owner, mode, span_id, lock)
            return event.succeed((item, mode))

        lock.queue.append(_Waiter(owner, mode, event))
        self.max_queue = max(self.max_queue, len(lock.queue))
        if self.monitor is not None:
            self._notify("wait", item, owner, mode, span_id, lock)
        return event

    def release(self, item: str, owner: str) -> None:
        """Drop ``owner``'s lock on ``item`` and run the grant wave."""
        lock = self._locks.get(item)
        if lock is None or owner not in lock.holders:
            raise LockError(f"{owner!r} does not hold a lock on {item!r}")
        del lock.holders[owner]
        self._grant_wave(item, lock)
        if self.monitor is not None:
            self._notify("release", item, owner, None, None, lock)
        if not lock.holders and not lock.queue:
            del self._locks[item]

    def holders(self, item: str) -> Dict[str, LockMode]:
        lock = self._locks.get(item)
        return dict(lock.holders) if lock else {}

    def waiting(self, item: str) -> int:
        lock = self._locks.get(item)
        return len(lock.queue) if lock else 0

    def total_waiting(self) -> int:
        """Waiters queued across all items (lock-wait depth sampling)."""
        return sum(len(lock.queue) for lock in self._locks.values())

    def is_locked(self, item: str) -> bool:
        lock = self._locks.get(item)
        return bool(lock and lock.holders)

    # ---------------------------------------------------------------- #
    # internals
    # ---------------------------------------------------------------- #

    @staticmethod
    def _grantable(lock: _ItemLock, mode: LockMode) -> bool:
        current = lock.mode()
        if current is None:
            return True
        return current.compatible(mode) and mode.compatible(current)

    def _grant_wave(self, item: str, lock: _ItemLock) -> None:
        """Admit the queue head and following compatible requests."""
        while lock.queue and self._grantable(lock, lock.queue[0].mode):
            waiter = lock.queue.popleft()
            lock.holders[waiter.owner] = waiter.mode
            self.grants += 1
            if self.monitor is not None:
                self._notify("grant", item, waiter.owner, waiter.mode, None, lock)
            waiter.event.succeed((item, waiter.mode))
            if waiter.mode is LockMode.EXCLUSIVE:
                break

    def __repr__(self) -> str:
        locked = sum(1 for l in self._locks.values() if l.holders)
        return f"<LockManager {self.name!r} locked={locked} grants={self.grants}>"
