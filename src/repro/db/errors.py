"""Exceptions raised by the local database engine."""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for database-engine errors."""


class UnknownItem(DatabaseError, KeyError):
    """An operation referenced an item id not present in the store."""

    def __init__(self, item: str) -> None:
        super().__init__(f"unknown item {item!r}")
        self.item = item


class DuplicateItem(DatabaseError):
    """Inserting an item id that already exists."""


class NegativeValue(DatabaseError):
    """An update would take a stock value below zero."""

    def __init__(self, item: str, value: float, delta: float) -> None:
        super().__init__(
            f"delta {delta:+} on item {item!r} with value {value} would go negative"
        )
        self.item = item
        self.value = value
        self.delta = delta


class TransactionError(DatabaseError):
    """Base class for transaction lifecycle errors."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back."""


class TransactionClosed(TransactionError):
    """An operation was attempted on a committed/aborted transaction."""


class LockError(DatabaseError):
    """Base class for lock-manager errors."""


class LockUpgradeError(LockError):
    """A shared→exclusive upgrade was requested while other holders exist."""
