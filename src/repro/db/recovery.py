"""Crash recovery by compensation.

After a (simulated) crash, the WAL may contain transactions with a BEGIN
record but no COMMIT/ABORT. :func:`recover` compensates their applied
deltas — the same opposite-delta rule a live abort uses — restoring the
store to a state containing only committed work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.storage import Store
from repro.db.wal import WalOp, WriteAheadLog


@dataclass
class RecoveryReport:
    """Outcome of a recovery pass."""

    recovered_txns: list[int] = field(default_factory=list)
    compensations_applied: int = 0

    @property
    def clean(self) -> bool:
        """``True`` if nothing needed compensating."""
        return not self.recovered_txns


def recover(
    store: Store,
    wal: WriteAheadLog,
    now: float = 0.0,
    exclude: frozenset = frozenset(),
) -> RecoveryReport:
    """Undo all in-flight transactions recorded in ``wal``.

    Deltas of each in-flight transaction are compensated newest-first
    (across transactions too — a single backward sweep of the log), then an
    ABORT record is written for each so a second recovery pass is a no-op.

    ``exclude`` lists transaction ids that must *not* be compensated:
    in-doubt 2PC participants whose outcome the termination protocol
    will learn from their coordinator instead.
    """
    report = RecoveryReport()
    in_flight = wal.in_flight() - set(exclude)
    if not in_flight:
        return report

    for entry in reversed(list(wal)):
        if entry.op is WalOp.DELTA and entry.txn_id in in_flight:
            assert entry.item is not None
            store.apply_delta(entry.item, -entry.delta, now=now, force=True)
            report.compensations_applied += 1

    for txn_id in sorted(in_flight):
        wal.log_abort(txn_id)
        report.recovered_txns.append(txn_id)
    return report
