"""Per-site transactional store: records, locks, WAL, transactions, recovery."""

from repro.db.errors import (
    DatabaseError,
    DuplicateItem,
    LockError,
    LockUpgradeError,
    NegativeValue,
    TransactionAborted,
    TransactionClosed,
    TransactionError,
    UnknownItem,
)
from repro.db.locks import LockManager, LockMode
from repro.db.record import Record
from repro.db.recovery import RecoveryReport, recover
from repro.db.snapshot import (
    Snapshot,
    diff_stores,
    restore_snapshot,
    stores_equal,
    take_snapshot,
)
from repro.db.storage import Store
from repro.db.transaction import Transaction, TransactionManager, TxnState
from repro.db.wal import WalEntry, WalOp, WriteAheadLog

__all__ = [
    "DatabaseError",
    "DuplicateItem",
    "LockError",
    "LockManager",
    "LockMode",
    "LockUpgradeError",
    "NegativeValue",
    "Record",
    "RecoveryReport",
    "Snapshot",
    "Store",
    "Transaction",
    "TransactionAborted",
    "TransactionClosed",
    "TransactionError",
    "TransactionManager",
    "TxnState",
    "UnknownItem",
    "WalEntry",
    "WalOp",
    "WriteAheadLog",
    "diff_stores",
    "recover",
    "restore_snapshot",
    "stores_equal",
    "take_snapshot",
]
