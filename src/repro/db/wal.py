"""Write-ahead log with compensation entries.

The paper rolls back a Delay Update "by updating with [the] opposite of
[the] update volume" — i.e. *compensation*, not before-image restore. The
WAL therefore records deltas. Each transaction writes BEGIN, one entry per
delta, then COMMIT or ABORT; recovery compensates any transaction without
a terminal record.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional


class WalOp(enum.Enum):
    BEGIN = "begin"
    DELTA = "delta"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True, slots=True)
class WalEntry:
    """One log record.

    ``lsn`` (log sequence number) is assigned by the log; ``item`` and
    ``delta`` are only meaningful for :attr:`WalOp.DELTA` entries.
    """

    lsn: int
    op: WalOp
    txn_id: int
    item: Optional[str] = None
    delta: float = 0.0

    def __str__(self) -> str:
        core = f"#{self.lsn} {self.op.value} txn={self.txn_id}"
        if self.op is WalOp.DELTA:
            core += f" {self.item}{self.delta:+}"
        return core


class WriteAheadLog:
    """Append-only in-memory log for one site."""

    def __init__(self, name: str = "wal") -> None:
        self.name = name
        self._entries: list[WalEntry] = []
        self._next_lsn = 1

    def _append(self, op: WalOp, txn_id: int, item: Optional[str] = None, delta: float = 0.0) -> WalEntry:
        entry = WalEntry(self._next_lsn, op, txn_id, item, delta)
        self._next_lsn += 1
        self._entries.append(entry)
        return entry

    def log_begin(self, txn_id: int) -> WalEntry:
        return self._append(WalOp.BEGIN, txn_id)

    def log_delta(self, txn_id: int, item: str, delta: float) -> WalEntry:
        return self._append(WalOp.DELTA, txn_id, item, delta)

    def log_commit(self, txn_id: int) -> WalEntry:
        return self._append(WalOp.COMMIT, txn_id)

    def log_abort(self, txn_id: int) -> WalEntry:
        return self._append(WalOp.ABORT, txn_id)

    def log_atomic(self, txn_id: int, item: str, delta: float) -> WalEntry:
        """Append BEGIN, DELTA, COMMIT for a one-delta transaction.

        The fused form of the Delay apply hot path: identical records
        and lsns to the three separate calls, one method dispatch.
        Returns the DELTA entry.
        """
        lsn = self._next_lsn
        self._next_lsn = lsn + 3
        entry = WalEntry(lsn + 1, WalOp.DELTA, txn_id, item, delta)
        self._entries += (
            WalEntry(lsn, WalOp.BEGIN, txn_id),
            entry,
            WalEntry(lsn + 2, WalOp.COMMIT, txn_id),
        )
        return entry

    # ---------------------------------------------------------------- #
    # reading
    # ---------------------------------------------------------------- #

    def __iter__(self) -> Iterator[WalEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def entries_for(self, txn_id: int) -> list[WalEntry]:
        return [e for e in self._entries if e.txn_id == txn_id]

    def in_flight(self) -> set[int]:
        """Transaction ids with a BEGIN but no COMMIT/ABORT record."""
        open_txns: set[int] = set()
        for entry in self._entries:
            if entry.op is WalOp.BEGIN:
                open_txns.add(entry.txn_id)
            elif entry.op in (WalOp.COMMIT, WalOp.ABORT):
                open_txns.discard(entry.txn_id)
        return open_txns

    def truncate(self) -> int:
        """Drop records of finished transactions; returns entries removed.

        Keeps every record belonging to an in-flight transaction (they are
        still needed for recovery), preserving order.
        """
        alive = self.in_flight()
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.txn_id in alive]
        return before - len(self._entries)

    def __repr__(self) -> str:
        return f"<WriteAheadLog {self.name!r} entries={len(self._entries)}>"
