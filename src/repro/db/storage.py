"""In-memory record store — one per site.

A thin, well-checked dictionary of :class:`~repro.db.record.Record`. All
protocol layers mutate values exclusively through :meth:`apply_delta` /
:meth:`set_value` so versioning and non-negativity stay enforced in one
place.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.db.errors import DuplicateItem, NegativeValue, UnknownItem
from repro.db.record import Record


class Store:
    """Per-site table of numeric records.

    Parameters
    ----------
    name:
        Identifier used in error messages and traces (usually the site name).
    allow_negative:
        When ``False`` (default) a delta that would take a value below zero
        raises :class:`NegativeValue`. Delay updates are AV-gated and should
        never trip this; tripping it indicates a protocol bug.
    """

    def __init__(self, name: str = "store", allow_negative: bool = False) -> None:
        self.name = name
        self.allow_negative = allow_negative
        self._records: Dict[str, Record] = {}
        #: mutation counter across all records (diagnostic)
        self.mutations = 0

    # ---------------------------------------------------------------- #
    # schema
    # ---------------------------------------------------------------- #

    def insert(self, item: str, value: float, now: float = 0.0) -> Record:
        """Create a new record; the id must be fresh."""
        if item in self._records:
            raise DuplicateItem(f"item {item!r} already in store {self.name!r}")
        if not self.allow_negative and value < 0:
            raise NegativeValue(item, 0, value)
        rec = Record(item, value, version=0, updated_at=now)
        self._records[item] = rec
        return rec

    def drop(self, item: str) -> None:
        if item not in self._records:
            raise UnknownItem(item)
        del self._records[item]

    # ---------------------------------------------------------------- #
    # access
    # ---------------------------------------------------------------- #

    def record(self, item: str) -> Record:
        try:
            return self._records[item]
        except KeyError:
            raise UnknownItem(item) from None

    def value(self, item: str) -> float:
        return self.record(item).value

    def __contains__(self, item: str) -> bool:
        return item in self._records

    def __len__(self) -> int:
        return len(self._records)

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate ``(item, value)`` pairs in insertion order."""
        return ((k, r.value) for k, r in self._records.items())

    def item_ids(self) -> Iterable[str]:
        return self._records.keys()

    # ---------------------------------------------------------------- #
    # mutation
    # ---------------------------------------------------------------- #

    def apply_delta(
        self, item: str, delta: float, now: float = 0.0, force: bool = False
    ) -> float:
        """Add ``delta`` to a record; returns the new value.

        ``force=True`` bypasses the non-negativity check. Replication of
        Delay Updates needs this: a replica may transiently dip below zero
        when decrements arrive before the mints that funded them — the AV
        mechanism guarantees the *global* value stays nonnegative, not
        each replica's partial view.
        """
        rec = self.record(item)
        if not force and not self.allow_negative and rec.value + delta < 0:
            raise NegativeValue(item, rec.value, delta)
        self.mutations += 1
        return rec.apply(delta, now)

    def set_value(self, item: str, value: float, now: float = 0.0) -> None:
        """Overwrite a record's value (replication/bootstrap path)."""
        rec = self.record(item)
        if not self.allow_negative and value < 0:
            raise NegativeValue(item, rec.value, value - rec.value)
        self.mutations += 1
        rec.set(value, now)

    # ---------------------------------------------------------------- #
    # bulk views
    # ---------------------------------------------------------------- #

    def as_dict(self) -> Dict[str, float]:
        """Plain ``{item: value}`` snapshot of current values."""
        return {k: r.value for k, r in self._records.items()}

    def total(self) -> float:
        """Sum of all values (conservation checks)."""
        return sum(r.value for r in self._records.values())

    def __repr__(self) -> str:
        return f"<Store {self.name!r} items={len(self._records)} mutations={self.mutations}>"
