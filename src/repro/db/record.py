"""Record: one versioned numeric datum.

The paper's database is a table of ``(product, stock amount)`` rows fully
replicated at every site. Every mutation bumps the version, which the
propagation and recovery machinery use to reason about staleness.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class Record:
    """A mutable stock record.

    Attributes
    ----------
    item:
        Item (product) identifier.
    value:
        Current numeric amount.
    version:
        Monotonic per-record mutation counter.
    updated_at:
        Simulation time of the last mutation.
    """

    item: str
    value: float
    version: int = 0
    updated_at: float = 0.0

    def apply(self, delta: float, now: float = 0.0) -> float:
        """Add ``delta`` to the value; returns the new value."""
        self.value += delta
        self.version += 1
        self.updated_at = now
        return self.value

    def set(self, value: float, now: float = 0.0) -> None:
        """Overwrite the value (used by bootstrap and replication)."""
        self.value = value
        self.version += 1
        self.updated_at = now

    def copy(self) -> "Record":
        return Record(self.item, self.value, self.version, self.updated_at)

    def __str__(self) -> str:
        return f"{self.item}={self.value} (v{self.version})"
