"""Deterministic subsystem profiler: where does the wall time go?

The ROADMAP's scale-out items need *attribution*, not just totals —
"fig6 runs at ~15k events/sec" says nothing about whether the engine,
the network, the AV machinery or the lock manager is the bottleneck.
This module answers that with two complementary signals:

* **Host wall-time per subsystem** — :class:`Profiler` hooks the
  kernel's event dispatch (:attr:`Environment.profile_dispatch`) and
  times every callback batch, attributing the cost to the subsystem
  that owns the resumed code. Classification is structural: a resumed
  :class:`~repro.sim.process.Process` is attributed by its generator's
  code object (``repro.core.delay_update`` → ``av``), a plain callback
  by its function's module. Code-object lookups are cached, so the
  per-event cost is two clock reads and two dict hits.
* **Sim-time per span kind** — rollups over the
  :class:`~repro.obs.spans.SpanRecorder` tree: count, cumulative and
  *self* sim-time (cumulative minus children) per kind, mapped to
  subsystems through :data:`SPAN_SUBSYSTEMS`.

The profiler is purely observational: it never schedules, never draws
randomness, and never mutates events, so a profiled run is bit-identical
to an unprofiled one (asserted by ``tests/test_profile.py`` and the CI
``profile-smoke`` job).

:data:`SPAN_SUBSYSTEMS` is also the *registry* of legal span kinds: the
``span-kind-registry`` lint rule rejects any ``recorder.start("kind",
…)`` in ``src/`` whose kind is not declared here, so new instrumentation
cannot silently fall outside the attribution map.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.spans import Span
from repro.sim.engine import Environment

#: span kind -> subsystem. THE single declaration point for span kinds;
#: extend this map when adding instrumentation (enforced by the
#: ``span-kind-registry`` lint rule).
SPAN_SUBSYSTEMS: Dict[str, str] = {
    # the update root + delay-update (AV) chain
    "update": "av",
    "read": "av",
    "av.checking": "av",
    "av.selecting": "av",
    "av.request": "av",
    "av.grant": "av",
    "av.deciding": "av",
    "av.push.apply": "av",
    "delay.apply": "av",
    # reclassification (regular <-> non-regular migration)
    "cls.regular": "av",
    "cls.nonregular": "av",
    "cls.lock": "locks",
    "cls.apply": "av",
    # AV rebalancing daemon
    "rebal.pass": "av",
    # immediate update: 2PC + lock manager
    "imm.lock": "locks",
    "imm.prepare": "locks",
    "imm.commit": "locks",
    "imm.abort": "locks",
    "imm.apply": "locks",
    # replica synchronisation (lazy sync + eager propagation)
    "sync.pass": "sync",
    "sync.push": "sync",
    "prop.push": "sync",
    "prop.apply": "sync",
}

#: module-path prefix (below ``repro/``) -> subsystem, first match wins.
#: Order matters: specific prefixes shadow their package.
MODULE_SUBSYSTEMS: Tuple[Tuple[str, str], ...] = (
    ("core/sync", "sync"),
    ("core/immediate_update", "locks"),
    ("db/", "locks"),
    ("core/", "av"),
    ("cluster/", "av"),
    ("net/", "net"),
    ("sim/", "engine"),
    ("analysis/", "sanitizer"),
    ("workload/", "workload"),
    ("experiments/", "workload"),
    ("testkit/", "workload"),
    ("metrics/", "workload"),
    ("baselines/", "baseline"),
    ("obs/", "engine"),
)

#: every subsystem the profiler can attribute to (report ordering)
SUBSYSTEMS: Tuple[str, ...] = (
    "engine", "net", "av", "locks", "sync", "sanitizer",
    "workload", "baseline", "other",
)


def subsystem_for_path(filename: str) -> str:
    """Map a source filename to its subsystem (``"other"`` if unknown)."""
    path = filename.replace("\\", "/")
    marker = "/repro/"
    pos = path.rfind(marker)
    if pos < 0:
        return "other"
    tail = path[pos + len(marker):]
    for prefix, subsystem in MODULE_SUBSYSTEMS:
        if tail.startswith(prefix):
            return subsystem
    return "other"


class Profiler:
    """Attributes kernel wall time and event counts to subsystems.

    Use as a context manager around any simulation-driving code::

        profiler = Profiler()
        with profiler:
            result = run_fig6(n_updates=200, observe=True)
        report = profiler.report(spans=result.obs.recorder)

    Activation installs the dispatch hook *class-wide* on
    :class:`~repro.sim.engine.Environment` — every environment built
    inside the ``with`` block is profiled, including baselines. Nested
    activation is rejected (one profiler owns the hook at a time).
    """

    def __init__(self) -> None:
        #: subsystem -> [event count, wall seconds]
        self._stats: Dict[str, list] = {}
        #: code object -> subsystem (memoised classification)
        self._code_cache: Dict[Any, str] = {}
        #: wall seconds spent inside Environment.run (the denominator
        #: for attribution coverage)
        self.run_wall = 0.0
        self._run_depth = 0
        #: subsystem of the event currently being stepped (set by the
        #: dispatch hook, consumed by the step timer)
        self._current = "engine"
        self._active = False
        self._saved_run = None
        self._saved_step = None

    # ---------------------------------------------------------------- #
    # activation
    # ---------------------------------------------------------------- #

    def __enter__(self) -> "Profiler":
        if Environment.profile_dispatch is not None:
            raise RuntimeError("another Profiler is already active")
        self._active = True
        Environment.profile_dispatch = self._dispatch
        self._saved_run = Environment.run
        self._saved_step = Environment.step
        profiler = self
        original_run = self._saved_run
        original_step = self._saved_step
        stats = self._stats

        def timed_run(env_self, until=None):
            # Depth guard: only the outermost call owns the window, so
            # re-entrant run() (not expected, but harmless) never
            # double-counts.
            profiler._run_depth += 1
            start = perf_counter()  # repro-lint: disable=wall-clock (profiler measures host time by design)
            try:
                return original_run(env_self, until)
            finally:
                profiler._run_depth -= 1
                if profiler._run_depth == 0:
                    profiler.run_wall += perf_counter() - start  # repro-lint: disable=wall-clock (profiler measures host time by design)

        def timed_step(env_self):
            # Times the WHOLE step — queue pop, bucket bookkeeping and
            # callback execution — and credits it to the subsystem the
            # dispatch hook classified, so queue operations count toward
            # the event that caused them. Only the run loop's
            # peek/compare overhead stays unattributed.
            profiler._current = "engine"
            start = perf_counter()  # repro-lint: disable=wall-clock (profiler measures host time by design)
            try:
                original_step(env_self)
            finally:
                elapsed = perf_counter() - start  # repro-lint: disable=wall-clock (profiler measures host time by design)
                stat = stats.get(profiler._current)
                if stat is None:
                    stat = stats[profiler._current] = [0, 0.0]
                stat[0] += 1
                stat[1] += elapsed

        Environment.run = timed_run
        Environment.step = timed_step
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        Environment.profile_dispatch = None
        if self._saved_run is not None:
            Environment.run = self._saved_run
            self._saved_run = None
        if self._saved_step is not None:
            Environment.step = self._saved_step
            self._saved_step = None
        self._active = False

    # ---------------------------------------------------------------- #
    # the hot path
    # ---------------------------------------------------------------- #

    def _dispatch(self, event, callbacks) -> None:
        """Execute an event's callbacks, classifying them on the way.

        Replaces the engine's inline callback loop (see
        ``Environment.step``); behaviour must be indistinguishable from
        it. Timing happens one level up in the step wrapper so queue
        operations are included in the attributed cost.
        """
        self._current = self._classify(event, callbacks)
        for callback in callbacks:
            callback(event)

    def _classify(self, event, callbacks) -> str:
        """Subsystem owning this event's work.

        A completed :class:`Process` is attributed to its own generator;
        otherwise the first classifiable callback wins — a bound
        ``Process._resume`` attributes to the resumed generator, a plain
        function or closure (e.g. the network's delivery lambda) to its
        defining module. Events nobody meaningful owns (bare condition
        plumbing) fall back to ``"engine"``.
        """
        generator = getattr(event, "_generator", None)
        if generator is not None:
            return self._code_subsystem(generator.gi_code)
        for callback in callbacks:
            owner = getattr(callback, "__self__", None)
            if owner is not None:
                generator = getattr(owner, "_generator", None)
                if generator is not None:
                    return self._code_subsystem(generator.gi_code)
                func = callback.__func__
            else:
                func = callback
            code = getattr(func, "__code__", None)
            if code is not None:
                return self._code_subsystem(code)
        return "engine"

    def _code_subsystem(self, code) -> str:
        try:
            return self._code_cache[code]
        except KeyError:
            subsystem = subsystem_for_path(code.co_filename)
            self._code_cache[code] = subsystem
            return subsystem

    # ---------------------------------------------------------------- #
    # results
    # ---------------------------------------------------------------- #

    @property
    def events_attributed(self) -> int:
        return sum(stat[0] for stat in self._stats.values())

    @property
    def attributed_wall(self) -> float:
        return sum(stat[1] for stat in self._stats.values())

    @property
    def coverage(self) -> float:
        """Attributed wall over run-loop wall (≈1; gap = queue ops)."""
        return self.attributed_wall / self.run_wall if self.run_wall else 0.0

    def subsystem_table(self) -> Dict[str, Dict[str, float]]:
        """Per-subsystem events / wall seconds / share of attributed wall."""
        total = self.attributed_wall
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._stats):
            events, wall = self._stats[name]
            out[name] = {
                "events": events,
                "wall_s": wall,
                "wall_pct": (100.0 * wall / total) if total else 0.0,
            }
        return out

    def event_counts(self) -> Dict[str, int]:
        """Deterministic part of the attribution: events per subsystem."""
        return {name: self._stats[name][0] for name in sorted(self._stats)}

    def report(
        self, spans: Optional[Iterable[Span]] = None
    ) -> Dict[str, Any]:
        """The full profile report dict (JSON-ready).

        ``wall`` quantities are host measurements and vary run to run;
        ``subsystems[*].events`` and the span rollups are pure
        simulation quantities and are identical for identical seeds.
        """
        rollup = span_rollups(spans) if spans is not None else {}
        subsystems = self.subsystem_table()
        sim_by_subsystem: Dict[str, float] = {}
        spans_by_subsystem: Dict[str, int] = {}
        for kind, row in rollup.items():
            subsystem = row["subsystem"]
            sim_by_subsystem[subsystem] = (
                sim_by_subsystem.get(subsystem, 0.0) + row["self_sim"]
            )
            spans_by_subsystem[subsystem] = (
                spans_by_subsystem.get(subsystem, 0) + row["count"]
            )
        for name, row in subsystems.items():
            row["sim_time"] = sim_by_subsystem.get(name, 0.0)
            row["spans"] = spans_by_subsystem.get(name, 0)
        hotspots = sorted(
            (
                {"name": kind, **row}
                for kind, row in rollup.items()
            ),
            key=lambda r: (-r["self_sim"], r["name"]),
        )
        return {
            "kind": "profile",
            "wall": {
                "run_s": self.run_wall,
                "attributed_s": self.attributed_wall,
                "coverage": self.coverage,
            },
            "events_attributed": self.events_attributed,
            "subsystems": subsystems,
            "span_rollups": rollup,
            "hotspots": hotspots,
        }


# -------------------------------------------------------------------- #
# span rollups & exports
# -------------------------------------------------------------------- #


def span_rollups(spans: Iterable[Span]) -> Dict[str, Dict[str, Any]]:
    """Per-kind rollup: count, cumulative and self sim-time, subsystem.

    *Self* time is a span's duration minus its children's durations
    (clamped at zero — overlapping async children can exceed the
    parent), so summing self time never double-counts a nested chain.
    """
    spans = list(spans)
    child_time: Dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0.0) + span.duration
            )
    rollup: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        row = rollup.get(span.name)
        if row is None:
            row = rollup[span.name] = {
                "subsystem": SPAN_SUBSYSTEMS.get(span.name, "other"),
                "count": 0,
                "cum_sim": 0.0,
                "self_sim": 0.0,
            }
        row["count"] += 1
        row["cum_sim"] += span.duration
        row["self_sim"] += max(
            0.0, span.duration - child_time.get(span.span_id, 0.0)
        )
    return dict(sorted(rollup.items()))


def collapsed_stacks(spans: Iterable[Span], scale: float = 1000.0) -> List[str]:
    """Flamegraph collapsed-stack lines (``a;b;c <value>``).

    Each finished span contributes its *self* sim-time (scaled to an
    integer) at the stack ``site;root;…;kind`` built from its parent
    chain. Feed the output to ``flamegraph.pl`` or speedscope's
    collapsed importer. Lines are sorted for determinism.
    """
    spans = list(spans)
    by_id: Dict[int, Span] = {s.span_id: s for s in spans}
    child_time: Dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0.0) + span.duration
            )
    weights: Dict[str, int] = {}
    for span in spans:
        self_time = max(
            0.0, span.duration - child_time.get(span.span_id, 0.0)
        )
        value = int(round(self_time * scale))
        if value <= 0:
            continue
        names: List[str] = [span.name]
        seen = {span.span_id}
        parent_id = span.parent_id
        while parent_id is not None and parent_id in by_id:
            if parent_id in seen:  # pragma: no cover - corrupt links guard
                break
            seen.add(parent_id)
            parent = by_id[parent_id]
            names.append(parent.name)
            parent_id = parent.parent_id
        stack = ";".join([span.site] + list(reversed(names)))
        weights[stack] = weights.get(stack, 0) + value
    return [f"{stack} {weight}" for stack, weight in sorted(weights.items())]


def write_collapsed_stacks(path: str, spans: Iterable[Span]) -> int:
    """Write flamegraph collapsed stacks; returns the line count."""
    lines = collapsed_stacks(spans)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def profiled_chrome_trace(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Chrome trace events enriched with subsystem categories.

    Same layout as :func:`repro.obs.export.chrome_trace_events` (sites
    as threads, spans as complete events) but ``cat`` carries the
    subsystem so Perfetto can filter/colour by attribution, and ``args``
    keeps the trace id for chain search.
    """
    from repro.obs.export import chrome_trace_events

    events = chrome_trace_events(spans)
    for event in events:
        if event.get("ph") != "X":
            continue
        subsystem = SPAN_SUBSYSTEMS.get(event["name"], "other")
        event["cat"] = subsystem
        event["args"]["subsystem"] = subsystem
    return events


def write_profiled_chrome_trace(path: str, spans: Iterable[Span]) -> dict:
    """Write the subsystem-enriched Chrome trace; returns the document."""
    import json

    from repro.obs.export import SIM_UNIT_US

    document = {
        "traceEvents": profiled_chrome_trace(spans),
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.profile",
            "sim_unit_us": SIM_UNIT_US,
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
    return document
