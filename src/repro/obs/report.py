"""Run dossiers: render profile reports and sweep telemetry.

``python -m repro report PATH`` points here. ``PATH`` may be:

* a profile report JSON (``repro profile ... --out profile.json``),
* a sweep canonical JSON (``repro sweep ... --out sweep.json``),
* a directory containing ``profile.json``.

Both kinds render as aligned text tables (the default) or as one
self-contained HTML file (``--html OUT``) with no external assets, so
the dossier can be archived next to the run artifacts and opened
anywhere.

Everything rendered here is a pure function of the input payload — the
dossier for a given run is byte-stable, like every other observability
artifact in this repo.
"""

from __future__ import annotations

import html as html_mod
import json
import os
from typing import Any, Dict, List

from repro.metrics.report import text_table
from repro.obs.snapshot import merge_telemetry, telemetry_rows

#: hotspots shown in the dossier tables
TOP_N = 10


def load_report(path: str) -> Dict[str, Any]:
    """Load a dossier payload from a file or run directory."""
    if os.path.isdir(path):
        candidate = os.path.join(path, "profile.json")
        if not os.path.isfile(candidate):
            raise FileNotFoundError(
                f"{path!r} is a directory without a profile.json"
            )
        path = candidate
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"{path!r} does not contain a JSON object")
    return payload


def report_kind(payload: Dict[str, Any]) -> str:
    """``"profile"`` or ``"sweep"`` — how to render this payload."""
    if payload.get("kind") == "profile":
        return "profile"
    if "results" in payload:
        return "sweep"
    raise ValueError(
        "unrecognised report payload: expected a profile report"
        " (kind='profile') or a sweep canonical JSON (with 'results')"
    )


def _fmt_site_value(value: Any) -> str:
    if isinstance(value, dict):
        return (
            f"sum={value['sum']:g} min={value['min']:g}"
            f" max={value['max']:g}"
        )
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _site_rows(sites: Dict[str, Any]) -> List[List[Any]]:
    rows = []
    for name in sorted(sites):
        for field in sorted(sites[name]):
            rows.append([name, field, _fmt_site_value(sites[name][field])])
    return rows


# ------------------------------------------------------------------ #
# profile dossier
# ------------------------------------------------------------------ #

def _profile_sections(report: Dict[str, Any]) -> List[tuple]:
    """``(title, headers, rows)`` sections shared by text and HTML."""
    wall = report.get("wall", {})
    head_rows = [
        ["experiment", report.get("experiment", "?")],
        ["updates", report.get("n_updates", "?")],
        ["seed", report.get("seed", "?")],
        ["kernel events", report.get("events_processed", "?")],
        ["run wall (s)", f"{wall.get('run_s', 0.0):.4f}"],
        ["attributed (s)", f"{wall.get('attributed_s', 0.0):.4f}"],
        ["coverage", f"{wall.get('coverage', 0.0):.1%}"],
        ["digest", report.get("digest", "?")],
    ]
    if "digest_match" in report:
        head_rows.append([
            "digest vs unprofiled",
            "IDENTICAL" if report["digest_match"] else "MISMATCH",
        ])

    sub_rows = [
        [
            name,
            row["events"],
            f"{row['wall_s']:.4f}",
            f"{row['wall_pct']:.1f}",
            f"{row.get('sim_time', 0.0):g}",
            row.get("spans", 0),
        ]
        for name, row in sorted(report.get("subsystems", {}).items())
    ]

    hot_rows = [
        [
            h["name"],
            h["subsystem"],
            h["count"],
            f"{h['self_sim']:g}",
            f"{h['cum_sim']:g}",
        ]
        for h in report.get("hotspots", [])[:TOP_N]
    ]

    return [
        ("Run", ["field", "value"], head_rows),
        (
            "Wall-time attribution by subsystem",
            ["subsystem", "events", "wall_s", "wall_%", "sim_time", "spans"],
            sub_rows,
        ),
        (
            f"Top {len(hot_rows)} hotspots (span self sim-time)",
            ["kind", "subsystem", "count", "self_sim", "cum_sim"],
            hot_rows,
        ),
        (
            "Per-site end state",
            ["site", "field", "value"],
            _site_rows(report.get("sites", {})),
        ),
    ]


def render_profile_text(report: Dict[str, Any]) -> str:
    blocks = [
        text_table(headers, rows, title=title)
        for title, headers, rows in _profile_sections(report)
        if rows
    ]
    return "\n\n".join(blocks)


# ------------------------------------------------------------------ #
# sweep dossier
# ------------------------------------------------------------------ #

def _sweep_sections(sweep: Dict[str, Any]) -> List[tuple]:
    results = sweep.get("results", [])
    merged = merge_telemetry(r.get("telemetry", {}) for r in results)
    head_rows = [
        ["grid", sweep.get("grid", "?")],
        ["root seed", sweep.get("root_seed", "?")],
        ["tasks", len(results)],
        ["kernel events", merged.get("events_processed", 0)],
    ]
    task_rows = []
    for result in results:
        task = result.get("task", {})
        telemetry = result.get("telemetry", {})
        task_rows.append([
            task.get("index", "?"),
            task.get("experiment", "?")
            + (f":{task['scenario']}" if task.get("scenario") else ""),
            task.get("seed", "?"),
            task.get("n_updates", "?"),
            telemetry.get("events_processed", ""),
        ])
    return [
        ("Sweep", ["field", "value"], head_rows),
        (
            "Tasks",
            ["task", "experiment", "seed", "updates", "events"],
            task_rows,
        ),
        (
            "Merged telemetry",
            ["metric", "kind", "value"],
            telemetry_rows(merged),
        ),
        (
            "Per-site aggregates",
            ["site", "field", "value"],
            _site_rows(merged.get("sites", {})),
        ),
    ]


def render_sweep_text(sweep: Dict[str, Any]) -> str:
    blocks = [
        text_table(headers, rows, title=title)
        for title, headers, rows in _sweep_sections(sweep)
        if rows
    ]
    return "\n\n".join(blocks)


# ------------------------------------------------------------------ #
# HTML (self-contained, no external assets)
# ------------------------------------------------------------------ #

_HTML_STYLE = """
body { font-family: monospace; margin: 2em; color: #222; }
h1 { font-size: 1.3em; }
h2 { font-size: 1.05em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.6em; text-align: left; }
th { background: #eee; }
td.num { text-align: right; }
"""


def _html_table(headers: List[str], rows: List[List[Any]]) -> str:
    parts = ["<table><tr>"]
    parts += [f"<th>{html_mod.escape(str(h))}</th>" for h in headers]
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        for cell in row:
            cls = ' class="num"' if isinstance(cell, (int, float)) else ""
            parts.append(f"<td{cls}>{html_mod.escape(str(cell))}</td>")
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def render_html(payload: Dict[str, Any]) -> str:
    """One self-contained HTML dossier for either payload kind."""
    kind = report_kind(payload)
    if kind == "profile":
        title = (
            f"Profile dossier — {payload.get('experiment', '?')}"
            f" (n={payload.get('n_updates', '?')},"
            f" seed={payload.get('seed', '?')})"
        )
        sections = _profile_sections(payload)
    else:
        title = (
            f"Sweep dossier — {payload.get('grid', '?')}"
            f" (root seed {payload.get('root_seed', '?')})"
        )
        sections = _sweep_sections(payload)
    body = [f"<h1>{html_mod.escape(title)}</h1>"]
    for section_title, headers, rows in sections:
        if not rows:
            continue
        body.append(f"<h2>{html_mod.escape(section_title)}</h2>")
        body.append(_html_table(headers, rows))
    return (
        "<!doctype html><html><head><meta charset=\"utf-8\">"
        f"<title>{html_mod.escape(title)}</title>"
        f"<style>{_HTML_STYLE}</style></head><body>"
        + "".join(body)
        + "</body></html>"
    )


def render_text(payload: Dict[str, Any]) -> str:
    """Text dossier for either payload kind."""
    if report_kind(payload) == "profile":
        return render_profile_text(payload)
    return render_sweep_text(payload)
