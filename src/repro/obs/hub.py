"""The observability hub handed through the stack.

One :class:`Observability` object per system bundles the span recorder,
the metric registry, and the time-series store, so constructors thread a
single handle instead of three. :data:`NULL_OBS` is the shared disabled
hub: its recorder is a :class:`~repro.obs.spans.NullSpanRecorder` and
its ``count``/``observe_value`` helpers return immediately, making the
default (unobserved) configuration near-zero-cost.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import MetricRegistry
from repro.obs.sampler import TimeSeriesStore
from repro.obs.spans import NullSpanRecorder, SpanRecorder


class Observability:
    """Span recorder + metric registry + time-series store for one run.

    Parameters
    ----------
    enabled:
        ``False`` installs the null recorder and turns the metric
        helpers into no-ops.
    max_spans:
        Optional span cap (see :class:`~repro.obs.spans.SpanRecorder`).
    """

    def __init__(self, enabled: bool = True, max_spans: Optional[int] = None) -> None:
        self.enabled = enabled
        self.recorder: SpanRecorder = (
            SpanRecorder(max_spans) if enabled else NullSpanRecorder()
        )
        self.registry = MetricRegistry()
        self.series = TimeSeriesStore()
        #: protocol-event subscribers, called as ``fn(kind, now, fields)``.
        #: Independent of ``enabled`` — the runtime sanitizer listens here
        #: even when span recording is off. Empty list ⇒ emit() is one
        #: truthiness check.
        self.event_subscribers: list = []

    def emit(self, kind: str, now: float, **fields) -> None:
        """Publish a semantic protocol event (AV mint/spend, selection, …).

        Spans capture *timing*; these events capture *accounting* facts
        the sanitizer folds into its invariants. With no subscribers the
        call costs a single attribute check.
        """
        if self.event_subscribers:
            for fn in self.event_subscribers:
                fn(kind, now, fields)

    # Convenience wrappers that keep call sites one-liners and free when
    # disabled (a single attribute check).

    def count(self, name: str, n: float = 1.0) -> None:
        """Increment counter ``name`` (no-op when disabled)."""
        if self.enabled:
            self.registry.counter(name).inc(n)

    def observe_value(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name`` (no-op when disabled)."""
        if self.enabled:
            self.registry.histogram(name).observe(value)

    def gauge_set(self, name: str, value: float, now: Optional[float] = None) -> None:
        """Set gauge ``name`` (no-op when disabled)."""
        if self.enabled:
            self.registry.gauge(name).set(value, now)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<Observability {state} spans={len(self.recorder)}"
            f" metrics={len(self.registry)}>"
        )


#: the shared disabled hub; never records, safe as a default argument
NULL_OBS = Observability(enabled=False)
