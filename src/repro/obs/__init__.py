"""Unified observability: causal spans, metrics, time series, exporters.

The paper's whole evaluation is about *where* communication happens —
which Delay updates stayed local, which triggered AV transfer chains
(checking → selecting → deciding → grant), how AV drains across sites
over time. This package makes that story first-class:

* :mod:`repro.obs.spans` — causal spans with trace/parent links, so a
  full AV-transfer chain is reconstructable from one trace id;
* :mod:`repro.obs.registry` — counters, gauges, and streaming
  histograms (percentiles without storing every sample);
* :mod:`repro.obs.sampler` — periodic time-series snapshots of per-site
  AV levels, belief staleness, lock-wait depth, and sync backlog;
* :mod:`repro.obs.export` — JSONL, Chrome trace-event JSON (openable in
  Perfetto / ``chrome://tracing``), and aligned text summaries;
* :mod:`repro.obs.profile` — subsystem profiler: wall-time/event
  attribution via the kernel dispatch hook, span-kind sim-time rollups,
  flamegraph collapsed stacks, subsystem-enriched Chrome traces;
* :mod:`repro.obs.snapshot` — mergeable telemetry snapshots the sharded
  sweep runner ships from workers and folds shard-invariantly;
* :mod:`repro.obs.report` — run dossiers (text + self-contained HTML)
  rendered from profile reports and sweep telemetry.

Instrumentation follows the :class:`~repro.sim.tracing.NullTracer`
pattern: a disabled :class:`Observability` hub routes every call to
no-op recorders, so hot paths pay only a method call when observability
is off (verified by ``benchmarks/bench_obs_overhead.py``).
"""

from repro.obs.export import (
    chrome_trace_events,
    jsonl_lines,
    render_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.hub import NULL_OBS, Observability
from repro.obs.profile import (
    SPAN_SUBSYSTEMS,
    Profiler,
    collapsed_stacks,
    span_rollups,
    write_collapsed_stacks,
    write_profiled_chrome_trace,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricRegistry,
    StreamingHistogram,
)
from repro.obs.report import load_report, render_html, render_text
from repro.obs.sampler import PeriodicSampler, TimeSeriesStore
from repro.obs.snapshot import TelemetrySnapshot, merge_telemetry
from repro.obs.spans import NULL_SPAN, NullSpanRecorder, Span, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "MetricRegistry",
    "NULL_OBS",
    "NULL_SPAN",
    "NullSpanRecorder",
    "Observability",
    "PeriodicSampler",
    "Profiler",
    "SPAN_SUBSYSTEMS",
    "Span",
    "SpanRecorder",
    "StreamingHistogram",
    "TelemetrySnapshot",
    "TimeSeriesStore",
    "chrome_trace_events",
    "collapsed_stacks",
    "jsonl_lines",
    "load_report",
    "merge_telemetry",
    "render_html",
    "render_summary",
    "render_text",
    "span_rollups",
    "write_chrome_trace",
    "write_collapsed_stacks",
    "write_jsonl",
    "write_profiled_chrome_trace",
]
