"""Unified observability: causal spans, metrics, time series, exporters.

The paper's whole evaluation is about *where* communication happens —
which Delay updates stayed local, which triggered AV transfer chains
(checking → selecting → deciding → grant), how AV drains across sites
over time. This package makes that story first-class:

* :mod:`repro.obs.spans` — causal spans with trace/parent links, so a
  full AV-transfer chain is reconstructable from one trace id;
* :mod:`repro.obs.registry` — counters, gauges, and streaming
  histograms (percentiles without storing every sample);
* :mod:`repro.obs.sampler` — periodic time-series snapshots of per-site
  AV levels, belief staleness, lock-wait depth, and sync backlog;
* :mod:`repro.obs.export` — JSONL, Chrome trace-event JSON (openable in
  Perfetto / ``chrome://tracing``), and aligned text summaries.

Instrumentation follows the :class:`~repro.sim.tracing.NullTracer`
pattern: a disabled :class:`Observability` hub routes every call to
no-op recorders, so hot paths pay only a method call when observability
is off (verified by ``benchmarks/bench_obs_overhead.py``).
"""

from repro.obs.export import (
    chrome_trace_events,
    jsonl_lines,
    render_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.hub import NULL_OBS, Observability
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricRegistry,
    StreamingHistogram,
)
from repro.obs.sampler import PeriodicSampler, TimeSeriesStore
from repro.obs.spans import NULL_SPAN, NullSpanRecorder, Span, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "MetricRegistry",
    "NULL_OBS",
    "NULL_SPAN",
    "NullSpanRecorder",
    "Observability",
    "PeriodicSampler",
    "Span",
    "SpanRecorder",
    "StreamingHistogram",
    "TimeSeriesStore",
    "chrome_trace_events",
    "jsonl_lines",
    "render_summary",
    "write_chrome_trace",
    "write_jsonl",
]
