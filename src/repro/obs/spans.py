"""Causal spans: timed, linked intervals of protocol work.

A :class:`Span` is one interval of simulated time attributed to a named
piece of protocol work at one site (an AV request round-trip, a 2PC lock
wait, a sync pass). Spans carry a ``trace_id`` shared by every span of
one logical operation and a ``parent_id`` linking them into a tree, so
the full chain behind a single update — checking, selecting, the AV
request at the requester, the deciding/grant at the *grantor*, the final
apply — reconstructs from the flat span list.

Cross-site linkage works by piggybacking ``{"trace", "span"}`` context
on protocol payloads (only when recording is enabled, so the disabled
wire format is byte-identical to an uninstrumented run); the remote
handler opens its span with that context as parent.

:class:`NullSpanRecorder` is the disabled implementation: ``start``
returns the shared :data:`NULL_SPAN` whose mutators are no-ops, keeping
instrumented hot paths near-zero-cost when observability is off.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Dict, Iterator, List, Optional, Union


class Span:
    """One timed interval of work, linked into a per-trace tree."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "site",
                 "start", "end", "attrs")

    def __init__(
        self,
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        site: str,
        start: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.site = site
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    def finish(self, now: float, **attrs: Any) -> "Span":
        """Close the span at ``now``, merging any final attributes."""
        self.end = now
        if attrs:
            self.annotate(**attrs)
        return self

    def annotate(self, **attrs: Any) -> None:
        """Attach key/value attributes to the span."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Sim-time length (0 for still-open spans)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def __repr__(self) -> str:
        endp = f"{self.end:g}" if self.end is not None else "…"
        return (
            f"<Span {self.name!r} {self.site} trace={self.trace_id}"
            f" id={self.span_id} parent={self.parent_id}"
            f" [{self.start:g}, {endp}]>"
        )


class _NullSpan(Span):
    """The shared do-nothing span returned by a disabled recorder."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("", 0, None, "", "", 0.0)

    def finish(self, now: float, **attrs: Any) -> "Span":
        return self

    def annotate(self, **attrs: Any) -> None:
        return None


#: singleton no-op span; safe to use as a parent (treated as "no parent")
NULL_SPAN = _NullSpan()

ParentLike = Union[Span, int, None]


class SpanRecorder:
    """Collects spans in start order (deterministic under a fixed seed).

    Parameters
    ----------
    max_spans:
        Optional cap; further ``start`` calls return :data:`NULL_SPAN`
        and are counted in :attr:`dropped` (mirrors ``Tracer``'s policy).
    """

    enabled = True

    def __init__(self, max_spans: Optional[int] = None) -> None:
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._ids = count(1)

    # ---------------------------------------------------------------- #
    # recording
    # ---------------------------------------------------------------- #

    def start(
        self,
        name: str,
        site: str,
        now: float,
        trace: Optional[str] = None,
        parent: ParentLike = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; the caller must ``finish()`` it.

        ``parent`` may be a :class:`Span` (its trace id is inherited
        when ``trace`` is omitted), a raw span id (cross-site context —
        pass ``trace`` too), or ``None``/:data:`NULL_SPAN` for a root.
        A root with no ``trace`` starts a fresh trace (id ``t<span_id>``).
        """
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.dropped += 1
            return NULL_SPAN
        span_id = next(self._ids)
        if isinstance(parent, Span):
            parent_id = parent.span_id if parent.span_id else None
            if trace is None and parent.trace_id:
                trace = parent.trace_id
        else:
            parent_id = parent
        span = Span(
            trace_id=trace if trace else f"t{span_id}",
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            site=site,
            start=now,
            attrs=attrs or None,
        )
        self.spans.append(span)
        return span

    # ---------------------------------------------------------------- #
    # views
    # ---------------------------------------------------------------- #

    def by_trace(self, trace_id: str) -> List[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def traces(self) -> Dict[str, List[Span]]:
        """All spans grouped by trace id (insertion-ordered)."""
        out: Dict[str, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.trace_id, []).append(span)
        return out

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, parent: Span) -> List[Span]:
        return [
            s for s in self.spans
            if s.parent_id == parent.span_id and s.trace_id == parent.trace_id
        ]

    def names(self) -> Dict[str, int]:
        """Span count by name (summary tables)."""
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0) + 1
        return out

    def fingerprint(self) -> int:
        """Order-sensitive hash of the whole span tree.

        Covers trace/parent linkage, timing, and attributes — the span
        analogue of :meth:`repro.sim.tracing.Tracer.fingerprint`, used
        by the determinism property test (same seed ⇒ same value).
        """
        acc = 0
        for s in self.spans:
            attrs = tuple(sorted(s.attrs.items())) if s.attrs else ()
            key = (s.trace_id, s.span_id, s.parent_id, s.name, s.site,
                   s.start, s.end, repr(attrs))
            acc = (acc * 1000003 + hash(key)) & 0xFFFFFFFFFFFFFFFF
        if self.dropped:
            acc = (acc * 1000003 + self.dropped) & 0xFFFFFFFFFFFFFFFF
        return acc

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def __repr__(self) -> str:
        return f"<SpanRecorder spans={len(self.spans)} dropped={self.dropped}>"


class NullSpanRecorder(SpanRecorder):
    """A recorder that never records (the disabled fast path)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_spans=None)

    def start(self, name, site, now, trace=None, parent=None, **attrs):
        return NULL_SPAN
