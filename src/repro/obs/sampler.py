"""Periodic time-series sampling of system state.

The span layer answers "what did this update do"; the sampler answers
"what did the *system* look like over time": per-site AV levels, belief
staleness (believed vs. actual AV at other sites), lock-wait depth, and
sync-queue backlog, snapshotted every ``interval`` sim-time units into
the run's :class:`TimeSeriesStore`.

Runs as a simulation process in the style of
:class:`~repro.core.sync.SyncScheduler`; drive the workload with
``run(until=...)`` (or stop the sampler) so the event queue can drain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.system import DistributedSystem


class TimeSeriesStore:
    """Named ``(time, value)`` series, appended in sample order."""

    def __init__(self) -> None:
        self._series: Dict[str, List[Tuple[float, float]]] = {}

    def record(self, name: str, t: float, value: float) -> None:
        self._series.setdefault(name, []).append((t, value))

    def series(self, name: str) -> List[Tuple[float, float]]:
        """Samples of ``name`` (empty if never recorded)."""
        return self._series.get(name, [])

    def names(self) -> List[str]:
        return sorted(self._series)

    def last(self, name: str) -> float:
        """Most recent value of ``name`` (0 if never recorded)."""
        points = self._series.get(name)
        return points[-1][1] if points else 0.0

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __len__(self) -> int:
        return len(self._series)

    def __repr__(self) -> str:
        return f"<TimeSeriesStore series={len(self._series)}>"


class PeriodicSampler:
    """Snapshots per-site state into the system's time-series store.

    Series written per site ``s``:

    * ``av.level.<s>`` — total AV held across the site's items;
    * ``belief.error.<s>`` — mean |believed − actual| AV over every
      (peer, item) belief the site holds (staleness in volume units);
    * ``belief.age.<s>`` — age of the site's stalest belief;
    * ``lock.wait.<s>`` — updates queued on the site's lock manager;
    * ``sync.backlog.<s>`` — pending lazy-sync (peer, item) balances.
    """

    def __init__(
        self,
        system: "DistributedSystem",
        interval: float = 25.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.system = system
        self.store = system.obs.series
        self.interval = interval
        #: sampling passes completed (diagnostic)
        self.passes = 0
        self._proc = None

    # ---------------------------------------------------------------- #
    # lifecycle (SyncScheduler-style)
    # ---------------------------------------------------------------- #

    def start(self):
        """Spawn the periodic process (idempotent); returns it."""
        if self._proc is None or self._proc.triggered:
            self._proc = self.system.env.process(
                self._loop(), name="obs.sampler"
            )
        return self._proc

    def stop(self) -> None:
        """Cancel the periodic process (idempotent)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stopped")

    def _loop(self):
        from repro.sim.errors import Interrupt

        try:
            while True:
                yield self.system.env.timeout(self.interval)
                self.sample_once()
        except Interrupt:
            return

    # ---------------------------------------------------------------- #
    # one snapshot
    # ---------------------------------------------------------------- #

    def sample_once(self) -> None:
        """Record one sample of every series at the current sim time."""
        system = self.system
        store = self.store
        now = system.env.now
        sites = system.sites
        for name, site in sites.items():
            accel = site.accelerator
            store.record(f"av.level.{name}", now, accel.av_table.total())

            error = 0.0
            age = 0.0
            beliefs = 0
            for peer, item, belief in accel.beliefs.entries():
                peer_site = sites.get(peer)
                if peer_site is None:
                    continue
                actual = (
                    peer_site.av_table.get(item)
                    if peer_site.av_table.defined(item)
                    else 0.0
                )
                error += abs(belief.volume - actual)
                age = max(age, now - belief.observed_at)
                beliefs += 1
            store.record(
                f"belief.error.{name}", now, error / beliefs if beliefs else 0.0
            )
            store.record(f"belief.age.{name}", now, age)

            store.record(
                f"lock.wait.{name}", now, float(accel.locks.total_waiting())
            )
            store.record(f"sync.backlog.{name}", now, float(len(accel.owed)))
        self.passes += 1

    def __repr__(self) -> str:
        return (
            f"<PeriodicSampler interval={self.interval}"
            f" passes={self.passes}>"
        )
