"""Fleet telemetry: the one snapshot type workers ship back to a sweep.

Before this module the sharded sweep runner discarded every worker-side
metric — even ``events_processed`` was re-derived from ad-hoc result
fields. A :class:`TelemetrySnapshot` is the single, picklable,
canonically-serialisable carrier for a task's runtime telemetry:

* the kernel event count,
* a full-state :class:`~repro.obs.registry.MetricRegistry` snapshot
  (counters, gauges, raw-bucket histograms — mergeable without loss),
* per-site protocol state at end of run (AV level, sync backlog,
  lock-queue depth, replica stock total).

Everything in a snapshot is a pure simulation quantity (no wall-clock,
no pids), so snapshots ride inside the sweep's determinism fingerprint
and are gated byte-for-byte like the results themselves.

:func:`merge_telemetry` folds many snapshots into a sweep-level report.
The fold is performed in task-index order by the caller; with that
order fixed the merged output is **shard-count invariant** — integer
aggregates are order-free and float sums see the exact same operand
sequence regardless of which worker produced which snapshot (asserted
in ``tests/test_perf_determinism.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.obs.registry import MetricRegistry, StreamingHistogram

#: snapshot schema version (bump when the shape changes)
TELEMETRY_VERSION = 1


class TelemetrySnapshot:
    """One run's telemetry, as a plain JSON-ready dict wrapper."""

    __slots__ = ("data",)

    def __init__(self, data: Dict[str, Any]) -> None:
        self.data = data

    @classmethod
    def capture(
        cls,
        system,
        registry: Optional[MetricRegistry] = None,
        extra_events: int = 0,
    ) -> "TelemetrySnapshot":
        """Snapshot a finished :class:`DistributedSystem` run.

        ``registry`` defaults to the system collector's registry (the
        private one on unobserved runs, the shared hub registry on
        observed runs — both hold only simulation-derived values).
        ``extra_events`` folds in kernel events from companion engines
        the experiment also ran (e.g. the conventional baseline fig6
        replays against) so ``events_processed`` honours its contract —
        *total kernel events across all task simulations* — rather than
        undercounting to the proposal engine alone.
        """
        if registry is None:
            registry = system.collector.registry
        sites: Dict[str, Dict[str, float]] = {}
        for name in sorted(system.sites):
            site = system.sites[name]
            accel = site.accelerator
            sites[name] = {
                "av_level": accel.av_table.total(),
                "sync_backlog": float(len(accel.unsynced_items())),
                "lock_waiting": float(accel.locks.total_waiting()),
                "stock_total": sum(site.store.as_dict().values()),
                "updates": float(len(system.collector.by_site.get(name, ()))),
            }
        return cls({
            "version": TELEMETRY_VERSION,
            "events_processed": system.env.events_processed + extra_events,
            "tasks": 1,
            "metrics": registry.snapshot(),
            "sites": sites,
        })

    def to_dict(self) -> Dict[str, Any]:
        return self.data

    def __repr__(self) -> str:
        return (
            f"<TelemetrySnapshot events={self.data.get('events_processed')}"
            f" metrics={len(self.data.get('metrics', {}))}>"
        )


def _merge_metric(
    name: str, acc: Dict[str, Any], new: Dict[str, Any]
) -> Dict[str, Any]:
    kind = new["kind"]
    if kind != acc["kind"]:
        raise ValueError(
            f"metric {name!r} changes kind across snapshots:"
            f" {acc['kind']} vs {kind}"
        )
    if kind == "counter":
        return {"kind": "counter", "value": acc["value"] + new["value"]}
    if kind == "gauge":
        # Gauges are last-value-wins per run; across runs the useful
        # sweep aggregate is the spread, not a meaningless "last".
        runs = acc.get("runs", 1)
        return {
            "kind": "gauge",
            "sum": acc.get("sum", acc.get("value", 0.0)) + new["value"],
            "min": min(acc.get("min", acc.get("value", 0.0)), new["value"]),
            "max": max(acc.get("max", acc.get("value", 0.0)), new["value"]),
            "runs": runs + 1,
        }
    # histogram: lossless raw-bucket merge
    merged = StreamingHistogram.from_dict(name, acc)
    merged.merge(StreamingHistogram.from_dict(name, new))
    return merged.to_dict()


def merge_telemetry(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold task snapshots (in the caller's order) into a sweep report.

    Counters and histograms merge losslessly; gauges aggregate to
    ``{sum, min, max, runs}``; per-site fields aggregate the same way.
    Returns an empty-shaped report when no snapshot carries telemetry.
    """
    merged: Dict[str, Any] = {
        "version": TELEMETRY_VERSION,
        "events_processed": 0,
        "tasks": 0,
        "metrics": {},
        "sites": {},
    }
    metrics: Dict[str, Dict[str, Any]] = {}
    sites: Dict[str, Dict[str, Dict[str, float]]] = {}
    for snap in snapshots:
        if not snap:
            continue
        merged["events_processed"] += snap.get("events_processed", 0)
        merged["tasks"] += snap.get("tasks", 1)
        for name, state in snap.get("metrics", {}).items():
            prev = metrics.get(name)
            if prev is None:
                # Copy so merging never mutates the input snapshots;
                # normalise gauges straight to aggregate form.
                if state["kind"] == "gauge":
                    metrics[name] = {
                        "kind": "gauge",
                        "sum": state["value"],
                        "min": state["value"],
                        "max": state["value"],
                        "runs": 1,
                    }
                else:
                    metrics[name] = dict(state)
            else:
                metrics[name] = _merge_metric(name, prev, state)
        for site, fields in snap.get("sites", {}).items():
            per_site = sites.setdefault(site, {})
            for field, value in fields.items():
                agg = per_site.get(field)
                if agg is None:
                    per_site[field] = {
                        "sum": value, "min": value, "max": value, "runs": 1,
                    }
                else:
                    agg["sum"] += value
                    agg["min"] = min(agg["min"], value)
                    agg["max"] = max(agg["max"], value)
                    agg["runs"] += 1
    merged["metrics"] = {name: metrics[name] for name in sorted(metrics)}
    merged["sites"] = {
        site: dict(sorted(fields.items()))
        for site, fields in sorted(sites.items())
    }
    return merged


def telemetry_rows(merged: Dict[str, Any]) -> List[List[Any]]:
    """``[name, kind, rendered]`` rows for the sweep telemetry table."""
    rows: List[List[Any]] = []
    for name, state in merged.get("metrics", {}).items():
        kind = state["kind"]
        if kind == "counter":
            rows.append([name, "counter", f"{state['value']:g}"])
        elif kind == "gauge":
            rows.append([
                name, "gauge",
                (f"sum={state['sum']:g} min={state['min']:g}"
                 f" max={state['max']:g} runs={state['runs']}"),
            ])
        else:
            hist = StreamingHistogram.from_dict(name, state)
            s = hist.summary()
            rows.append([
                name, "histogram",
                (f"n={s['count']:g} mean={s['mean']:.3f}"
                 f" p50={s['p50']:.3f} p99={s['p99']:.3f}"
                 f" max={s['max']:.3f}"),
            ])
    return rows
