"""Exporters: Chrome trace-event JSON, JSONL dumps, text summaries.

Three consumers, three formats:

* **Chrome trace-event JSON** (:func:`write_chrome_trace`) — open the
  file in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
  each site renders as a thread, each span as a complete ("X") event,
  and the trace id is kept in both ``cat`` and ``args`` so one update's
  chain is searchable.
* **JSONL** (:func:`write_jsonl`) — one self-describing JSON object per
  line (``{"type": "span" | "metric" | "sample", ...}``) for offline
  analysis with any tool that reads line-delimited JSON.
* **Text** (:func:`render_summary`) — the aligned-table summary the
  ``observe`` CLI subcommand prints.

Simulated time is unitless; the Chrome exporter maps 1 sim-time unit to
1 ms (``ts``/``dur`` are microseconds), which puts typical runs in a
comfortable zoom range.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Iterable, Iterator, List, Optional

from repro.obs.spans import Span

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import Observability
    from repro.obs.registry import MetricRegistry
    from repro.obs.sampler import TimeSeriesStore

#: microseconds per simulated time unit in Chrome trace output
SIM_UNIT_US = 1000.0


def chrome_trace_events(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Convert spans to Chrome trace-event dicts (one "X" event each).

    Unfinished spans are exported with zero duration (they still mark
    where work started). Sites become threads of one process, with
    ``thread_name`` metadata so the viewer labels lanes by site.
    """
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    for span in spans:
        tid = tids.get(span.site)
        if tid is None:
            tid = len(tids) + 1
            tids[span.site] = tid
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": span.site},
            })
        end = span.end if span.end is not None else span.start
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.attrs:
            args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": span.trace_id,
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": span.start * SIM_UNIT_US,
            "dur": (end - span.start) * SIM_UNIT_US,
            "args": args,
        })
    return events


def write_chrome_trace(path: str, spans: Iterable[Span]) -> Dict[str, Any]:
    """Write a Chrome trace-event file; returns the written document."""
    document = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "sim_unit_us": SIM_UNIT_US},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
    return document


def jsonl_lines(
    spans: Iterable[Span] = (),
    registry: Optional["MetricRegistry"] = None,
    series: Optional["TimeSeriesStore"] = None,
) -> Iterator[str]:
    """Yield one JSON line per span, metric, and time-series sample."""
    for span in spans:
        yield json.dumps({
            "type": "span",
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "site": span.site,
            "start": span.start,
            "end": span.end,
            "attrs": span.attrs or {},
        })
    if registry is not None:
        for record in registry.to_dicts():
            yield json.dumps({"type": "metric", **record})
    if series is not None:
        for name in series.names():
            for t, value in series.series(name):
                yield json.dumps(
                    {"type": "sample", "series": name, "time": t,
                     "value": value}
                )


def write_jsonl(
    path: str,
    spans: Iterable[Span] = (),
    registry: Optional["MetricRegistry"] = None,
    series: Optional["TimeSeriesStore"] = None,
) -> int:
    """Write the JSONL dump; returns the number of lines written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for line in jsonl_lines(spans, registry, series):
            fh.write(line + "\n")
            n += 1
    return n


def render_summary(obs: "Observability", title: str = "Observability") -> str:
    """Aligned-table text summary of one observed run.

    Sections: span counts and total durations by name, every registry
    instrument, and the final value of every time series.
    """
    from repro.metrics.report import text_table  # lazy: avoids an import cycle

    blocks: List[str] = []

    recorder = obs.recorder
    if len(recorder):
        durations: Dict[str, float] = {}
        for span in recorder:
            durations[span.name] = durations.get(span.name, 0.0) + span.duration
        rows = [
            [name, count, f"{durations[name]:.1f}"]
            for name, count in sorted(recorder.names().items())
        ]
        blocks.append(text_table(
            ["span", "count", "total sim-time"],
            rows,
            title=(
                f"{title} — spans ({len(recorder)} total,"
                f" {len(recorder.traces())} traces,"
                f" {recorder.dropped} dropped)"
            ),
        ))

    if len(obs.registry):
        blocks.append(text_table(
            ["metric", "kind", "value"],
            obs.registry.rows(),
            title=f"{title} — metrics",
        ))

    names = obs.series.names()
    if names:
        rows = []
        for name in names:
            points = obs.series.series(name)
            values = [v for _, v in points]
            rows.append([
                name,
                len(points),
                f"{min(values):.1f}",
                f"{max(values):.1f}",
                f"{values[-1]:.1f}",
            ])
        blocks.append(text_table(
            ["series", "samples", "min", "max", "last"],
            rows,
            title=f"{title} — time series",
        ))

    return "\n\n".join(blocks) if blocks else f"{title}: nothing recorded"
