"""Metric registry: counters, gauges, and streaming histograms.

The registry replaces ad-hoc ``List[float]`` scans with named
instruments that aggregate online:

* :class:`Counter` — monotonically increasing count;
* :class:`Gauge` — last-written value;
* :class:`StreamingHistogram` — log-bucketed distribution sketch giving
  p50/p90/p99/max without storing individual samples. Bucket boundaries
  grow geometrically, so quantile estimates carry a bounded *relative*
  error of about ``(growth - 1) / 2`` (≈2.4% at the default 1.05);
  ``min``/``max``/``count``/``mean`` are exact.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Tuple


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name!r} {self.value:g}>"


class Gauge:
    """A named last-value-wins instrument."""

    __slots__ = ("name", "value", "updated_at")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.updated_at: Optional[float] = None

    def set(self, value: float, now: Optional[float] = None) -> None:
        self.value = value
        self.updated_at = now

    def __repr__(self) -> str:
        return f"<Gauge {self.name!r} {self.value:g}>"


class StreamingHistogram:
    """Log-bucketed streaming histogram for non-negative samples.

    Parameters
    ----------
    name:
        Instrument name.
    growth:
        Geometric bucket growth factor (> 1). Smaller ⇒ tighter quantile
        error, more buckets. The default 1.05 keeps relative quantile
        error under ~2.5% with a few hundred buckets over 12 decades.
    """

    __slots__ = ("name", "growth", "_log_growth", "buckets", "zeros",
                 "count", "total", "min", "max")

    def __init__(self, name: str, growth: float = 1.05) -> None:
        if growth <= 1.0:
            raise ValueError("growth factor must exceed 1")
        self.name = name
        self.growth = growth
        self._log_growth = math.log(growth)
        #: bucket index -> sample count; bucket i covers
        #: (growth**i, growth**(i+1)]
        self.buckets: Dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Fold one sample into the sketch."""
        if value < 0:
            raise ValueError(f"negative sample {value} in {self.name!r}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0.0:
            self.zeros += 1
            return
        # ceil-like indexing: value sits in the bucket whose upper bound
        # is the first power of `growth` at or above it.
        index = math.floor(math.log(value) / self._log_growth)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold ``other``'s sketch into this one (shard aggregation).

        Determinism guarantee: the bucket table after merging is a pure
        function of the *multiset* of samples — observing samples in one
        histogram or splitting them across shards and merging produces
        exactly equal buckets/zeros/count/min/max, because bucket counts
        are integers and bucket indexing depends only on the value.
        (``total`` is a float sum, so byte-equality of ``total`` — and
        hence of serialised snapshots — additionally requires a fixed
        merge fold order; the sweep runner merges in task-index order.)
        Property-tested in ``tests/test_obs.py``.
        """
        if other.growth != self.growth:
            raise ValueError(
                f"cannot merge histograms with growth {other.growth}"
                f" into {self.growth}"
            )
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zeros += other.zeros
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot of the full sketch state.

        Buckets serialise as sorted ``[index, count]`` pairs (canonical
        and round-trippable — JSON objects would stringify the integer
        keys). ``min``/``max`` are ``None`` while empty so the encoding
        stays strict-JSON (no ``Infinity`` literals).
        """
        return {
            "kind": "histogram",
            "growth": self.growth,
            "buckets": [[i, self.buckets[i]] for i in sorted(self.buckets)],
            "zeros": self.zeros,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, Any]) -> "StreamingHistogram":
        """Rebuild a sketch from :meth:`to_dict` output."""
        hist = cls(name, growth=data["growth"])
        hist.buckets = {int(i): int(n) for i, n in data["buckets"]}
        hist.zeros = int(data["zeros"])
        hist.count = int(data["count"])
        hist.total = float(data["total"])
        if data["min"] is not None:
            hist.min = float(data["min"])
        if data["max"] is not None:
            hist.max = float(data["max"])
        return hist

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (nearest-rank over buckets)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} not in [0, 1]")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        seen = self.zeros
        if seen >= target:
            return 0.0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                # geometric midpoint of the bucket, clamped to observed
                # extremes so q=0/q=1 stay exact.
                mid = self.growth ** (index + 0.5)
                return min(max(mid, self.min), self.max)
        return self.max  # pragma: no cover - rounding guard

    def summary(self) -> Dict[str, float]:
        """The standard percentile summary (p50/p90/p99/max)."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "max": self.max,
        }

    def __repr__(self) -> str:
        return (
            f"<StreamingHistogram {self.name!r} n={self.count}"
            f" buckets={len(self.buckets)}>"
        )


Instrument = Any  # Counter | Gauge | StreamingHistogram


class MetricRegistry:
    """Named instruments, created on first use.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name with a different kind raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, cls, *args) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, *args)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__},"
                f" not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, growth: float = 1.05) -> StreamingHistogram:
        return self._get(name, StreamingHistogram, growth)

    # ---------------------------------------------------------------- #
    # views
    # ---------------------------------------------------------------- #

    def rows(self) -> List[Tuple[str, str, str]]:
        """(name, kind, rendered value) rows for text summaries."""
        out: List[Tuple[str, str, str]] = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                out.append((name, "counter", f"{inst.value:g}"))
            elif isinstance(inst, Gauge):
                out.append((name, "gauge", f"{inst.value:g}"))
            else:
                s = inst.summary()
                out.append((
                    name,
                    "histogram",
                    (f"n={s['count']:g} mean={s['mean']:.3f}"
                     f" p50={s['p50']:.3f} p90={s['p90']:.3f}"
                     f" p99={s['p99']:.3f} max={s['max']:.3f}"),
                ))
        return out

    def to_dicts(self) -> Iterator[Dict[str, Any]]:
        """One JSON-ready dict per instrument (for the JSONL exporter)."""
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                yield {"metric": name, "kind": "counter", "value": inst.value}
            elif isinstance(inst, Gauge):
                yield {"metric": name, "kind": "gauge", "value": inst.value,
                       "updated_at": inst.updated_at}
            else:
                yield {"metric": name, "kind": "histogram", **inst.summary()}

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Full-state, JSON-ready snapshot of every instrument.

        Unlike :meth:`to_dicts` (which renders histogram *summaries*),
        this preserves raw histogram buckets so snapshots from different
        workers can be merged losslessly (see
        :mod:`repro.obs.snapshot`). Keys are sorted; values contain only
        canonical JSON types.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                out[name] = {"kind": "counter", "value": inst.value}
            elif isinstance(inst, Gauge):
                out[name] = {
                    "kind": "gauge",
                    "value": inst.value,
                    "updated_at": inst.updated_at,
                }
            else:
                out[name] = inst.to_dict()
        return out

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"<MetricRegistry instruments={len(self._instruments)}>"
