"""repro — reproduction of the IPPS 2000 Allowable Volume consistency paper.

Public API is re-exported here; see README.md for a tour. Subpackages:

* :mod:`repro.sim` — discrete-event simulation kernel
* :mod:`repro.net` — simulated network substrate
* :mod:`repro.db` — per-site transactional store
* :mod:`repro.core` — the paper's contribution (AV tables, accelerator,
  Delay/Immediate update protocols)
* :mod:`repro.cluster` — sites and system assembly
* :mod:`repro.baselines` — conventional centralized & escrow baselines
* :mod:`repro.workload` — SCM workload generators
* :mod:`repro.metrics` — correspondence/latency/fairness instrumentation
* :mod:`repro.experiments` — figure/table reproduction harness
"""

from repro._version import __version__

__all__ = ["__version__"]


def __getattr__(name: str):
    # Lazy re-exports keep `import repro` light while still offering the
    # convenient flat names documented in the README.
    from importlib import import_module

    flat = {
        "Environment": "repro.sim",
        "RngRegistry": "repro.sim",
        "AVTable": "repro.core",
        "Accelerator": "repro.core",
        "Soda99Policy": "repro.core",
        "SystemConfig": "repro.cluster",
        "DistributedSystem": "repro.cluster",
        "build_paper_system": "repro.cluster",
        "PaperWorkload": "repro.workload",
        "run_fig6": "repro.experiments",
        "run_table1": "repro.experiments",
    }
    module = flat.get(name)
    if module is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    return getattr(import_module(module), name)
