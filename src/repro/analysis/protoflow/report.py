"""Reporters and the committed-baseline mechanism for protoflow.

The baseline file (``protoflow-baseline.json`` at the repo root) lists
known findings by ``(rule, path, symbol)`` — deliberately *not* by line
number, so unrelated edits that shift lines never invalidate it. The
repo's own baseline is empty: all drift the analyzer surfaced was fixed
in source, and CI keeps it that way.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Set, Tuple

from repro.analysis.protoflow.checks import ProtoFinding

BASELINE_VERSION = 1


def render_text(findings: Sequence) -> str:
    """One ``path:line:col: rule: message`` line per finding."""
    return "\n".join(f.render() for f in findings)


def render_json(findings: Sequence) -> str:
    """Stable JSON for tooling: ``{"version": 1, "findings": [...]}``."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "symbol": getattr(f, "symbol", ""),
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def load_baseline(path) -> Set[Tuple[str, str, str]]:
    """Read a baseline file into a set of ``(rule, path, symbol)`` keys."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    keys = set()
    for entry in data.get("findings", ()):
        keys.add((entry["rule"], entry["path"], entry.get("symbol", "")))
    return keys


def apply_baseline(
    findings: Iterable[ProtoFinding], baseline: Set[Tuple[str, str, str]]
) -> List[ProtoFinding]:
    """Drop findings whose key appears in ``baseline``."""
    return [f for f in findings if f.key not in baseline]


def write_baseline(findings: Iterable[ProtoFinding], path) -> None:
    """Snapshot current findings as the new baseline (``--update-baseline``)."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": sorted(
            (
                {"rule": f.rule, "path": f.path, "symbol": f.symbol}
                for f in findings
            ),
            key=lambda e: (e["rule"], e["path"], e["symbol"]),
        ),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
