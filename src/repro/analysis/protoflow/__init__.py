"""protoflow: whole-program protocol-flow analysis.

The package turns the declarative registry in :mod:`repro.net.protocol`
into a machine-checked contract. One parse of the source tree builds a
shared project IR (:mod:`~repro.analysis.protoflow.ir`) — send sites,
handler registrations, payload constructions, lock sequences,
nondeterminism taint — and the flow checks
(:mod:`~repro.analysis.protoflow.checks`) run over it:

* ``proto-unregistered-kind`` — every constructed message kind is
  declared (f-string/concatenated kinds resolved symbolically, variable
  kinds resolved by interprocedural constant propagation);
* ``proto-missing-handler`` / ``proto-unsent-kind`` — every declared
  kind has both a sender and a registered handler;
* ``proto-payload-drift`` — send-site keys, handler reads, handler
  reply dicts and request-site reply reads all agree with the registry;
* ``proto-unpaired-request`` — request-class kinds have a reachable
  reply path, and fault-aware kinds a timeout-guarded send site;
* ``proto-lock-cycle`` — the static lock-order graph is acyclic;
* ``proto-taint`` — no wall-clock / unseeded-rng / unordered-set values
  flow into message payloads.

The same engine drives the per-file lint rules
(:func:`repro.analysis.lint.lint_paths` delegates here), so the whole
static suite is one parse of the tree. CLI::

    PYTHONPATH=src python -m repro.analysis.protoflow src

and ``python -m repro check --static`` runs lint + protoflow together.
Suppressions reuse the lint syntax (``# repro-lint: disable=proto-taint
(why)``); known findings can also be carried in a committed baseline
file (``protoflow-baseline.json``).
"""

from __future__ import annotations

from repro.analysis.protoflow.checks import ProtoFinding, run_checks
from repro.analysis.protoflow.ir import ProjectIR, index_project
from repro.analysis.protoflow.report import (
    apply_baseline,
    load_baseline,
    render_json,
    render_text,
)


def analyze(paths, registry=None, rules=()):
    """Run the flow checks over ``paths``; returns post-suppression findings.

    ``registry`` defaults to the full accelerator protocol
    (:data:`repro.net.protocol.PROTOCOL`). ``rules`` optionally adds
    lint rules to the same single-parse pass (their findings are
    returned too, interleaved by location).
    """
    if registry is None:
        from repro.net.protocol import PROTOCOL

        registry = PROTOCOL
    lint_findings, ir = index_project(paths, rules=rules)
    flow_findings = run_checks(ir, registry)
    return sorted(
        [*lint_findings, *flow_findings],
        key=lambda f: (f.path, f.line, f.col, f.rule),
    )


__all__ = [
    "ProjectIR",
    "ProtoFinding",
    "analyze",
    "apply_baseline",
    "index_project",
    "load_baseline",
    "render_json",
    "render_text",
    "run_checks",
]
