"""The protocol-flow checks, run over a :class:`ProjectIR`.

Each check compares the IR against the declared registry
(:class:`repro.net.protocol.ProtocolRegistry`) — the registry is the
contract, so drift on *either* side (a send site or a handler) shows up
as a disagreement with it:

``proto-unregistered-kind``
    A constructed kind (send, request, deliver, ``Message(...)``,
    registration) that the registry does not declare — including kinds
    that cannot be resolved statically at all.
``proto-missing-handler`` / ``proto-unsent-kind``
    A declared kind with no registered handler / no send site.
``proto-payload-drift``
    Send-site payload keys, handler payload reads, handler reply dicts,
    or request-site reply reads outside the declared schema (or missing
    required keys). Infra keys (``_obs``, ``_rel``) are always allowed.
``proto-unpaired-request``
    A request-class kind whose reply path is not statically reachable:
    no ``*.reply`` construction in the tree, a handler that never
    returns a reply value, or — for ``needs_timeout`` kinds — no send
    site that passes ``timeout=`` inside a function handling
    ``RequestTimeout``.
``proto-lock-cycle``
    A cycle in the static lock-order graph (edge ``a -> b`` whenever a
    function acquires ``b`` while still holding ``a``).
``proto-taint``
    A wall-clock / unseeded-rng / unordered-set value flowing into a
    message payload.

Variable kinds are resolved by interprocedural constant propagation:
a kind that is a *parameter* of its enclosing function takes the union
of the constant strings passed for it at every call site, chasing
parameter-to-parameter forwarding to a fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.protoflow.ir import (
    FuncFacts,
    FuncKey,
    HandlerReg,
    KindRef,
    ProjectIR,
    SendSite,
)
from repro.net.protocol import (
    INFRA_KEYS,
    REPLY_SUFFIX,
    MessageSpec,
    ProtocolRegistry,
)

#: anchor for registry-level findings (a declared kind with no code
#: evidence has no natural source location)
REGISTRY_PATH = "src/repro/net/protocol.py"


@dataclass(frozen=True)
class ProtoFinding:
    """One flow-check hit. ``symbol`` (usually the message kind) keys
    baseline entries, so line drift never invalidates a baseline."""

    rule: str
    path: str
    line: int
    col: int
    symbol: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)


class _Resolver:
    """Interprocedural constant propagation for kind parameters."""

    def __init__(self, ir: ProjectIR) -> None:
        self.ir = ir
        self._memo: Dict[Tuple[FuncKey, str], Tuple[FrozenSet[str], bool]] = {}

    def kinds_of(self, ref: KindRef) -> Tuple[FrozenSet[str], bool]:
        """(resolved constants, partial). ``partial`` means some flow
        into the site could not be resolved."""
        if ref.const is not None:
            return frozenset((ref.const,)), False
        if ref.param is not None:
            return self._resolve_param(ref.param[0], ref.param[1], frozenset())
        return frozenset(), True

    def _resolve_param(
        self, func: FuncKey, param: str, visiting: FrozenSet
    ) -> Tuple[FrozenSet[str], bool]:
        memo_key = (func, param)
        if memo_key in self._memo:
            return self._memo[memo_key]
        if memo_key in visiting:
            return frozenset(), False  # cycle: no new constants this way
        facts = self.ir.funcs.get(func)
        if facts is None or param not in facts.params:
            return frozenset(), True
        pos = facts.params.index(param)
        out: Set[str] = set()
        partial = False
        calls = self.ir.calls_by_name.get(func[1], ())
        if not calls:
            partial = True
        for call in calls:
            val = call.kwargs.get(param)
            if val is None:
                val = call.args.get(pos)
            if val is None:
                continue  # argument defaulted
            if val[0] == "const":
                out.add(val[1])
            elif val[0] == "param":
                sub, p = self._resolve_param(
                    val[1], val[2], visiting | {memo_key}
                )
                out |= sub
                partial |= p
            else:
                partial = True
        result = (frozenset(out), partial)
        self._memo[memo_key] = result
        return result


class _Checker:
    def __init__(self, ir: ProjectIR, registry: ProtocolRegistry) -> None:
        self.ir = ir
        self.registry = registry
        self.resolver = _Resolver(ir)
        self.findings: List[ProtoFinding] = []
        #: kind -> send sites resolved to it
        self.senders: Dict[str, List[SendSite]] = {}
        #: kind -> registrations resolved to it
        self.handlers: Dict[str, List[HandlerReg]] = {}
        self.has_reply_machinery = False

    def emit(self, rule, path, line, col, symbol, message) -> None:
        self.findings.append(ProtoFinding(
            rule=rule, path=path, line=line, col=col,
            symbol=symbol, message=message,
        ))

    # -- check 1: registry completeness ------------------------------ #

    def resolve_sites(self) -> None:
        registry = self.registry
        for site in self.ir.sends:
            ref = site.kind
            if ref.machinery:
                continue  # transport forwarding; callers counted directly
            if ref.pattern is not None:
                if ref.pattern == "*" + REPLY_SUFFIX:
                    # the derived reply family (Endpoint.reply)
                    self.has_reply_machinery = True
                else:
                    self.emit(
                        "proto-unregistered-kind", site.path, site.line,
                        site.col, ref.text,
                        f"dynamically built kind {ref.text} does not match"
                        f" the derived *{REPLY_SUFFIX} family and cannot be"
                        " checked against the registry",
                    )
                continue
            kinds, partial = self.resolver.kinds_of(ref)
            if not kinds:
                self.emit(
                    "proto-unregistered-kind", site.path, site.line,
                    site.col, ref.text,
                    f"message kind {ref.text} is not statically resolvable"
                    " — declare it in repro.net.protocol and construct it"
                    " from a constant",
                )
                continue
            for kind in sorted(kinds):
                if kind in registry:
                    self.senders.setdefault(kind, []).append(site)
                elif registry.request_kind_of(kind) is not None:
                    pass  # an explicitly built reply for a request kind
                else:
                    self.emit(
                        "proto-unregistered-kind", site.path, site.line,
                        site.col, kind,
                        f"message kind {kind!r} is sent but not declared in"
                        " the protocol registry (repro.net.protocol)",
                    )
        for reg in self.ir.regs:
            ref = reg.kind
            if ref.machinery:
                continue
            kinds, partial = self.resolver.kinds_of(ref)
            if not kinds:
                self.emit(
                    "proto-unregistered-kind", reg.path, reg.line, reg.col,
                    ref.text,
                    f"handler registered for unresolvable kind {ref.text}",
                )
                continue
            for kind in sorted(kinds):
                if kind in registry:
                    self.handlers.setdefault(kind, []).append(reg)
                else:
                    self.emit(
                        "proto-unregistered-kind", reg.path, reg.line,
                        reg.col, kind,
                        f"handler registered for kind {kind!r} which is not"
                        " declared in the protocol registry",
                    )

    def check_coverage(self) -> None:
        for kind in self.registry.kinds():
            spec = self.registry.spec(kind)
            sites = self.senders.get(kind, ())
            regs = self.handlers.get(kind, ())
            if not sites:
                self.emit(
                    "proto-unsent-kind", REGISTRY_PATH, 1, 0, kind,
                    f"declared kind {kind!r} has no send site anywhere in"
                    " the analyzed tree — retire the declaration or wire"
                    " the sender",
                )
            if spec.handler_required and not regs:
                anchor = sites[0] if sites else None
                self.emit(
                    "proto-missing-handler",
                    anchor.path if anchor else REGISTRY_PATH,
                    anchor.line if anchor else 1,
                    anchor.col if anchor else 0,
                    kind,
                    f"declared kind {kind!r} has no .on({kind!r}, …)"
                    " registration — delivery would raise LookupError",
                )

    # -- check 2: payload schema drift -------------------------------- #

    def _effective_return_keys(
        self, facts: FuncFacts, visiting: Optional[Set[FuncKey]] = None
    ) -> List[FrozenSet[str]]:
        """Return-dict keys, following one-level return delegation
        (``return self._shared(...)``, ``return nested_generator()``)."""
        if visiting is None:
            visiting = set()
        key = (facts.path, facts.name)
        if key in visiting:
            return []
        visiting.add(key)
        out = list(facts.return_dict_keys)
        for name in sorted(facts.return_delegates):
            target = self.ir.resolve_func(facts.path, name)
            if target is not None:
                out.extend(self._effective_return_keys(target, visiting))
        return out

    def _handler_facts(self, reg: HandlerReg) -> Optional[FuncFacts]:
        if reg.handler is None:
            return None
        return self.ir.resolve_func(reg.path, reg.handler)

    def check_payloads(self) -> None:
        registry = self.registry
        for kind, sites in sorted(self.senders.items()):
            spec = registry.spec(kind)
            declared = spec.declared_keys() | INFRA_KEYS
            for site in sites:
                if site.payload_none:
                    if spec.required and not spec.payload_free:
                        self.emit(
                            "proto-payload-drift", site.path, site.line,
                            site.col, kind,
                            f"{kind!r} sent without a payload but the"
                            f" registry requires keys"
                            f" {sorted(spec.required)}",
                        )
                elif site.payload_keys is not None:
                    extra = site.payload_keys - declared
                    missing = spec.required - site.payload_keys
                    if extra:
                        self.emit(
                            "proto-payload-drift", site.path, site.line,
                            site.col, kind,
                            f"{kind!r} payload carries undeclared keys"
                            f" {sorted(extra)} — declare them in the"
                            " registry or stop writing them",
                        )
                    if missing:
                        self.emit(
                            "proto-payload-drift", site.path, site.line,
                            site.col, kind,
                            f"{kind!r} payload is missing required keys"
                            f" {sorted(missing)}",
                        )
                bad_reads = site.reply_reads - spec.declared_reply_keys()
                if bad_reads:
                    self.emit(
                        "proto-payload-drift", site.path, site.line,
                        site.col, kind,
                        f"reply of {kind!r} is read for undeclared keys"
                        f" {sorted(bad_reads)}",
                    )
        for kind, regs in sorted(self.handlers.items()):
            spec = registry.spec(kind)
            declared = spec.declared_keys() | INFRA_KEYS
            declared_reply = spec.declared_reply_keys()
            for reg in regs:
                facts = self._handler_facts(reg)
                if facts is None:
                    continue
                bad_reads = facts.payload_reads - declared
                if bad_reads and not spec.payload_free:
                    self.emit(
                        "proto-payload-drift", facts.path,
                        facts.line or reg.line, 0, kind,
                        f"handler {facts.name} reads undeclared {kind!r}"
                        f" payload keys {sorted(bad_reads)}",
                    )
                for keys in self._effective_return_keys(facts):
                    extra = keys - declared_reply
                    if extra:
                        self.emit(
                            "proto-payload-drift", facts.path,
                            facts.line or reg.line, 0, kind,
                            f"handler {facts.name} replies to {kind!r} with"
                            f" undeclared keys {sorted(extra)} — dead data"
                            " or a missing registry entry",
                        )
                    missing = spec.reply_required - keys
                    if missing:
                        self.emit(
                            "proto-payload-drift", facts.path,
                            facts.line or reg.line, 0, kind,
                            f"a reply of handler {facts.name} to {kind!r}"
                            f" is missing required keys {sorted(missing)}",
                        )

    # -- check 3: request/reply/ack pairing --------------------------- #

    def check_pairing(self) -> None:
        registry = self.registry
        request_kinds = [
            k for k in registry.kinds() if registry.spec(k).is_request
        ]
        if request_kinds and not self.has_reply_machinery:
            self.emit(
                "proto-unpaired-request", REGISTRY_PATH, 1, 0,
                "*" + REPLY_SUFFIX,
                "no *.reply construction found anywhere in the tree —"
                " request-class kinds have no reply path",
            )
        for kind in request_kinds:
            spec = registry.spec(kind)
            regs = self.handlers.get(kind, ())
            if spec.reply_required and regs:
                facts = [
                    f for f in map(self._handler_facts, regs) if f is not None
                ]
                if facts and not any(f.returns_value for f in facts):
                    self.emit(
                        "proto-unpaired-request",
                        facts[0].path, facts[0].line, 0, kind,
                        f"{kind!r} requires reply keys"
                        f" {sorted(spec.reply_required)} but its handler"
                        f" {facts[0].name} never returns a value",
                    )
            if spec.needs_timeout:
                sites = self.senders.get(kind, ())
                guarded = any(
                    s.has_timeout and self._catches_timeout(s) for s in sites
                )
                if sites and not guarded:
                    anchor = sites[0]
                    self.emit(
                        "proto-unpaired-request", anchor.path, anchor.line,
                        anchor.col, kind,
                        f"{kind!r} is declared fault-aware (needs_timeout)"
                        " but no send site passes timeout= inside a"
                        " function handling RequestTimeout",
                    )

    def _catches_timeout(self, site: SendSite) -> bool:
        if site.func is None:
            return False
        facts = self.ir.funcs.get(site.func)
        return facts is not None and facts.catches_timeout

    # -- check 4: static lock-order graph ------------------------------ #

    def check_lock_order(self) -> None:
        edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
        for facts in self.ir.funcs.values():
            held: List[str] = []
            for op, name, line in facts.lock_ops:
                if op == "acquire":
                    for h in held:
                        if h != name:
                            edges.setdefault((h, name), (facts.path, line))
                    held.append(name)
                else:
                    held = [h for h in held if h != name]
        graph: Dict[str, List[str]] = {}
        for a, b in edges:
            graph.setdefault(a, []).append(b)
            graph.setdefault(b, [])
        for node in graph.values():
            node.sort()

        seen_cycles: Set[Tuple[str, ...]] = set()
        state: Dict[str, int] = {}  # 1 = on stack, 2 = done

        def visit(node: str, stack: List[str]) -> None:
            state[node] = 1
            stack.append(node)
            for nxt in graph.get(node, ()):
                mark = state.get(nxt)
                if mark == 1:
                    cycle = stack[stack.index(nxt):]
                    pivot = cycle.index(min(cycle))
                    canon = tuple(cycle[pivot:] + cycle[:pivot])
                    if canon not in seen_cycles:
                        seen_cycles.add(canon)
                        path, line = edges.get(
                            (node, nxt), (REGISTRY_PATH, 1)
                        )
                        self.emit(
                            "proto-lock-cycle", path, line, 0,
                            " -> ".join((*canon, canon[0])),
                            "static lock-order cycle: "
                            + " -> ".join((*canon, canon[0]))
                            + " — acquire in one global order",
                        )
                elif mark is None:
                    visit(nxt, stack)
            stack.pop()
            state[node] = 2

        for node in sorted(graph):
            if node not in state:
                visit(node, [])

    # -- check 5: nondeterminism taint --------------------------------- #

    def check_taint(self) -> None:
        for site in self.ir.sends:
            for key, taint in sorted(site.taints.items()):
                self.emit(
                    "proto-taint", site.path, site.line, site.col,
                    f"{site.kind.text}[{key}]",
                    f"payload key {key!r} carries a nondeterministic value"
                    f" ({taint}) — message contents must be"
                    " schedule-deterministic",
                )

    # -- driver -------------------------------------------------------- #

    def run(self) -> List[ProtoFinding]:
        self.resolve_sites()
        self.check_coverage()
        self.check_payloads()
        self.check_pairing()
        self.check_lock_order()
        self.check_taint()
        return self.findings


def apply_suppressions(
    findings: List[ProtoFinding], ir: ProjectIR
) -> List[ProtoFinding]:
    """Drop findings disabled by ``# repro-lint: disable=`` comments."""
    out = []
    for f in findings:
        disabled = ir.suppressions.get(f.path, {}).get(f.line, ())
        if f.rule in disabled or "all" in disabled:
            continue
        out.append(f)
    return out


def run_checks(
    ir: ProjectIR, registry: ProtocolRegistry
) -> List[ProtoFinding]:
    """All flow checks over ``ir``, post-suppression, sorted by site."""
    findings = _Checker(ir, registry).run()
    findings = apply_suppressions(findings, ir)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.symbol))
    return findings
