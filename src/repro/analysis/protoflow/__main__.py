"""CLI: ``python -m repro.analysis.protoflow [paths] [--json] [--baseline F]``.

Exit status 1 when any unsuppressed, un-baselined finding remains.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.analysis.protoflow.checks import run_checks
from repro.analysis.protoflow.ir import index_project
from repro.analysis.protoflow.report import (
    apply_baseline,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from repro.net.protocol import PROTOCOL


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.protoflow",
        description="Whole-program protocol-flow analysis against the "
        "declared message registry (repro.net.protocol).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline file of known findings (default: "
        "./protoflow-baseline.json when present)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from current findings and exit 0",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()  # repro-lint: disable=wall-clock (host timing of the analyzer itself, not simulation)
    _, ir = index_project(args.paths)
    findings = run_checks(ir, PROTOCOL)
    elapsed = time.perf_counter() - started  # repro-lint: disable=wall-clock (host timing of the analyzer itself, not simulation)

    baseline_path = args.baseline
    if baseline_path is None:
        default = Path("protoflow-baseline.json")
        if default.exists():
            baseline_path = str(default)

    if args.update_baseline:
        target = baseline_path or "protoflow-baseline.json"
        write_baseline(findings, target)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0

    if baseline_path is not None:
        findings = apply_baseline(findings, load_baseline(baseline_path))

    if args.json:
        print(render_json(findings))
    elif findings:
        print(render_text(findings))

    if not args.json:
        print(
            f"protoflow: {len(findings)} finding(s), "
            f"{len(ir.files)} file(s), {elapsed:.2f}s",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
