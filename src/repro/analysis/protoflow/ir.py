"""The shared project IR: one parse, one walk, every static fact.

:func:`index_project` parses each file once and walks the tree once,
doing two jobs simultaneously:

* dispatching every node to the per-file **lint rules** (the existing
  :class:`~repro.analysis.lint.visitor.Rule` instances — this is how
  ``repro.analysis.lint`` now runs, one parse for the whole suite);
* collecting the **protocol IR** the flow checks consume — send sites,
  handler registrations, per-function payload/reply/return facts, lock
  acquire/release sequences, call records for interprocedural constant
  propagation, and nondeterminism taint.

The walk keeps just enough dataflow context to resolve the idioms the
protocol code actually uses:

* payload dicts built as literals, bound to a name, and augmented with
  ``payload["key"] = ...`` before the send;
* reply objects bound by ``reply = yield endpoint.request(...)`` and
  read with ``reply["key"]`` / ``reply.get("key")``;
* message kinds that are constants, f-strings with a constant suffix
  (``f"{to.kind}.reply"`` → the ``*.reply`` family), or *parameters* of
  the enclosing function — resolved later against every call site
  (worklist to fixpoint in :mod:`~repro.analysis.protoflow.checks`).

Kind parameters of the transport machinery itself (``Endpoint.on`` /
``send`` / ``request`` / ``reply`` forwarding a caller's kind) are
tagged ``machinery`` and excluded from completeness evidence — their
callers are counted directly, so counting the forwarding sites too
would credit every kind to every other.
"""

from __future__ import annotations

import ast
import gc
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.visitor import FileContext, LintFinding, Rule

#: transport-layer functions whose ``kind`` parameters forward a
#: caller's kind — their send/registration sites are machinery, not
#: protocol evidence
MACHINERY_FUNCS = frozenset({"on", "send", "request", "reply"})

#: receiver tokens that mark a ``.on(...)`` call as a message-handler
#: registration (as opposed to unrelated ``.on`` APIs)
_ENDPOINT_TOKENS = frozenset({"endpoint", "reliable"})

#: receiver tokens that mark ``.acquire(...)`` / ``.release(...)`` as
#: item-lock operations
_LOCK_TOKENS = frozenset({"locks", "lock", "lock_manager", "lockmanager"})

#: host-clock calls (mirrors the wall-clock lint rule's ban list)
_WALL_CLOCK = frozenset({
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
})


def dotted(expr: ast.AST) -> Tuple[str, ...]:
    """``a.b.c`` -> ``("a", "b", "c")``; unknown bases become ``""``."""
    parts: List[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    parts.append(expr.id if isinstance(expr, ast.Name) else "")
    return tuple(reversed(parts))


# --------------------------------------------------------------------- #
# IR node types
# --------------------------------------------------------------------- #

FuncKey = Tuple[str, str]  # (path, function name)


@dataclass(frozen=True)
class KindRef:
    """A message-kind expression, classified.

    Exactly one of ``const`` / ``pattern`` / ``param`` is set for a
    resolvable kind; all three ``None`` means dynamic (unresolvable).
    """

    text: str
    const: Optional[str] = None
    pattern: Optional[str] = None  # e.g. "*.reply" (constant suffix)
    param: Optional[Tuple[FuncKey, str]] = None  # ((path, func), param name)
    machinery: bool = False  # param of a MACHINERY_FUNCS function

    @property
    def dynamic(self) -> bool:
        return (
            self.const is None and self.pattern is None and self.param is None
        )


@dataclass
class SendSite:
    """One message construction: ``.send`` / ``.request`` /
    ``.deliver`` / a direct ``Message(...)`` constructor."""

    path: str
    line: int
    col: int
    api: str  # "send" | "request" | "deliver" | "message"
    kind: KindRef
    func: Optional[FuncKey]  # innermost enclosing function
    payload_keys: Optional[FrozenSet[str]] = None  # None: not resolvable
    payload_none: bool = False
    has_timeout: bool = False
    reply_reads: Set[str] = field(default_factory=set)
    #: payload key -> taint description for tainted values
    taints: Dict[str, str] = field(default_factory=dict)


@dataclass
class HandlerReg:
    """One ``endpoint.on(kind, handler)`` registration site."""

    path: str
    line: int
    col: int
    kind: KindRef
    handler: Optional[str]  # terminal name of the handler expression
    func: Optional[FuncKey]


@dataclass
class FuncFacts:
    """Per-function facts, merged across same-named defs in a file."""

    path: str
    name: str
    line: int = 0
    params: Tuple[str, ...] = ()  # excluding self/cls
    payload_reads: Set[str] = field(default_factory=set)
    #: each dict literal (or name-resolved dict) returned by the function
    return_dict_keys: List[FrozenSet[str]] = field(default_factory=list)
    #: names of functions whose return value this one returns verbatim
    return_delegates: Set[str] = field(default_factory=set)
    returns_value: bool = False
    catches_timeout: bool = False
    #: ordered ("acquire"|"release", lock-name-text, line) operations
    lock_ops: List[Tuple[str, str, int]] = field(default_factory=list)


#: one classified call argument for constant propagation:
#: ("const", value) | ("param", caller FuncKey, param name) | ("dyn",)
ArgVal = Tuple


@dataclass
class CallRecord:
    """A call to ``callee`` with classified string arguments."""

    caller: Optional[FuncKey]
    callee: str
    args: Dict[int, ArgVal]
    kwargs: Dict[str, ArgVal]


@dataclass
class ProjectIR:
    """Everything the flow checks need, for the whole analyzed tree."""

    sends: List[SendSite] = field(default_factory=list)
    regs: List[HandlerReg] = field(default_factory=list)
    funcs: Dict[FuncKey, FuncFacts] = field(default_factory=dict)
    calls_by_name: Dict[str, List[CallRecord]] = field(default_factory=dict)
    #: path -> line -> rule names disabled on that line (lint syntax)
    suppressions: Dict[str, Dict[int, Set[str]]] = field(default_factory=dict)
    files: List[str] = field(default_factory=list)

    def func(self, key: FuncKey) -> FuncFacts:
        facts = self.funcs.get(key)
        if facts is None:
            facts = self.funcs[key] = FuncFacts(path=key[0], name=key[1])
        return facts

    def resolve_func(self, path: str, name: str) -> Optional[FuncFacts]:
        """Same-file first, then unique project-wide match by name."""
        facts = self.funcs.get((path, name))
        if facts is not None:
            return facts
        matches = [f for k, f in self.funcs.items() if k[1] == name]
        return matches[0] if len(matches) == 1 else None


# --------------------------------------------------------------------- #
# the walker
# --------------------------------------------------------------------- #

class _Frame:
    """Dataflow context for one function body."""

    __slots__ = (
        "facts", "dict_keys", "dict_taint", "str_consts",
        "reply_vars", "payload_aliases", "taints",
    )

    def __init__(self, facts: FuncFacts) -> None:
        self.facts = facts
        #: var -> known payload-dict keys (augmented by subscript stores)
        self.dict_keys: Dict[str, Set[str]] = {}
        #: var -> {key: taint description}
        self.dict_taint: Dict[str, Dict[str, str]] = {}
        self.str_consts: Dict[str, str] = {}
        #: var -> the SendSite whose reply it holds
        self.reply_vars: Dict[str, SendSite] = {}
        #: vars aliasing some ``msg.payload``
        self.payload_aliases: Set[str] = set()
        #: var -> taint description
        self.taints: Dict[str, str] = {}


class _FileWalker:
    """One recursive pass: lint dispatch + IR collection."""

    def __init__(
        self,
        path: str,
        ctx: FileContext,
        dispatch: Dict[type, List[Rule]],
        ir: Optional[ProjectIR],
    ) -> None:
        self.path = path
        self.ctx = ctx
        self.dispatch = dispatch
        self.ir = ir
        self.frames: List[_Frame] = []
        self._site_by_node: Dict[int, SendSite] = {}

    # -- helpers ---------------------------------------------------- #

    @property
    def frame(self) -> Optional[_Frame]:
        return self.frames[-1] if self.frames else None

    def _func_key(self) -> Optional[FuncKey]:
        f = self.frame
        return (f.facts.path, f.facts.name) if f else None

    @staticmethod
    def _unwrap(expr: Optional[ast.AST]) -> Optional[ast.AST]:
        """Strip ``yield`` / ``yield from`` / ``await`` wrappers."""
        while isinstance(expr, (ast.Yield, ast.YieldFrom, ast.Await)):
            expr = expr.value
        return expr

    @staticmethod
    def _const_str(node: Optional[ast.AST]) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    def _param_owner(self, name: str) -> Optional[FuncKey]:
        """Innermost enclosing function having ``name`` as a parameter."""
        for frame in reversed(self.frames):
            if name in frame.facts.params:
                return (frame.facts.path, frame.facts.name)
        return None

    def _classify_kind(self, expr: ast.AST) -> Optional[KindRef]:
        """Classify a kind expression; ``None`` means pure forwarding
        (``msg.kind`` passed through verbatim — not a construction)."""
        text = ast.unparse(expr)
        const = self._const_str(expr)
        if const is not None:
            return KindRef(text=text, const=const)
        if isinstance(expr, ast.Attribute) and expr.attr == "kind":
            return None  # forwarding an existing message's kind
        if isinstance(expr, ast.JoinedStr) and expr.values:
            suffix = self._const_str(expr.values[-1])
            if suffix is not None and all(
                isinstance(v, ast.FormattedValue) for v in expr.values[:-1]
            ):
                return KindRef(text=text, pattern="*" + suffix)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            suffix = self._const_str(expr.right)
            if suffix is not None:
                return KindRef(text=text, pattern="*" + suffix)
        if isinstance(expr, ast.Name):
            frame = self.frame
            if frame and expr.id in frame.str_consts:
                return KindRef(text=text, const=frame.str_consts[expr.id])
            owner = self._param_owner(expr.id)
            if owner is not None:
                return KindRef(
                    text=text,
                    param=(owner, expr.id),
                    machinery=owner[1] in MACHINERY_FUNCS,
                )
        return KindRef(text=text)  # dynamic

    def _taint_of(self, expr: ast.AST) -> Optional[str]:
        """Nondeterminism taint of an expression, if any."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "unordered set"
        if isinstance(expr, ast.Name):
            frame = self.frame
            return frame.taints.get(expr.id) if frame else None
        if isinstance(expr, ast.BinOp):
            return self._taint_of(expr.left) or self._taint_of(expr.right)
        if isinstance(expr, (ast.Yield, ast.YieldFrom, ast.Await)):
            return None
        if isinstance(expr, ast.Call):
            name = dotted(expr.func)
            if len(name) >= 2 and name[-2:] in _WALL_CLOCK:
                return f"wall clock {'.'.join(name)}()"
            if name[-1] == "default_rng":
                return "unseeded default_rng()"
            if name[-1] in ("set", "frozenset"):
                return "unordered set()"
            if name[-1] == "sorted":
                return None  # sorting cleanses ordering taint
            if name[-1] in ("list", "tuple") and expr.args:
                return self._taint_of(expr.args[0])
        return None

    def _payload_facts(self, expr: Optional[ast.AST]):
        """(keys, is_none, taints) for a payload expression."""
        expr = self._unwrap(expr)
        if expr is None or (
            isinstance(expr, ast.Constant) and expr.value is None
        ):
            return None, True, {}
        if isinstance(expr, ast.Dict):
            keys: Set[str] = set()
            taints: Dict[str, str] = {}
            for k, v in zip(expr.keys, expr.values):
                key = self._const_str(k)
                if key is None:
                    return None, False, {}  # ** unpack / computed key
                keys.add(key)
                taint = self._taint_of(v)
                if taint:
                    taints[key] = taint
            return frozenset(keys), False, taints
        if isinstance(expr, ast.Name):
            frame = self.frame
            if frame and expr.id in frame.dict_keys:
                return (
                    frozenset(frame.dict_keys[expr.id]),
                    False,
                    dict(frame.dict_taint.get(expr.id, ())),
                )
        return None, False, {}

    # -- traversal --------------------------------------------------- #

    def walk(self, node: ast.AST) -> None:
        cls = node.__class__
        rules = self.dispatch.get(cls)
        if rules:
            for rule in rules:
                rule.check(node, self.ctx)
        handler = self._HANDLERS.get(cls)
        if handler is not None:
            handler(self, node)
        else:
            self._walk_children(node)

    def _walk_children(self, node: ast.AST) -> None:
        # Hot path: iterate field values straight off the instance dict
        # (insertion order == field order, so source order is kept)
        # instead of ast.iter_child_nodes, whose iter_fields/getattr
        # generators dominate whole-tree walk profiles.
        walk = self.walk
        for value in node.__dict__.values():
            if value.__class__ is list:
                for item in value:
                    if isinstance(item, ast.AST):
                        walk(item)
            elif isinstance(value, ast.AST):
                walk(value)

    def _visit_function(self, node) -> None:
        if self.ir is None:
            self._walk_children(node)
            return
        args = node.args
        params = [
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        facts = self.ir.func((self.path, node.name))
        if not facts.params:
            facts.params = tuple(params)
        if not facts.line:
            facts.line = node.lineno
        self.frames.append(_Frame(facts))
        try:
            self._walk_children(node)
        finally:
            self.frames.pop()

    def _visit_try(self, node: ast.Try) -> None:
        frame = self.frame
        if frame is not None:
            for h in node.handlers:
                types = []
                if isinstance(h.type, ast.Tuple):
                    types = list(h.type.elts)
                elif h.type is not None:
                    types = [h.type]
                for t in types:
                    if dotted(t)[-1] == "RequestTimeout":
                        frame.facts.catches_timeout = True
        self._walk_children(node)

    def _visit_return(self, node: ast.Return) -> None:
        self._walk_children(node)
        frame = self.frame
        if frame is None or node.value is None:
            return
        value = self._unwrap(node.value)
        if isinstance(value, ast.Constant) and value.value is None:
            return
        facts = frame.facts
        facts.returns_value = True
        if isinstance(value, ast.Dict):
            keys = {self._const_str(k) for k in value.keys}
            if None not in keys:
                facts.return_dict_keys.append(frozenset(keys))
        elif isinstance(value, ast.Name) and value.id in frame.dict_keys:
            facts.return_dict_keys.append(
                frozenset(frame.dict_keys[value.id])
            )
        elif isinstance(value, ast.Call):
            facts.return_delegates.add(dotted(value.func)[-1])

    def _visit_assign(self, node: ast.Assign) -> None:
        self._walk_children(node)
        if len(node.targets) == 1:
            self._bind(node.targets[0], node.value)

    def _visit_annassign(self, node: ast.AnnAssign) -> None:
        self._walk_children(node)
        if node.value is not None:
            self._bind(node.target, node.value)

    def _bind(self, target: ast.AST, value: ast.AST) -> None:
        frame = self.frame
        if frame is None:
            return
        if isinstance(target, ast.Subscript):
            # payload["key"] = value — augment a tracked dict
            base, key = target.value, self._const_str(target.slice)
            if (
                isinstance(base, ast.Name)
                and key is not None
                and base.id in frame.dict_keys
            ):
                frame.dict_keys[base.id].add(key)
                taint = self._taint_of(value)
                if taint:
                    frame.dict_taint.setdefault(base.id, {})[key] = taint
            return
        if not isinstance(target, ast.Name):
            return
        name = target.id
        # rebinding invalidates every previous classification
        frame.dict_keys.pop(name, None)
        frame.dict_taint.pop(name, None)
        frame.str_consts.pop(name, None)
        frame.reply_vars.pop(name, None)
        frame.payload_aliases.discard(name)
        frame.taints.pop(name, None)

        value = self._unwrap(value)
        if value is None:
            return
        if isinstance(value, ast.Dict):
            keys: Set[str] = set()
            taints: Dict[str, str] = {}
            for k, v in zip(value.keys, value.values):
                key = self._const_str(k)
                if key is None:
                    return  # not a statically known dict
                keys.add(key)
                taint = self._taint_of(v)
                if taint:
                    taints[key] = taint
            frame.dict_keys[name] = keys
            if taints:
                frame.dict_taint[name] = taints
            return
        const = self._const_str(value)
        if const is not None:
            frame.str_consts[name] = const
            return
        if isinstance(value, ast.Call):
            site = self._site_by_node.get(id(value))
            if site is not None and site.api == "request":
                frame.reply_vars[name] = site
                return
        if isinstance(value, ast.Attribute) and value.attr == "payload":
            frame.payload_aliases.add(name)
            return
        taint = self._taint_of(value)
        if taint:
            frame.taints[name] = taint

    def _visit_subscript(self, node: ast.Subscript) -> None:
        self._walk_children(node)
        if not isinstance(node.ctx, ast.Load):
            return
        frame = self.frame
        if frame is None:
            return
        key = self._const_str(node.slice)
        base = node.value
        if isinstance(base, ast.Attribute) and base.attr == "payload":
            if key is not None:
                frame.facts.payload_reads.add(key)
        elif isinstance(base, ast.Name):
            if base.id in frame.payload_aliases and key is not None:
                frame.facts.payload_reads.add(key)
            elif base.id in frame.reply_vars and key is not None:
                frame.reply_vars[base.id].reply_reads.add(key)

    def _visit_call(self, node: ast.Call) -> None:
        if self.ir is not None:
            self._collect_call(node)
        self._walk_children(node)

    def _collect_call(self, node: ast.Call) -> None:
        func = node.func
        args = node.args
        kw = node.keywords
        kwargs = {k.arg: k.value for k in kw if k.arg} if kw else {}
        frame = self.frame
        callee = ""

        if isinstance(func, ast.Attribute):
            attr = callee = func.attr
            if attr in ("send", "request") and len(args) >= 2:
                self._send_site(
                    node, attr,
                    kind_expr=args[1],
                    payload_expr=(
                        args[2] if len(args) >= 3 else kwargs.get("payload")
                    ),
                    has_timeout=("timeout" in kwargs or len(args) >= 5),
                )
            elif attr == "deliver" and len(args) >= 3:
                self._send_site(
                    node, "deliver",
                    kind_expr=args[1],
                    payload_expr=args[2],
                    has_timeout=False,
                )
            elif (
                attr == "on"
                and len(args) >= 2
                and set(dotted(func.value)) & _ENDPOINT_TOKENS
            ):
                kind = self._classify_kind(args[0])
                if kind is not None:
                    handler = dotted(args[1])[-1] or None
                    self.ir.regs.append(HandlerReg(
                        path=self.path, line=node.lineno,
                        col=node.col_offset, kind=kind,
                        handler=handler, func=self._func_key(),
                    ))
            elif (
                attr in ("acquire", "release")
                and args
                and frame is not None
                and set(dotted(func.value)) & _LOCK_TOKENS
            ):
                frame.facts.lock_ops.append(
                    (attr, ast.unparse(args[0]), node.lineno)
                )
            elif attr == "get" and args and frame is not None:
                key = self._const_str(args[0])
                base = func.value
                if key is not None:
                    if (
                        isinstance(base, ast.Attribute)
                        and base.attr == "payload"
                    ) or (
                        isinstance(base, ast.Name)
                        and base.id in frame.payload_aliases
                    ):
                        frame.facts.payload_reads.add(key)
                    elif (
                        isinstance(base, ast.Name)
                        and base.id in frame.reply_vars
                    ):
                        frame.reply_vars[base.id].reply_reads.add(key)
        elif isinstance(func, ast.Name):
            callee = func.id
            if callee == "Message":
                kind_expr = kwargs.get("kind")
                if kind_expr is not None:
                    self._send_site(
                        node, "message",
                        kind_expr=kind_expr,
                        payload_expr=kwargs.get("payload"),
                        has_timeout=False,
                    )

        # call record for interprocedural constant propagation
        if callee and len(args) <= 10:
            rec = CallRecord(
                caller=self._func_key(), callee=callee, args={}, kwargs={}
            )
            for i, a in enumerate(args):
                rec.args[i] = self._classify_arg(a)
            for k, v in kwargs.items():
                rec.kwargs[k] = self._classify_arg(v)
            self.ir.calls_by_name.setdefault(callee, []).append(rec)

    def _classify_arg(self, expr: ast.AST) -> ArgVal:
        const = self._const_str(expr)
        if const is not None:
            return ("const", const)
        if isinstance(expr, ast.Name):
            frame = self.frame
            if frame and expr.id in frame.str_consts:
                return ("const", frame.str_consts[expr.id])
            owner = self._param_owner(expr.id)
            if owner is not None:
                return ("param", owner, expr.id)
        return ("dyn",)

    def _send_site(
        self,
        node: ast.Call,
        api: str,
        kind_expr: ast.AST,
        payload_expr: Optional[ast.AST],
        has_timeout: bool,
    ) -> None:
        kind = self._classify_kind(kind_expr)
        if kind is None:
            return  # forwarding an existing message, not a construction
        keys, is_none, taints = self._payload_facts(payload_expr)
        site = SendSite(
            path=self.path, line=node.lineno, col=node.col_offset,
            api=api, kind=kind, func=self._func_key(),
            payload_keys=keys, payload_none=is_none,
            has_timeout=has_timeout, taints=taints,
        )
        self.ir.sends.append(site)
        self._site_by_node[id(node)] = site

    _HANDLERS = {
        ast.FunctionDef: _visit_function,
        ast.AsyncFunctionDef: _visit_function,
        ast.Try: _visit_try,
        ast.Return: _visit_return,
        ast.Assign: _visit_assign,
        ast.AnnAssign: _visit_annassign,
        ast.Subscript: _visit_subscript,
        ast.Call: _visit_call,
    }


# --------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------- #

def collect_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(str(f) for f in p.rglob("*.py"))
        elif p.suffix == ".py":
            files.append(str(p))
    return sorted(set(files))


@contextmanager
def _gc_paused():
    """Suspend the cyclic GC for the duration of one indexing pass.

    A full-tree parse allocates millions of short-lived AST nodes; the
    generational collector walks them repeatedly for zero reclaim. The
    pass is bounded (one tree at a time is live), so pausing is safe
    and measurably faster. No-op when GC was already off.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def index_project(
    paths: Iterable[str],
    rules: Sequence[Rule] = (),
    flow_paths: Optional[Iterable[str]] = None,
) -> Tuple[List[LintFinding], ProjectIR]:
    """Parse every file once; run lint rules and collect the flow IR.

    ``paths`` is the lint scope. ``flow_paths`` is the IR scope —
    ``None`` means "same as ``paths``"; pass ``()`` for a lint-only run
    (zero IR overhead). Files in either scope are parsed exactly once.
    """
    lint_files = set(collect_files(paths))
    flow_files = (
        set(lint_files) if flow_paths is None
        else set(collect_files(flow_paths))
    )
    ir = ProjectIR()
    findings: List[LintFinding] = []
    with _gc_paused():
        for path in sorted(lint_files | flow_files):
            try:
                source = Path(path).read_text()
                tree = ast.parse(source, filename=path)
            except (OSError, SyntaxError) as exc:
                findings.append(LintFinding(
                    rule="parse", path=path, line=1, col=0,
                    message=f"could not analyze: {exc}",
                ))
                continue
            dispatch: Dict[type, List[Rule]] = {}
            if path in lint_files:
                for rule in rules:
                    if rule.applies_to(path):
                        for node_type in rule.nodes:
                            dispatch.setdefault(node_type, []).append(rule)
            in_flow = path in flow_files
            if not dispatch and not in_flow:
                continue  # parsed for syntax safety only; nothing to collect
            ctx = FileContext(path, source)
            if in_flow:
                _FileWalker(path, ctx, dispatch, ir).walk(tree)
                ir.suppressions[path] = ctx.suppressions
                ir.files.append(path)
            else:
                # lint-only file: flat dispatch, no IR context to track
                empty: tuple = ()
                for node in ast.walk(tree):
                    for rule in dispatch.get(type(node), empty):
                        rule.check(node, ctx)
            findings.extend(ctx.findings)
    for rule in rules:
        findings.extend(rule.finish())
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, ir
