"""The runtime protocol sanitizer.

Opt-in (``SystemConfig.sanitize=True`` or ``python -m repro check``): a
:class:`ProtocolSanitizer` attaches to a built system through three
existing hook layers — the duck-typed ``monitor`` slots on every site's
:class:`~repro.core.av_table.AVTable` and
:class:`~repro.db.locks.LockManager`, the network's observer tap, and
the observability hub's event bus — and audits every event against the
paper's invariants (see :mod:`repro.analysis.invariants` and
:mod:`repro.analysis.hb`).  No protocol code changes behaviour when the
sanitizer is absent; each hook costs one ``is None`` check.

Severity policy
---------------
Volume that vanishes *conservatively* (a grant or rebalancer push
dropped in transit: headroom shrinks, nothing can over-spend) is a
warning.  A dropped ``prop.push`` is a **violation**: the owed balance
was already claimed by the sender, so the delta can never reach the
replica again — permanent divergence.  Stale-belief findings are
warnings: the paper's design tolerates them (the gather loop retries),
but the counts are reported so a regression in belief freshness is
visible.

With the robustness layer on, both downgrade to counted non-events: a
dropped *leased* transfer reverts at the grantor (``av.lease.*``
lifecycle audited by :class:`~repro.analysis.invariants.LeaseAudit`),
and a dropped reliable-session delivery (``_rel`` envelope) is
retransmitted while the owed balance stays retained.  The chaos harness
asserts the conservative-loss warnings never fire under it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.hb import CausalOrder
from repro.analysis.invariants import (
    AVConservation,
    HoldRegistry,
    LeaseAudit,
    LockAudit,
    OverloadAudit,
    SanitizerReport,
    Violation,
)


class ProtocolSanitizer:
    """Attaches to a :class:`~repro.cluster.system.DistributedSystem`."""

    EPS = 1e-6

    def __init__(self, max_hb_samples: int = 10) -> None:
        self.report = SanitizerReport()
        self.conservation = AVConservation(self.report)
        self.holds = HoldRegistry(self.report)
        self.locks = LockAudit(self.report)
        self.leases = LeaseAudit(self.report)
        self.overload = OverloadAudit(self.report)
        self.causal = CausalOrder(max_samples=max_hb_samples)
        #: drops of leased transfers (reverted, not lost) and of
        #: reliable-session messages (retransmitted) — counted non-events
        self.lease_covered_drops = 0
        self.rel_covered_drops = 0
        self.events = 0
        self.system = None
        self._env = None
        #: defined sites per item (tracks full undefinition epochs)
        self._defined: Dict[str, set] = {}
        #: av.request msg_id -> item (to classify the reply)
        self._av_requests: Dict[int, str] = {}
        #: in-flight grant replies: msg_id -> (item, granted)
        self._grants: Dict[int, Tuple[str, float]] = {}
        #: in-flight av.push volume: msg_id -> (item, amount)
        self._pushes: Dict[int, Tuple[str, float]] = {}
        #: in-flight propagation deltas: msg_id -> (item, delta, dst, ctx)
        self._props: Dict[int, tuple] = {}
        self._finished = False

    # ------------------------------------------------------------- #
    # wiring
    # ------------------------------------------------------------- #

    def attach(self, system) -> "ProtocolSanitizer":
        """Install hooks on every site and fold in the bootstrap state."""
        self.system = system
        self._env = system.env
        for name in sorted(system.sites):
            site = system.sites[name]
            accel = site.accelerator
            accel.av_table.monitor = self
            accel.locks.monitor = self
            for item, volume in sorted(accel.av_table.items()):
                self.conservation.baseline(item, volume)
                self._defined.setdefault(item, set()).add(name)
        system.network.observers.append(self._on_message)
        system.obs.event_subscribers.append(self._on_emit)
        return self

    @property
    def now(self) -> float:
        return self._env.now if self._env is not None else 0.0

    # ------------------------------------------------------------- #
    # AVTable monitor (duck-typed)
    # ------------------------------------------------------------- #

    def av_event(self, table, op: str, item: str, amount: float, hold=None) -> None:
        self.events += 1
        site, now, cons = table.site, self.now, self.conservation
        if op == "add":
            cons.table_delta(item, amount, site, now)
        elif op == "take":
            cons.table_delta(item, -amount, site, now)
        elif op == "define":
            # New headroom first, then the table entry: the sum never
            # transiently exceeds the bound.
            cons.headroom_delta(item, amount, site, now)
            cons.table_delta(item, amount, site, now)
            self._defined.setdefault(item, set()).add(site)
        elif op == "undefine":
            cons.table_delta(item, -amount, site, now)
            cons.headroom_delta(item, -amount, site, now)
            defined = self._defined.get(item)
            if defined is not None:
                defined.discard(site)
                if not defined:
                    self._end_epoch(item, now)
        elif op == "hold.open":
            self.holds.on_open(site, hold, now)
        elif op == "hold.add":
            cons.holds_delta(item, amount, site, now)
        elif op == "hold.consume":
            # The full held volume leaves the holds account and the
            # needed part leaves headroom; the excess re-enters the
            # table via a separate "add" right after.
            cons.holds_delta(item, -hold.amount, site, now)
            cons.headroom_delta(item, -amount, site, now)
            self.holds.on_close(site, hold, now)
        elif op == "hold.release":
            cons.holds_delta(item, -amount, site, now)
            self.holds.on_close(site, hold, now)
        elif op == "hold.reclose":
            self.holds.on_reclose(site, hold, now)

    def _end_epoch(self, item: str, now: float) -> None:
        """No site defines ``item`` any more: close its AV epoch.

        Residual headroom (volume conservatively lost in transit during
        the epoch) must not leak into a future re-definition of the
        item, so the accounts reset to zero.  A *negative* residual
        would mean more AV existed than headroom — report it.
        """
        cons = self.conservation
        residual = cons.headroom.get(item, 0.0)
        if residual < -self.EPS:
            self.report.violations.append(Violation(
                rule="av.conservation",
                item=item,
                time=now,
                detail=f"negative residual headroom {residual:g} at undefinition",
            ))
        cons.headroom[item] = 0.0
        cons.av_sum[item] = 0.0

    # ------------------------------------------------------------- #
    # LockManager monitor (duck-typed)
    # ------------------------------------------------------------- #

    def lock_event(self, manager, op, item, owner, mode, span_id,
                   holders, queue) -> None:
        self.events += 1
        name = manager.name
        site = name[:-len(".locks")] if name.endswith(".locks") else name
        self.locks.on_event(site, op, item, owner, span_id, holders, queue, self.now)

    # ------------------------------------------------------------- #
    # network observer
    # ------------------------------------------------------------- #

    def _on_message(self, event: str, now: float, msg) -> None:
        self.events += 1
        if event == "send":
            self.causal.on_send(msg.src, msg.msg_id)
        elif event == "recv":
            self.causal.on_recv(msg.dst, msg.msg_id)
        else:
            self.causal.on_drop(msg.msg_id)

        kind = msg.kind
        # The hierarchical pool kinds (leaf→aggregator ask, aggregator→
        # parent refill) move AV exactly like a peer grant, so the same
        # request/reply transit accounting covers every level.
        if kind in ("av.request", "av.pool.request", "av.pool.refill"):
            if event == "send":
                self._av_requests[msg.msg_id] = msg.payload["item"]
            elif event == "drop":
                self._av_requests.pop(msg.msg_id, None)
        elif kind in (
            "av.request.reply",
            "av.pool.request.reply",
            "av.pool.refill.reply",
        ):
            self._track_grant(event, now, msg)
        elif kind == "av.push":
            self._track_push(event, now, msg)
        elif kind == "prop.push":
            self._track_prop(event, now, msg)

    def _track_grant(self, event: str, now: float, msg) -> None:
        if event == "send":
            item = self._av_requests.pop(msg.reply_to, None)
            if item is None:
                return
            granted = msg.payload.get("granted", 0.0)
            self.causal.on_grant(
                msg.src, item, msg.payload.get("av_after", 0.0), now, msg.msg_id
            )
            if granted > 0:
                self._grants[msg.msg_id] = (item, granted)
                self.conservation.transit_delta(item, granted, now)
            return
        entry = self._grants.pop(msg.msg_id, None)
        if entry is None:
            return
        item, granted = entry
        self.conservation.transit_delta(item, -granted, now)
        if event == "drop":
            if msg.payload.get("lease") is not None:
                # The grantor's lease reverts this volume; counted, not
                # warned — the chaos harness asserts no warning fires.
                self.lease_covered_drops += 1
                return
            # Conservative loss: the granted volume exists nowhere now.
            self.report.warnings.append(Violation(
                rule="av.grant-lost",
                item=item,
                site=msg.dst,
                msg_id=msg.msg_id,
                time=now,
                severity="warning",
                detail=f"grant of {granted:g} dropped in transit to {msg.dst}",
            ))

    def _track_push(self, event: str, now: float, msg) -> None:
        if event == "send":
            item, amount = msg.payload["item"], msg.payload["amount"]
            if amount > 0:
                self._pushes[msg.msg_id] = (item, amount)
                self.conservation.transit_delta(item, amount, now)
            return
        entry = self._pushes.pop(msg.msg_id, None)
        if entry is None:
            return
        item, amount = entry
        self.conservation.transit_delta(item, -amount, now)
        if event == "drop":
            if msg.payload.get("lease") is not None:
                self.lease_covered_drops += 1
                return
            self.report.warnings.append(Violation(
                rule="av.push-lost",
                item=item,
                site=msg.dst,
                msg_id=msg.msg_id,
                time=now,
                severity="warning",
                detail=f"rebalancer push of {amount:g} dropped in transit to {msg.dst}",
            ))

    def _track_prop(self, event: str, now: float, msg) -> None:
        if event == "send":
            ctx = msg.payload.get("_obs")
            self._props[msg.msg_id] = (
                msg.payload["item"], msg.payload["delta"], msg.dst, ctx
            )
            return
        entry = self._props.pop(msg.msg_id, None)
        if entry is None or event == "recv":
            return
        if isinstance(msg.payload, dict) and "_rel" in msg.payload:
            # Reliable-session delivery: the sender retransmits (the
            # owed balance is still retained), so the drop only delays
            # convergence. Counted, never a violation.
            self.rel_covered_drops += 1
            return
        item, delta, dst, ctx = entry
        # There is no retransmit path for propagation deltas: the
        # sender already claimed the owed balance, so this replica can
        # never converge for the item — a real divergence, not a
        # conservative loss.
        self.report.violations.append(Violation(
            rule="prop.lost",
            item=item,
            site=dst,
            trace_id=ctx["trace"] if ctx else None,
            span_id=ctx["span"] if ctx else None,
            msg_id=msg.msg_id,
            time=now,
            detail=f"propagation delta {delta:g} to {dst} dropped — replica diverges",
        ))

    # ------------------------------------------------------------- #
    # obs event bus
    # ------------------------------------------------------------- #

    def _on_emit(self, kind: str, now: float, fields: dict) -> None:
        self.events += 1
        if kind == "av.mint":
            self.conservation.headroom_delta(
                fields["item"], fields["amount"], fields["site"], now
            )
        elif kind == "av.spend":
            self.conservation.headroom_delta(
                fields["item"], -fields["amount"], fields["site"], now
            )
        elif kind == "av.select":
            self.causal.on_select(
                fields["site"], fields["item"], fields["target"],
                fields.get("believed"), now,
                trace=fields.get("trace"), span=fields.get("span"),
            )
        elif kind == "av.lease.open":
            self.leases.on_open(
                fields["site"], fields["lease"], fields["item"],
                fields["amount"], fields["holder"], now,
            )
        elif kind == "av.lease.discharge":
            self.leases.on_resolve(fields["site"], fields["lease"], "discharge", now)
        elif kind == "av.lease.revert":
            self.leases.on_resolve(fields["site"], fields["lease"], "revert", now)
        elif kind == "av.lease.conflict":
            self.leases.on_conflict(
                fields["site"], fields["holder"], fields["lease"], now
            )
        elif kind == "ovl.shed":
            self.overload.on_shed(fields["site"], fields["retry_after"], now)
        elif kind == "ovl.transition":
            self.overload.on_transition(
                fields["site"], fields["src"], fields["dst"], now
            )
        elif kind == "ovl.demote":
            self.overload.on_demote(fields["site"], fields["item"], now)
        elif kind == "ovl.promote":
            self.overload.on_promote(fields["site"], fields["item"], now)
        elif kind == "ovl.trip":
            self.overload.on_trip(fields["site"], now)

    # ------------------------------------------------------------- #
    # teardown
    # ------------------------------------------------------------- #

    def finish(self) -> SanitizerReport:
        """Run the end-of-run audits and return the report (idempotent)."""
        if self._finished:
            return self.report
        self._finished = True
        now = self.now
        report = self.report

        self.holds.finish(now)
        self.leases.finish(now)
        self.overload.finish(now)
        self._drift_audit(now)
        self._headroom_audit(now)

        for item in sorted(self.conservation.in_flight):
            amount = self.conservation.in_flight[item]
            if abs(amount) > self.EPS:
                report.warnings.append(Violation(
                    rule="net.in-flight",
                    item=item,
                    time=now,
                    severity="warning",
                    detail=f"{amount:g} AV still in transit at teardown (undrained run?)",
                ))

        if self.causal.stale_races:
            report.warnings.append(Violation(
                rule="hb.stale-belief-race",
                time=now,
                severity="warning",
                detail=(
                    f"{self.causal.stale_races} selection(s) concurrent with an"
                    " invalidating grant (tolerated by design; high rates mean"
                    " belief refresh lags)"
                ),
            ))
        if self.causal.belief_lags:
            report.warnings.append(Violation(
                rule="hb.belief-lag",
                time=now,
                severity="warning",
                detail=(
                    f"{self.causal.belief_lags} selection(s) causally after an"
                    " invalidating grant yet acting on the stale level"
                ),
            ))
        report.hb_samples = list(self.causal.samples)

        backlog = 0
        if self.system is not None:
            for site in self.system.sites.values():
                backlog += len(site.accelerator.owed)

        report.counters.update({
            "events": self.events,
            "conservation_checks": self.conservation.checks,
            "holds_opened": self.holds.opened,
            "holds_closed": self.holds.closed,
            "stale_belief_races": self.causal.stale_races,
            "belief_lags": self.causal.belief_lags,
            "deadlocks": self.locks.deadlocks,
            "unsynced_balances": backlog,
            "leases_opened": self.leases.opened,
            "leases_discharged": self.leases.discharged,
            "leases_reverted": self.leases.reverted,
            "lease_covered_drops": self.lease_covered_drops,
            "rel_covered_drops": self.rel_covered_drops,
        })
        if self.overload.events:
            # Only runs with the overload layer attached report these:
            # adding keys unconditionally would perturb the rendered
            # report (and thus the committed digests) of seed runs.
            report.counters.update({
                "overload_sheds": self.overload.sheds,
                "overload_demotions": self.overload.demotions,
                "overload_promotions": self.overload.promotions,
                "overload_transitions": self.overload.transitions,
                "overload_trips": self.overload.trips,
            })
        return report

    def _drift_audit(self, now: float) -> None:
        """Cross-check the incremental table sums against ground truth.

        A mismatch means an AV mutation bypassed the monitor — an
        instrumentation gap, reported so it cannot silently rot.
        """
        if self.system is None:
            return
        actual: Dict[str, float] = {}
        for site in self.system.sites.values():
            for item, volume in site.accelerator.av_table.items():
                actual[item] = actual.get(item, 0.0) + volume
        for item in sorted(set(self.conservation.av_sum) | set(actual)):
            tracked = self.conservation.av_sum.get(item, 0.0)
            real = actual.get(item, 0.0)
            if abs(tracked - real) > self.EPS:
                self.report.violations.append(Violation(
                    rule="sanitizer.drift",
                    item=item,
                    time=now,
                    detail=(
                        f"tracked table sum {tracked:g} != actual {real:g}"
                        " — an AV mutation bypassed the monitor"
                    ),
                ))

    def _headroom_audit(self, now: float) -> None:
        """Headroom must never exceed the ledger's ground-truth stock."""
        if self.system is None:
            return
        ledger = self.system.collector.ledger
        for item in sorted(self._defined):
            if not self._defined[item]:
                continue
            bound = ledger.true_value(item) if item in ledger.items() else None
            if bound is None:
                continue
            headroom = self.conservation.headroom.get(item, 0.0)
            if headroom > bound + self.EPS:
                self.report.violations.append(Violation(
                    rule="av.headroom",
                    item=item,
                    time=now,
                    detail=(
                        f"headroom {headroom:g} exceeds ground-truth stock"
                        f" {bound:g}"
                    ),
                ))
