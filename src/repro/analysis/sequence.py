"""Executable protocol diagrams.

The paper's Figs. 3-5 are hand-drawn message-sequence sketches of the
Delay Update (local and with AV transfer) and the Immediate Update.
Here they are *generated*: a :class:`SequenceRecorder` taps the
network's observer hook, and :func:`render_sequence` lays the captured
messages out as a text sequence diagram — so the diagrams in
``docs/figures/`` are guaranteed to match what the implementation
actually does (the protocol-figures bench regenerates and checks them).

Example output::

    site0           site1           site2
      |               |               |
      |<--av.request--|               |   t=0
      |--av.req.reply>|               |   t=1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.net.message import Message
from repro.net.network import Network


@dataclass(frozen=True, slots=True)
class SequenceEvent:
    """One captured network event."""

    event: str  #: "send" | "recv" | "drop"
    time: float
    msg: Message


class SequenceRecorder:
    """Observer collecting message events for diagram rendering."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.events: List[SequenceEvent] = []
        network.observers.append(self._observe)

    def _observe(self, event: str, time: float, msg: Message) -> None:
        self.events.append(SequenceEvent(event, time, msg))

    def detach(self) -> None:
        """Stop recording."""
        try:
            self.network.observers.remove(self._observe)
        except ValueError:  # pragma: no cover - double detach
            pass

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


def _arrow(
    columns: dict[str, int],
    width: int,
    src: str,
    dst: str,
    label: str,
    dropped: bool = False,
) -> str:
    """One diagram row: an arrow from src's column to dst's column."""
    n_cols = len(columns)
    i, j = columns[src], columns[dst]
    left, right = min(i, j), max(i, j)
    # Build the raw line of lifelines first.
    line = list(" " * (width * n_cols))
    for name, col in columns.items():
        line[col * width + width // 2] = "|"
    start = left * width + width // 2 + 1
    end = right * width + width // 2
    span = end - start
    body = ("x" if dropped else "-") * span
    # Embed the label centred in the arrow body (truncate if needed).
    text = f" {label} "
    if len(text) > span - 2 and span > 6:
        text = f" {label[: span - 7]}~ "
    if len(text) <= span - 2:
        pad = (span - len(text)) // 2
        body = body[:pad] + text + body[pad + len(text):]
    body = list(body)
    if j > i:
        body[-1] = "x" if dropped else ">"
    else:
        body[0] = "x" if dropped else "<"
    line[start:end] = body
    return "".join(line).rstrip()


def render_sequence(
    events: Sequence[SequenceEvent],
    participants: Optional[Sequence[str]] = None,
    width: int = 20,
    show_time: bool = True,
    merge_delivery: bool = True,
) -> str:
    """Render captured events as a text sequence diagram.

    Parameters
    ----------
    events:
        From a :class:`SequenceRecorder`.
    participants:
        Column order; defaults to first-appearance order.
    width:
        Characters per participant column.
    show_time:
        Append ``t=<recv time>`` to each row.
    merge_delivery:
        Draw one arrow per message at its delivery (or drop) time,
        instead of separate send/recv rows — matches how the paper's
        figures are drawn.
    """
    if participants is None:
        seen: dict[str, None] = {}
        for ev in events:
            seen.setdefault(ev.msg.src)
            seen.setdefault(ev.msg.dst)
        participants = list(seen)
    columns = {name: idx for idx, name in enumerate(participants)}

    rows: List[str] = []
    # Header and lifeline row share the arrow rows' column geometry
    # (lifeline at width//2 of each column).
    header = list(" " * (width * len(participants)))
    lifeline = list(" " * (width * len(participants)))
    for name, col in columns.items():
        centre = col * width + width // 2
        start = max(col * width, centre - len(name) // 2)
        header[start : start + len(name)] = name[: width - 1]
        lifeline[centre] = "|"
    rows.append("".join(header).rstrip())
    rows.append("".join(lifeline).rstrip())

    for ev in events:
        if merge_delivery and ev.event == "send":
            continue
        if ev.msg.src not in columns or ev.msg.dst not in columns:
            continue
        label = ev.msg.kind
        line = _arrow(
            columns, width, ev.msg.src, ev.msg.dst, label,
            dropped=ev.event == "drop",
        )
        if show_time:
            line = f"{line}   t={ev.time:g}"
        rows.append(line)
    return "\n".join(rows)


def record_scenario(system, scenario, participants=None, **render_kwargs) -> str:
    """Run ``scenario(env)`` (a generator) on ``system`` and render the
    message sequence it produced.

    Convenience wrapper used by the protocol-figure benches and docs.
    """
    recorder = SequenceRecorder(system.network)
    proc = system.env.process(scenario(system.env), name="scenario")
    system.run(until=proc)
    recorder.detach()
    if participants is None:
        participants = list(system.sites)
    return render_sequence(
        recorder.events, participants=participants, **render_kwargs
    )
