"""Invariant bookkeeping for the runtime protocol sanitizer.

Three independent auditors, each fed by the sanitizer's hooks:

* :class:`AVConservation` — the paper's central safety property.  Per
  item, the allowable volume anywhere in the system (site tables, open
  holds, grants/pushes in transit) may never exceed the *headroom*: the
  bootstrap allocation plus every mint (stock increase, §3.3) minus
  every spend (committed decrement) and undefine.  All hooks notify in
  an order where transients only ever *lower* the left-hand side, so a
  ``<=`` check never false-positives mid-operation.
* :class:`HoldRegistry` — hold lifecycle soundness: every hold opened is
  consumed or released exactly once; anything still open at teardown is
  a leak, any operation on a closed hold is a double-close.
* :class:`LeaseAudit` — AV grant-lease lifecycle (the robustness
  layer's replacement for conservative in-transit loss): every lease
  opened resolves exactly once, as a discharge (holder acked) or a
  revert (transfer definitively lost, volume restored). A second
  resolution or an ack for a reverted lease means volume exists twice;
  a lease still open at teardown is an undrained run.
* :class:`LockAudit` — rebuilds the cross-site wait-for graph from lock
  events, detects cycles (deadlock) the moment the closing edge appears,
  and checks that each transaction token acquires site locks in the
  canonical ascending site order (the total-order rule Immediate Update
  relies on for deadlock freedom).
* :class:`OverloadAudit` — lifecycle soundness of the graceful-
  degradation layer (``ovl.*`` events): every state transition must be
  a legal edge of the degradation ring, every shed must carry a
  positive retry-after hint, and demotion/promotion must alternate per
  (site, item) — a double demotion or an unowed promotion means the
  controller's ledger of owed re-promotions is corrupt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Violation:
    """One structured finding. ``severity`` is ``"violation"`` (the run
    is unsound) or ``"warning"`` (suspicious but tolerated by design)."""

    rule: str
    detail: str
    item: Optional[str] = None
    site: Optional[str] = None
    span_id: Optional[int] = None
    trace_id: Optional[str] = None
    msg_id: Optional[int] = None
    time: float = 0.0
    severity: str = "violation"

    def render(self) -> str:
        where = []
        if self.item is not None:
            where.append(f"item={self.item}")
        if self.site is not None:
            where.append(f"site={self.site}")
        if self.span_id is not None:
            where.append(f"span={self.span_id}")
        if self.trace_id:
            where.append(f"trace={self.trace_id}")
        if self.msg_id is not None:
            where.append(f"msg={self.msg_id}")
        loc = f" [{' '.join(where)}]" if where else ""
        return f"{self.severity}: {self.rule} t={self.time:g}{loc}: {self.detail}"


@dataclass
class SanitizerReport:
    """Everything a sanitized run produced."""

    violations: List[Violation] = field(default_factory=list)
    warnings: List[Violation] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    hb_samples: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_rule(self, rule: str) -> List[Violation]:
        return [v for v in self.violations + self.warnings if v.rule == rule]

    def render(self) -> str:
        lines = [
            "protocol sanitizer report",
            f"  events checked : {self.counters.get('events', 0)}",
            f"  violations     : {len(self.violations)}",
            f"  warnings       : {len(self.warnings)}",
        ]
        for key in sorted(self.counters):
            if key != "events":
                lines.append(f"  {key:<15}: {self.counters[key]}")
        for v in self.violations:
            lines.append("  " + v.render())
        for w in self.warnings:
            lines.append("  " + w.render())
        return "\n".join(lines)


class AVConservation:
    """Incremental per-item conservation sums (O(1) per event)."""

    EPS = 1e-6

    def __init__(self, report: SanitizerReport) -> None:
        self.report = report
        #: Σ AV across site tables, per item
        self.av_sum: Dict[str, float] = {}
        #: Σ open-hold volume, per item
        self.holds_sum: Dict[str, float] = {}
        #: granted/pushed volume currently in transit, per item
        self.in_flight: Dict[str, float] = {}
        #: allocation + mints − spends − undefines, per item
        self.headroom: Dict[str, float] = {}
        self.checks = 0

    # ------------------------------------------------------------- #
    # feeds
    # ------------------------------------------------------------- #

    def baseline(self, item: str, volume: float) -> None:
        """Fold one site's bootstrap allocation into the accounts."""
        self.av_sum[item] = self.av_sum.get(item, 0.0) + volume
        self.headroom[item] = self.headroom.get(item, 0.0) + volume

    def table_delta(self, item: str, delta: float, site: str, now: float) -> None:
        self.av_sum[item] = self.av_sum.get(item, 0.0) + delta
        self.check(item, site, now)

    def holds_delta(self, item: str, delta: float, site: str, now: float) -> None:
        self.holds_sum[item] = self.holds_sum.get(item, 0.0) + delta
        self.check(item, site, now)

    def transit_delta(self, item: str, delta: float, now: float) -> None:
        self.in_flight[item] = self.in_flight.get(item, 0.0) + delta
        self.check(item, None, now)

    def headroom_delta(self, item: str, delta: float, site: str, now: float) -> None:
        self.headroom[item] = self.headroom.get(item, 0.0) + delta
        self.check(item, site, now)

    # ------------------------------------------------------------- #
    # the invariant
    # ------------------------------------------------------------- #

    def lhs(self, item: str) -> float:
        return (
            self.av_sum.get(item, 0.0)
            + self.holds_sum.get(item, 0.0)
            + self.in_flight.get(item, 0.0)
        )

    def check(self, item: str, site: Optional[str], now: float) -> None:
        self.checks += 1
        total = self.lhs(item)
        bound = self.headroom.get(item, 0.0)
        if total > bound + self.EPS:
            self.report.violations.append(Violation(
                rule="av.conservation",
                item=item,
                site=site,
                time=now,
                detail=(
                    f"AV in system {total:g} exceeds headroom {bound:g}"
                    f" (tables {self.av_sum.get(item, 0.0):g}"
                    f" + holds {self.holds_sum.get(item, 0.0):g}"
                    f" + in-flight {self.in_flight.get(item, 0.0):g})"
                ),
            ))


class HoldRegistry:
    """Tracks every hold from open to its single close."""

    def __init__(self, report: SanitizerReport) -> None:
        self.report = report
        #: (site, hold_id) -> (item, ctx, opened_at)
        self.live: Dict[Tuple[str, int], tuple] = {}
        self.opened = 0
        self.closed = 0

    @staticmethod
    def _ctx(hold) -> Tuple[Optional[str], Optional[int]]:
        return hold.ctx if hold.ctx is not None else (None, None)

    def on_open(self, site: str, hold, now: float) -> None:
        self.opened += 1
        self.live[(site, hold.hold_id)] = (hold.item, hold.ctx, now)

    def on_close(self, site: str, hold, now: float) -> None:
        self.closed += 1
        self.live.pop((site, hold.hold_id), None)

    def on_reclose(self, site: str, hold, now: float) -> None:
        trace, span = self._ctx(hold)
        self.report.violations.append(Violation(
            rule="hold.double-close",
            item=hold.item,
            site=site,
            trace_id=trace,
            span_id=span,
            time=now,
            detail=f"operation on already-closed hold #{hold.hold_id}",
        ))

    def finish(self, now: float) -> None:
        for (site, hold_id), (item, ctx, opened_at) in sorted(self.live.items()):
            trace, span = ctx if ctx is not None else (None, None)
            self.report.violations.append(Violation(
                rule="hold.leak",
                item=item,
                site=site,
                trace_id=trace,
                span_id=span,
                time=now,
                detail=(
                    f"hold #{hold_id} opened at t={opened_at:g}"
                    " never consumed or released"
                ),
            ))


class LeaseAudit:
    """Structural audit of the AV grant-lease lifecycle.

    Fed from the ``av.lease.*`` obs events the
    :class:`~repro.core.leases.LeaseTable` emits. Lease ids are local to
    their grantor, so the audit keys on ``(grantor, lease_id)``.
    """

    def __init__(self, report: SanitizerReport) -> None:
        self.report = report
        #: (grantor, lease_id) -> (item, amount, holder, opened_at)
        self.live: Dict[Tuple[str, int], tuple] = {}
        #: how each closed lease resolved: "discharge" | "revert"
        self.resolved: Dict[Tuple[str, int], str] = {}
        self.opened = 0
        self.discharged = 0
        self.reverted = 0

    def on_open(self, grantor: str, lease_id: int, item: str,
                amount: float, holder: str, now: float) -> None:
        key = (grantor, lease_id)
        if key in self.live or key in self.resolved:
            self.report.violations.append(Violation(
                rule="lease.reopen",
                item=item,
                site=grantor,
                time=now,
                detail=f"lease #{lease_id} opened twice",
            ))
            return
        self.opened += 1
        self.live[key] = (item, amount, holder, now)

    def on_resolve(self, grantor: str, lease_id: int, outcome: str,
                   now: float) -> None:
        key = (grantor, lease_id)
        entry = self.live.pop(key, None)
        if entry is None:
            prior = self.resolved.get(key, "never opened")
            self.report.violations.append(Violation(
                rule="lease.double-resolve",
                site=grantor,
                time=now,
                detail=(
                    f"lease #{lease_id} resolved as {outcome}"
                    f" but is not open (prior: {prior})"
                ),
            ))
            return
        self.resolved[key] = outcome
        if outcome == "discharge":
            self.discharged += 1
        else:
            self.reverted += 1

    def on_conflict(self, grantor: str, holder: str, lease_id: int,
                    now: float) -> None:
        self.report.violations.append(Violation(
            rule="lease.conflict",
            site=grantor,
            time=now,
            detail=(
                f"ack from {holder} for already-reverted lease"
                f" #{lease_id} — the leased volume now exists twice"
            ),
        ))

    def finish(self, now: float) -> None:
        for (grantor, lease_id), (item, amount, holder, opened_at) in sorted(
            self.live.items()
        ):
            self.report.warnings.append(Violation(
                rule="lease.unresolved",
                item=item,
                site=grantor,
                time=now,
                severity="warning",
                detail=(
                    f"lease #{lease_id} of {amount:g} to {holder} opened"
                    f" t={opened_at:g} unresolved at teardown"
                    " (undrained run?)"
                ),
            ))


class OverloadAudit:
    """Structural audit of the overload layer's lifecycle events.

    Fed from the ``ovl.*`` obs events the
    :class:`~repro.core.overload.OverloadController` emits. The legal
    transition set is imported from the controller module so the audit
    can never drift from the state machine it checks.
    """

    def __init__(self, report: SanitizerReport) -> None:
        from repro.core.overload import ALLOWED_TRANSITIONS

        self.report = report
        self.legal = {(a.value, b.value) for a, b in ALLOWED_TRANSITIONS}
        #: (site, item) pairs currently demoted (awaiting re-promotion)
        self.demoted: set = set()
        #: last broadcast state per site
        self.last_state: Dict[str, str] = {}
        self.sheds = 0
        self.demotions = 0
        self.promotions = 0
        self.transitions = 0
        self.trips = 0
        self.events = 0

    def on_shed(self, site: str, retry_after: float, now: float) -> None:
        self.events += 1
        self.sheds += 1
        if retry_after <= 0:
            self.report.violations.append(Violation(
                rule="overload.shed-no-retry",
                site=site,
                time=now,
                detail=(
                    f"shed with retry_after={retry_after:g} — callers"
                    " cannot back off without a positive hint"
                ),
            ))

    def on_transition(self, site: str, src: str, dst: str, now: float) -> None:
        self.events += 1
        self.transitions += 1
        self.last_state[site] = dst
        if (src, dst) not in self.legal:
            self.report.violations.append(Violation(
                rule="overload.illegal-transition",
                site=site,
                time=now,
                detail=(
                    f"degradation edge {src} -> {dst} is outside the"
                    " allowed ring"
                ),
            ))

    def on_demote(self, site: str, item: str, now: float) -> None:
        self.events += 1
        key = (site, item)
        if key in self.demoted:
            self.report.violations.append(Violation(
                rule="overload.demote-twice",
                item=item,
                site=site,
                time=now,
                detail=(
                    "item demoted again without an intervening promotion"
                    " — the AV split would be installed twice"
                ),
            ))
            return
        self.demoted.add(key)
        self.demotions += 1

    def on_promote(self, site: str, item: str, now: float) -> None:
        self.events += 1
        key = (site, item)
        if key not in self.demoted:
            self.report.violations.append(Violation(
                rule="overload.promote-unowed",
                item=item,
                site=site,
                time=now,
                detail="promotion of an item this site never demoted",
            ))
            return
        self.demoted.discard(key)
        self.promotions += 1

    def on_trip(self, site: str, now: float) -> None:
        self.events += 1
        self.trips += 1

    def finish(self, now: float) -> None:
        for site, item in sorted(self.demoted):
            self.report.warnings.append(Violation(
                rule="overload.demotion-unreverted",
                item=item,
                site=site,
                time=now,
                severity="warning",
                detail=(
                    "item still demoted at teardown — the owed"
                    " re-promotion never ran (undrained run?)"
                ),
            ))


class LockAudit:
    """Wait-for graph + canonical-order audit over lock events.

    Owner tokens (``imm:…``, ``cls:…``, ``read:…``) are globally unique,
    so edges from different sites' managers compose into one graph.
    """

    def __init__(self, report: SanitizerReport) -> None:
        self.report = report
        #: waiting owner -> set of owners it waits for (with provenance)
        self.wait_for: Dict[str, set] = {}
        #: where each waiting edge set came from: owner -> (site, item, span)
        self._wait_site: Dict[str, tuple] = {}
        #: per-owner ordered list of sites where locks were requested
        self.order_log: Dict[str, List[str]] = {}
        self.deadlocks = 0

    # ------------------------------------------------------------- #
    # event feed
    # ------------------------------------------------------------- #

    def on_event(self, site: str, op: str, item: str, owner: str,
                 span_id: Optional[int], holders: Dict, queue: List,
                 now: float) -> None:
        if op in ("wait", "grant"):
            self._check_order(site, item, owner, span_id, now)
        if op == "wait":
            # The new waiter blocks on every current holder and on every
            # earlier queued request (FIFO: they will be granted first).
            blockers = set(holders)
            for queued_owner, _mode in queue:
                if queued_owner == owner:
                    break
                blockers.add(queued_owner)
            blockers.discard(owner)
            self.wait_for[owner] = blockers
            self._wait_site[owner] = (site, item, span_id)
            self._detect_cycle(owner, now)
        elif op in ("grant", "release"):
            self.wait_for.pop(owner, None)
            self._wait_site.pop(owner, None)

    # ------------------------------------------------------------- #
    # canonical lock order
    # ------------------------------------------------------------- #

    def _check_order(self, site: str, item: str, owner: str,
                     span_id: Optional[int], now: float) -> None:
        log = self.order_log.setdefault(owner, [])
        if site in log:
            return  # reentrant acquire at a site already in the sequence
        if log and site < log[-1]:
            self.report.violations.append(Violation(
                rule="lock.order",
                item=item,
                site=site,
                span_id=span_id,
                time=now,
                detail=(
                    f"token {owner!r} requested {site} after {log[-1]}"
                    " — canonical ascending site order violated"
                ),
            ))
        log.append(site)

    # ------------------------------------------------------------- #
    # deadlock detection
    # ------------------------------------------------------------- #

    def _detect_cycle(self, start: str, now: float) -> None:
        # DFS from the owner whose new edges might close a cycle.
        path: List[str] = []
        seen: set = set()

        def visit(owner: str) -> Optional[List[str]]:
            if owner in path:
                return path[path.index(owner):]
            if owner in seen:
                return None
            seen.add(owner)
            path.append(owner)
            for blocker in sorted(self.wait_for.get(owner, ())):
                cycle = visit(blocker)
                if cycle is not None:
                    return cycle
            path.pop()
            return None

        cycle = visit(start)
        if cycle is None:
            return
        self.deadlocks += 1
        site, item, span_id = self._wait_site.get(start, (None, None, None))
        self.report.violations.append(Violation(
            rule="lock.deadlock",
            item=item,
            site=site,
            span_id=span_id,
            time=now,
            detail="wait-for cycle: " + " -> ".join(cycle + [cycle[0]]),
        ))
