"""Vector clocks and the happens-before belief checker.

The Delay Update *selecting* function acts on piggybacked beliefs that
may be stale (paper §3.3: replies carry the grantor's remaining AV).
Staleness is inherent to the design — the paper accepts it — but two
flavours deserve different treatment when auditing a run:

* **stale-belief race** — the selection is *concurrent* (in the
  happens-before sense) with the grant that invalidated its belief.  No
  message chain could have told the selector; the protocol's retry loop
  absorbs the miss.  Reported as a warning with a count, because a high
  rate signals the belief-refresh machinery is not keeping up.
* **belief lag** — the invalidating grant *happened before* the
  selection (a message chain reached the selecting site after the
  grant), yet the selector still acted on the older level.  This means
  refresh information was available on some path but not applied —
  exactly the class of bug the piggybacking exists to prevent.

Clock discipline: each site ticks on every send and on every receive
(after merging the sender's snapshot), the standard construction, driven
entirely from the network observer tap — no protocol changes needed.
"""

from __future__ import annotations

from typing import Dict, Optional


class VectorClock:
    """A plain site-name → counter vector clock."""

    __slots__ = ("counts",)

    def __init__(self, counts: Optional[Dict[str, int]] = None) -> None:
        self.counts: Dict[str, int] = dict(counts) if counts else {}

    def tick(self, site: str) -> None:
        self.counts[site] = self.counts.get(site, 0) + 1

    def merge(self, other: "VectorClock") -> None:
        for site, n in other.counts.items():
            if n > self.counts.get(site, 0):
                self.counts[site] = n

    def copy(self) -> "VectorClock":
        return VectorClock(self.counts)

    def dominates(self, other: "VectorClock") -> bool:
        """``True`` iff ``self`` >= ``other`` pointwise (other ⪯ self)."""
        return all(self.counts.get(s, 0) >= n for s, n in other.counts.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.dominates(other) and not other.dominates(self)

    def __repr__(self) -> str:
        inner = ",".join(f"{s}:{n}" for s, n in sorted(self.counts.items()))
        return f"<VC {inner}>"


class GrantRecord:
    """The last AV grant served by one (grantor, item) pair."""

    __slots__ = ("clock", "av_after", "time", "msg_id")

    def __init__(self, clock: VectorClock, av_after: float, time: float, msg_id: int) -> None:
        self.clock = clock
        self.av_after = av_after
        self.time = time
        self.msg_id = msg_id


class CausalOrder:
    """Happens-before bookkeeping over the message tap + select events.

    Fed by the sanitizer: :meth:`on_send`/:meth:`on_recv`/:meth:`on_drop`
    from the network observer, :meth:`on_grant` when an ``av.request``
    reply leaves the grantor, and :meth:`on_select` from the protocol's
    ``av.select`` event.  Findings accumulate as ``(kind, detail)``
    warning tuples pulled by the sanitizer.
    """

    #: tolerance when comparing believed levels against granted-after levels
    EPS = 1e-9

    def __init__(self, max_samples: int = 10) -> None:
        self.clocks: Dict[str, VectorClock] = {}
        self._msg_clocks: Dict[int, VectorClock] = {}
        #: last grant per (grantor, item)
        self.last_grant: Dict[tuple, GrantRecord] = {}
        self.stale_races = 0
        self.belief_lags = 0
        self.samples: list = []
        self._max_samples = max_samples

    def _clock(self, site: str) -> VectorClock:
        clock = self.clocks.get(site)
        if clock is None:
            clock = VectorClock()
            self.clocks[site] = clock
        return clock

    # ------------------------------------------------------------- #
    # network tap
    # ------------------------------------------------------------- #

    def on_send(self, src: str, msg_id: int) -> None:
        clock = self._clock(src)
        clock.tick(src)
        self._msg_clocks[msg_id] = clock.copy()

    def on_recv(self, dst: str, msg_id: int) -> None:
        snapshot = self._msg_clocks.pop(msg_id, None)
        clock = self._clock(dst)
        if snapshot is not None:
            clock.merge(snapshot)
        clock.tick(dst)

    def on_drop(self, msg_id: int) -> None:
        self._msg_clocks.pop(msg_id, None)

    # ------------------------------------------------------------- #
    # protocol events
    # ------------------------------------------------------------- #

    def on_grant(self, grantor: str, item: str, av_after: float,
                 time: float, msg_id: int) -> None:
        """Record a grant at the moment its reply is sent (the snapshot
        for ``msg_id`` must already exist, i.e. call after ``on_send``)."""
        snapshot = self._msg_clocks.get(msg_id)
        clock = snapshot if snapshot is not None else self._clock(grantor).copy()
        self.last_grant[(grantor, item)] = GrantRecord(clock, av_after, time, msg_id)

    def on_select(self, site: str, item: str, target: str,
                  believed: Optional[float], time: float,
                  trace: Optional[str] = None, span: Optional[int] = None) -> None:
        """Classify one selecting decision against the target's last grant."""
        if believed is None:
            return
        grant = self.last_grant.get((target, item))
        if grant is None or believed <= grant.av_after + self.EPS:
            return
        # The selector believes the target holds more than it did after
        # its most recent grant: the belief is stale. HB decides which
        # flavour.
        ordered = self._clock(site).dominates(grant.clock)
        kind = "hb.belief-lag" if ordered else "hb.stale-belief-race"
        if ordered:
            self.belief_lags += 1
        else:
            self.stale_races += 1
        if len(self.samples) < self._max_samples:
            self.samples.append({
                "kind": kind,
                "site": site,
                "item": item,
                "target": target,
                "believed": believed,
                "av_after": grant.av_after,
                "time": time,
                "trace": trace,
                "span": span,
            })
