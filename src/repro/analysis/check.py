"""Sanitized experiment replays: ``python -m repro check <experiment>``.

Replays the frozen §4 paper workload (the one Fig. 6 and Table 1 both
count) on a system built with ``sanitize=True`` **and** ``observe=True``
— observation is on so every violation can name the span and trace of
the responsible update — then renders the
:class:`~repro.analysis.invariants.SanitizerReport`.  Zero violations is
the CI gate; warnings (stale-belief counts, conservative in-transit
losses) are informational.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.invariants import SanitizerReport
from repro.cluster import DistributedSystem, paper_config
from repro.core.sync import SyncScheduler
from repro.core.types import UpdateResult
from repro.workload.trace import WorkloadTrace

#: experiments the check runner knows how to replay
CHECKABLE_EXPERIMENTS = ("fig6", "table1")


@dataclass
class CheckRun:
    """One sanitized replay: system, per-update results, and the report."""

    experiment: str
    system: DistributedSystem
    report: SanitizerReport
    results: List[UpdateResult] = field(default_factory=list)
    n_updates: int = 0
    seed: int = 0

    @property
    def ok(self) -> bool:
        return self.report.ok

    def render(self) -> str:
        header = (
            f"check {self.experiment}"
            f" (n={self.n_updates}, seed={self.seed}):"
            f" {'PASS' if self.ok else 'FAIL'}"
        )
        return header + "\n" + self.report.render()


def run_check(
    experiment: str = "fig6",
    n_updates: int = 1000,
    seed: int = 0,
    n_items: int = 10,
    initial_stock: float = 100.0,
    n_retailers: int = 2,
    sync_interval: float = 50.0,
    spacing: float = 1.0,
    trace: Optional[WorkloadTrace] = None,
) -> CheckRun:
    """Replay ``experiment``'s workload under the runtime sanitizer."""
    if experiment not in CHECKABLE_EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment!r};"
            f" choose from {CHECKABLE_EXPERIMENTS}"
        )
    if trace is None:
        from repro.experiments.fig6 import make_paper_trace

        trace = make_paper_trace(
            n_updates, seed, n_items=n_items,
            initial_stock=initial_stock, n_retailers=n_retailers,
        )
    config = paper_config(
        n_items=n_items,
        initial_stock=initial_stock,
        n_retailers=n_retailers,
        seed=seed,
        observe=True,
        sanitize=True,
    )
    system = DistributedSystem.build(config)

    run = CheckRun(
        experiment=experiment, system=system,
        report=system.sanitizer.report,
        n_updates=len(trace), seed=seed,
    )

    schedulers = [
        SyncScheduler(site.accelerator, interval=sync_interval)
        for site in system.sites.values()
    ]

    def driver(env):
        for event in trace:
            result = yield system.update(event.site, event.item, event.delta)
            run.results.append(result)
            if spacing > 0:
                yield env.timeout(spacing)

    proc = system.env.process(driver(system.env), name="workload.check")
    for scheduler in schedulers:
        scheduler.start()
    system.run(until=proc)
    for site in system.sites.values():
        site.accelerator.sync_all()  # flush the remaining lazy backlog
    for scheduler in schedulers:
        scheduler.stop()
    system.run()
    # The coarse whole-system assertions still apply; the sanitizer
    # refines them with per-event granularity.
    system.check_invariants()
    run.report = system.sanitizer.finish()
    return run
