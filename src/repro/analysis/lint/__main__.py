"""CLI for the repro lint pass.

Usage::

    python -m repro.analysis.lint src tests

Exits 1 when any finding survives suppression, 0 on a clean tree.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.lint import default_rules, lint_paths


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.lint",
        description="Static determinism/instrumentation lint for the repro tree.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    args = parser.parse_args(argv)

    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.render())
    rules = ", ".join(r.name for r in default_rules())
    print(
        f"repro-lint: {len(findings)} finding(s)"
        f" over {len(args.paths)} path(s) [rules: {rules}]"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
