"""Static lint pass: ``python -m repro.analysis.lint src tests``.

See :mod:`repro.analysis.lint.rules` for the rules and
``docs/analysis.md`` for rationale and the suppression syntax.
"""

from repro.analysis.lint.rules import default_rules
from repro.analysis.lint.visitor import FileContext, LintFinding, Linter, Rule


def lint_paths(paths) -> list:
    """Run the default rule set over ``paths`` (files or directories).

    Delegates to the shared protoflow engine
    (:func:`repro.analysis.protoflow.ir.index_project`) so lint shares
    its single parse of the tree with the flow checks; ``flow_paths=()``
    keeps this a lint-only pass. :class:`Linter` remains as the
    standalone fallback engine (and the benchmark baseline in
    ``benchmarks/bench_lint_perf.py``).
    """
    from repro.analysis.protoflow.ir import index_project

    findings, _ir = index_project(paths, rules=default_rules(), flow_paths=())
    return findings


__all__ = [
    "FileContext",
    "LintFinding",
    "Linter",
    "Rule",
    "default_rules",
    "lint_paths",
]
