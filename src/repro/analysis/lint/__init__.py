"""Static lint pass: ``python -m repro.analysis.lint src tests``.

See :mod:`repro.analysis.lint.rules` for the rules and
``docs/analysis.md`` for rationale and the suppression syntax.
"""

from repro.analysis.lint.rules import default_rules
from repro.analysis.lint.visitor import FileContext, LintFinding, Linter, Rule


def lint_paths(paths) -> list:
    """Run the default rule set over ``paths`` (files or directories)."""
    return Linter(default_rules()).run(paths)


__all__ = [
    "FileContext",
    "LintFinding",
    "Linter",
    "Rule",
    "default_rules",
    "lint_paths",
]
