"""The repro lint rules.

Every rule guards a repo-wide convention the simulator's correctness
arguments lean on (see ``docs/analysis.md``):

* ``wall-clock`` / ``seeded-rng`` — determinism: sim/protocol code must
  take time from the simulation clock and randomness from named
  :class:`~repro.sim.rng.RngRegistry` streams, never from the host.
* ``unordered-iter`` — determinism: iterating a set directly makes event
  order depend on hash seeds; wrap in ``sorted(...)``.
* ``span-coverage`` — observability: public protocol entry points must
  route through the span recorder so sanitizer findings can always name
  a span.
* ``span-kind-registry`` — attribution: every span kind started in
  ``src/`` must be declared in the profiler's
  :data:`~repro.obs.profile.SPAN_SUBSYSTEMS` map, so new
  instrumentation can never silently fall outside the subsystem
  attribution (it would land in ``"other"`` and skew every dossier).
* ``unbounded-queue`` — overload robustness: message-queue/backlog
  state in ``src/`` must grow under a budget. A surge workload turns
  any unbounded ``.append`` into silent memory growth and unbounded
  latency, which is exactly what the admission layer exists to
  prevent — so a queue-named attribute may only be appended to in a
  scope that also checks a budget, and ``deque()`` must be given a
  ``maxlen`` (or carry a justified suppression naming the external
  bound).

The old per-file ``message-handlers`` rule was retired in favour of the
whole-program registry checks in :mod:`repro.analysis.protoflow`
(``proto-missing-handler`` and friends), which resolve dynamic kinds the
per-file pass could not see.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from repro.analysis.lint.visitor import FileContext, Rule, in_src


def dotted(expr: ast.AST) -> Tuple[str, ...]:
    """``a.b.c`` -> ``("a", "b", "c")``; unknown bases become ``""``."""
    parts: List[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    parts.append(expr.id if isinstance(expr, ast.Name) else "")
    return tuple(reversed(parts))


class WallClockRule(Rule):
    """No host-clock reads in simulation/protocol source."""

    name = "wall-clock"
    nodes = (ast.Call,)
    BANNED: Set[Tuple[str, str]] = {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("date", "today"),
    }

    def applies_to(self, path: str) -> bool:
        return in_src(path)

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        name = dotted(node.func)
        if len(name) >= 2 and name[-2:] in self.BANNED:
            ctx.report(
                self.name, node,
                f"host clock read {'.'.join(name)}() — simulation code"
                " must use env.now",
            )


class SeededRngRule(Rule):
    """All randomness flows through RngRegistry streams."""

    name = "seeded-rng"
    nodes = (ast.Call,)

    def applies_to(self, path: str) -> bool:
        return in_src(path)

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        name = dotted(node.func)
        if name[-1] == "default_rng":
            ctx.report(
                self.name, node,
                "direct default_rng() construction — derive streams from"
                " RngRegistry so seeds stay centralised",
            )
        elif len(name) >= 2 and name[-2:] == ("random", "seed"):
            ctx.report(
                self.name, node,
                "global numpy seed mutation — use RngRegistry streams",
            )


class UnorderedIterRule(Rule):
    """No iteration directly over sets in deterministic paths."""

    name = "unordered-iter"
    nodes = (ast.For, ast.comprehension)

    def applies_to(self, path: str) -> bool:
        return in_src(path)

    @staticmethod
    def _unordered(expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")
        )

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if self._unordered(node.iter):
            ctx.report(
                self.name, node.iter,
                "iteration over a set — order depends on hashing; wrap in"
                " sorted(...)",
            )


class SpanCoverageRule(Rule):
    """Public protocol entry points record causal spans.

    Applies to classes named ``*Protocol``: their ``execute``,
    ``make_*`` and ``handle_*`` methods must touch the span recorder
    (a ``.start(`` call, a ``*span*`` identifier, or ``.recorder``
    access) somewhere in their body. Pure-read handlers can opt out
    with ``# repro-lint: disable=span-coverage`` plus a justification.
    """

    name = "span-coverage"
    nodes = (ast.ClassDef,)

    def applies_to(self, path: str) -> bool:
        return in_src(path)

    @staticmethod
    def _is_entry_point(fn: ast.AST) -> bool:
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        return (
            fn.name == "execute"
            or fn.name.startswith("make_")
            or fn.name.startswith("handle_")
        )

    @staticmethod
    def _touches_recorder(fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute):
                if node.attr == "recorder" or "span" in node.attr.lower():
                    return True
                if (
                    node.attr == "start"
                    and isinstance(getattr(node, "ctx", None), ast.Load)
                ):
                    return True
            elif isinstance(node, ast.Name) and "span" in node.id.lower():
                return True
        return False

    def check(self, node: ast.ClassDef, ctx: FileContext) -> None:
        if not node.name.endswith("Protocol"):
            return
        for fn in node.body:
            if not self._is_entry_point(fn):
                continue
            if self._touches_recorder(fn):
                continue
            ctx.report(
                self.name, fn,
                f"{node.name}.{fn.name} is a protocol entry point but"
                " never touches the span recorder",
            )


class SpanKindRegistryRule(Rule):
    """Every span kind started in src/ is a registered subsystem kind.

    Matches ``<expr>.start("kind", site, ...)`` calls — the span
    recorder's signature (a constant string kind plus at least a site
    argument) — and requires the kind to appear in the profiler's
    :data:`~repro.obs.profile.SPAN_SUBSYSTEMS` map. Two-argument
    ``.start(...)`` calls are ignored (schedulers, daemons and other
    non-span ``start`` methods share the attribute name).
    """

    name = "span-kind-registry"
    nodes = (ast.Call,)

    def __init__(self) -> None:
        self._registry = None

    def _known_kinds(self) -> Set[str]:
        if self._registry is None:
            # Deferred import: the linter must not drag the profiler in
            # unless this rule actually fires on a .start( call.
            from repro.obs.profile import SPAN_SUBSYSTEMS

            self._registry = set(SPAN_SUBSYSTEMS)
        return self._registry

    def applies_to(self, path: str) -> bool:
        return in_src(path)

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr != "start" or len(node.args) < 2:
            return
        first = node.args[0]
        if not (
            isinstance(first, ast.Constant) and isinstance(first.value, str)
        ):
            return
        kind = first.value
        if kind in self._known_kinds():
            return
        ctx.report(
            self.name, node,
            f"span kind {kind!r} is not declared in"
            " repro.obs.profile.SPAN_SUBSYSTEMS — add it to the"
            " subsystem map so profiler attribution stays complete",
        )


class UnboundedQueueRule(Rule):
    """Queue/backlog growth in src/ must happen under a budget.

    Two patterns are flagged:

    * ``deque(...)`` constructed without a ``maxlen`` keyword;
    * ``.append(...)`` on an attribute whose name says *queue* —
      ``queue``, ``backlog``, ``pending``, ``inbox``, ``mailbox``,
      ``buffer`` — in a function scope that shows no budget evidence
      (no ``len(...)`` comparison and no ``budget``/``maxlen``/
      ``limit``/``bound`` identifier).

    The check is a heuristic, deliberately biased toward firing: a
    queue that really is bounded elsewhere (drained every step by the
    kernel, capped at admission by the overload layer) gets a
    ``# repro-lint: disable=unbounded-queue (why it is bounded)``
    suppression naming the external bound, which doubles as
    documentation at the growth site.
    """

    name = "unbounded-queue"
    nodes = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Call)

    QUEUE_WORDS = ("queue", "backlog", "pending", "inbox", "mailbox", "buffer")
    BUDGET_WORDS = ("budget", "maxlen", "limit", "bound")

    def applies_to(self, path: str) -> bool:
        return in_src(path)

    @staticmethod
    def _scope(fn: ast.AST):
        """Own-scope nodes of ``fn``: stop at nested defs/classes."""
        stack = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _queue_append(cls, node: ast.AST) -> bool:
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            return False
        if node.func.attr != "append":
            return False
        target = dotted(node.func.value)[-1].lower()
        return any(word in target for word in cls.QUEUE_WORDS)

    @classmethod
    def _budget_evidence(cls, node: ast.AST) -> bool:
        if isinstance(node, ast.Compare):
            return any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "len"
                for sub in ast.walk(node)
            )
        name = ""
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.keyword):
            name = node.arg or ""
        return any(word in name.lower() for word in cls.BUDGET_WORDS)

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Call):
            if dotted(node.func)[-1] != "deque":
                return
            if any(kw.arg == "maxlen" for kw in node.keywords):
                return
            ctx.report(
                self.name, node,
                "deque() without maxlen — give it a bound, or suppress"
                " with a justification naming the external budget",
            )
            return
        scope = list(self._scope(node))
        appends = [n for n in scope if self._queue_append(n)]
        if not appends:
            return
        if any(self._budget_evidence(n) for n in scope):
            return
        for call in appends:
            target = ".".join(dotted(call.func.value))
            ctx.report(
                self.name, call,
                f"append to {target!r} with no budget check in scope —"
                " a surge grows this without bound; gate it on a budget"
                " or suppress with the external bound named",
            )


def default_rules() -> List[Rule]:
    """Fresh instances of every repro lint rule."""
    return [
        WallClockRule(),
        SeededRngRule(),
        UnorderedIterRule(),
        SpanCoverageRule(),
        SpanKindRegistryRule(),
        UnboundedQueueRule(),
    ]
