"""Single-walk AST lint framework.

A :class:`Linter` parses each file once and walks the tree once,
dispatching every node to the :class:`Rule` instances that registered
for its type. Rules report findings through the per-file
:class:`FileContext`, which applies line-level suppressions of the form::

    risky_call()  # repro-lint: disable=rule-name (justification)

before anything reaches the output. Cross-file rules (e.g. the
message-handler registry check) accumulate state in ``check`` and emit
their findings from ``finish`` after every file has been walked.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

#: ``# repro-lint: disable=rule-a,rule-b`` — optionally followed by a
#: parenthesised justification, which is strongly encouraged
SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True)
class LintFinding:
    """One rule hit, anchored to a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class FileContext:
    """Per-file state shared by every rule during one walk."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.findings: List[LintFinding] = []
        #: line number -> set of rule names disabled on that line
        self.suppressions: Dict[int, Set[str]] = {}
        # fast path: one C-level scan decides whether the per-line regex
        # pass is needed at all (almost every file has no suppressions)
        if "repro-lint" in source:
            for lineno, text in enumerate(source.splitlines(), start=1):
                if "repro-lint" not in text:
                    continue
                match = SUPPRESS_RE.search(text)
                if match:
                    names = {n.strip() for n in match.group(1).split(",")}
                    self.suppressions[lineno] = {n for n in names if n}

    def suppressed(self, line: int, rule: str) -> bool:
        disabled = self.suppressions.get(line, ())
        return rule in disabled or "all" in disabled

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self.suppressed(line, rule):
            return
        self.findings.append(LintFinding(
            rule=rule,
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
        ))


class Rule:
    """One lint rule. Subclasses set ``name`` and ``nodes`` and
    implement ``check``; cross-file rules also implement ``finish``."""

    name: str = ""
    #: AST node types this rule wants to see
    nodes: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        raise NotImplementedError

    def finish(self) -> List[LintFinding]:
        return []


def in_src(path: str) -> bool:
    """True for protocol/simulation source (the ``src`` tree)."""
    return "src" in Path(path).parts


def in_tests_or_benchmarks(path: str) -> bool:
    parts = Path(path).parts
    return "tests" in parts or "benchmarks" in parts


class Linter:
    """Walk every file once, dispatching nodes to interested rules."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)

    def collect_files(self, paths: Iterable[str]) -> List[str]:
        files: List[str] = []
        for raw in paths:
            p = Path(raw)
            if p.is_dir():
                files.extend(str(f) for f in p.rglob("*.py"))
            elif p.suffix == ".py":
                files.append(str(p))
        return sorted(set(files))

    def run(self, paths: Iterable[str]) -> List[LintFinding]:
        findings: List[LintFinding] = []
        for path in self.collect_files(paths):
            file_findings = self.lint_file(path)
            if file_findings:
                findings.extend(file_findings)
        for rule in self.rules:
            findings.extend(rule.finish())
        return sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        )

    def lint_file(self, path: str) -> Optional[List[LintFinding]]:
        try:
            source = Path(path).read_text()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError) as exc:
            return [LintFinding(
                rule="parse", path=path, line=1, col=0,
                message=f"could not lint: {exc}",
            )]
        active = [r for r in self.rules if r.applies_to(path)]
        if not active:
            return None
        dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in active:
            for node_type in rule.nodes:
                dispatch.setdefault(node_type, []).append(rule)
        ctx = FileContext(path, source)
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                rule.check(node, ctx)
        return ctx.findings
