"""Analysis and correctness tooling for the protocol stack.

Three parts (see ``docs/analysis.md``):

* the **runtime sanitizer** (:mod:`repro.analysis.sanitizer`,
  :mod:`repro.analysis.invariants`, :mod:`repro.analysis.hb`) audits a
  live run's events against the paper's invariants — enable with
  ``SystemConfig.sanitize=True`` or ``python -m repro check``;
* the **static lint pass** (:mod:`repro.analysis.lint`) enforces
  repo-specific determinism and instrumentation rules over the source
  tree — run with ``python -m repro.analysis.lint src tests``;
* the **protocol-flow analyzer** (:mod:`repro.analysis.protoflow`)
  checks the whole tree against the declared message registry
  (:mod:`repro.net.protocol`) — run with
  ``python -m repro.analysis.protoflow src`` or, together with lint in
  one parse, ``python -m repro check --static``;
* executable **sequence diagrams** from live traces
  (:mod:`repro.analysis.sequence`).
"""

from repro.analysis.check import CheckRun, run_check
from repro.analysis.hb import CausalOrder, VectorClock
from repro.analysis.invariants import SanitizerReport, Violation
from repro.analysis.sanitizer import ProtocolSanitizer
from repro.analysis.sequence import (
    SequenceEvent,
    SequenceRecorder,
    record_scenario,
    render_sequence,
)

__all__ = [
    "CausalOrder",
    "CheckRun",
    "ProtocolSanitizer",
    "SanitizerReport",
    "SequenceEvent",
    "SequenceRecorder",
    "VectorClock",
    "Violation",
    "record_scenario",
    "render_sequence",
    "run_check",
]
