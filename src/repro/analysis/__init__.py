"""Analysis helpers: executable sequence diagrams from live traces."""

from repro.analysis.sequence import (
    SequenceEvent,
    SequenceRecorder,
    record_scenario,
    render_sequence,
)

__all__ = [
    "SequenceEvent",
    "SequenceRecorder",
    "record_scenario",
    "render_sequence",
]
