"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on by
``yield``-ing it. Events move through three states: *pending* (created but
not triggered), *triggered* (scheduled with a value or an exception), and
*processed* (its callbacks have run). Composite events (:class:`AllOf`,
:class:`AnyOf`) build barrier / race semantics out of plain callbacks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.sim.errors import AlreadyTriggered

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

# Scheduling priorities: urgent events (process resumptions) run before
# normal events at the same timestamp so that a process resumed by a zero
# delay observes state written by ordinary events scheduled earlier.
# LATE runs after everything else at its timestamp — deadline/timeout
# checks use it so a reply arriving exactly at the deadline still wins.
URGENT = 0
NORMAL = 1
LATE = 2

_PENDING = object()  #: sentinel for "not yet triggered"


class Event:
    """A one-shot occurrence that may succeed with a value or fail.

    Parameters
    ----------
    env:
        The environment that will process this event's callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: callables invoked with this event once it is processed; ``None``
        #: after processing (catches late ``callbacks.append`` bugs loudly).
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        state = (
            "pending"
            if self._value is _PENDING
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled with an outcome."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded. Only valid once triggered."""
        if self._value is _PENDING:
            raise AttributeError("outcome not available on a pending event")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is _PENDING:
            raise AttributeError("value not available on a pending event")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns the event itself so ``return event.succeed()`` chains.
        """
        if self._value is not _PENDING:
            raise AlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event. If nothing waits on a failed event, the environment raises
        it at the end of the step (unless :meth:`defused`).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise AlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel won't crash."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused


class Timeout(Event):
    """An event that fires automatically after ``delay`` simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, priority=NORMAL, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class ConditionValue:
    """Ordered mapping of event -> value for composite-event results.

    Preserves the order in which the events were passed to the composite,
    which keeps result handling deterministic.
    """

    __slots__ = ("events",)

    def __init__(self, events: list[Event]) -> None:
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return iter(self.events)

    def values(self):
        return (e.value for e in self.events)

    def items(self):
        return ((e, e.value) for e in self.events)

    def todict(self) -> dict[Event, Any]:
        return {e: e.value for e in self.events}


class Condition(Event):
    """Composite event that triggers when ``evaluate`` says it should.

    Used through the :class:`AllOf` / :class:`AnyOf` conveniences. A failed
    child event immediately fails the condition.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must share one environment")

        if not self._events:
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> ConditionValue:
        # Only events whose callbacks already ran have truly *occurred*;
        # a scheduled Timeout is "triggered" from birth but has not fired.
        return ConditionValue([e for e in self._events if e.processed])

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event.ok:
            event.defuse()
            self.fail(event.value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Event that fires once *all* of ``events`` have succeeded."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Event that fires as soon as *any* of ``events`` succeeds."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
