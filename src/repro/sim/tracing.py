"""Structured trace recording for simulations.

A :class:`Tracer` collects timestamped, typed records (message sends,
protocol decisions, state changes). Traces serve three purposes here:

* debugging protocol interleavings,
* the determinism property test (same seed ⇒ identical trace),
* offline analysis by the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulation time at which the record was emitted.
    kind:
        Short machine-readable category, e.g. ``"msg.send"``.
    source:
        Component that emitted the record (e.g. a site name).
    detail:
        Free-form payload; must be comparable for determinism checks.
    """

    time: float
    kind: str
    source: str
    detail: Any = None

    def __str__(self) -> str:
        return f"[{self.time:12.4f}] {self.kind:<18} {self.source:<10} {self.detail}"


class Tracer:
    """Accumulates :class:`TraceRecord` entries.

    Parameters
    ----------
    enabled:
        When ``False`` every :meth:`emit` is a no-op; keeps hot loops cheap
        when tracing is not wanted.
    max_records:
        Optional cap; the oldest records are NOT evicted — once the cap is
        reached further records are dropped and :attr:`dropped` counts them.
    """

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None) -> None:
        self.enabled = enabled
        self.max_records = max_records
        self.records: list[TraceRecord] = []
        self.dropped = 0
        # Running hash of records dropped at the cap, so fingerprint()
        # still covers every emitted record.
        self._dropped_acc = 0

    def emit(self, time: float, kind: str, source: str, detail: Any = None) -> None:
        """Record one entry (no-op when disabled; hashed-only when full)."""
        if not self.enabled:
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            self._dropped_acc = (
                self._dropped_acc * 1000003
                + hash((time, kind, source, repr(detail)))
            ) & 0xFFFFFFFFFFFFFFFF
            return
        self.records.append(TraceRecord(time, kind, source, detail))

    def filter(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
        kind_prefix: Optional[str] = None,
    ) -> list[TraceRecord]:
        """Return records matching all given criteria.

        ``kind_prefix`` matches any kind starting with the prefix
        (e.g. ``"av."`` for the whole AV-transfer family).
        """
        out = []
        for rec in self.records:
            if kind is not None and rec.kind != kind:
                continue
            if kind_prefix is not None and not rec.kind.startswith(kind_prefix):
                continue
            if source is not None and rec.source != source:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def fingerprint(self) -> int:
        """A cheap order-sensitive hash of the whole trace.

        Skip-free: records dropped at the ``max_records`` cap still
        contribute (they are hashed as they are dropped), so two runs
        that diverge only past the cap still get different fingerprints.
        Note that once records have been dropped the fingerprint is only
        comparable against a trace captured with the *same* cap — the
        stored records no longer describe the full run, so record-level
        determinism comparison is invalid across different caps.
        """
        acc = 0
        for rec in self.records:
            acc = (acc * 1000003 + hash((rec.time, rec.kind, rec.source, repr(rec.detail)))) & 0xFFFFFFFFFFFFFFFF
        if self.dropped:
            acc = (acc * 1000003 + self._dropped_acc) & 0xFFFFFFFFFFFFFFFF
            acc = (acc * 1000003 + self.dropped) & 0xFFFFFFFFFFFFFFFF
        return acc

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0
        self._dropped_acc = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __repr__(self) -> str:
        return f"<Tracer records={len(self.records)} dropped={self.dropped}>"


class NullTracer(Tracer):
    """A tracer that never records; usable as a default argument."""

    def __init__(self) -> None:
        super().__init__(enabled=False)
