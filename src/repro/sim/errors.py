"""Exception types raised by the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(SimulationError):
    """Raised internally to halt :meth:`Environment.run` early.

    Carries the value passed to :meth:`Environment.exit` (or the value of
    the ``until`` event) in ``args[0]``.
    """


class AlreadyTriggered(SimulationError):
    """Raised when succeeding or failing an event that already fired."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the process was interrupted
        (e.g. a crash-injection token). Available as :attr:`cause`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]
