"""Seeded, named random-number streams for reproducible simulations.

Every stochastic component draws from its own named stream derived from a
single root seed. Components added or removed from a simulation therefore
never perturb each other's randomness, which keeps experiments comparable
across code revisions (the standard "independent streams" idiom from
parallel simulation practice).
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator

import numpy as np


class RngRegistry:
    """Factory of independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed. The per-stream seed is derived from the root seed and a
        stable hash of the stream name, so streams are independent of the
        order in which they are requested.

    Example
    -------
    >>> rngs = RngRegistry(42)
    >>> a = rngs.stream("site0.workload")
    >>> b = rngs.stream("site1.workload")
    >>> a is rngs.stream("site0.workload")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            # crc32 is stable across processes and Python versions
            # (unlike hash()), which run-to-run determinism requires.
            child = np.random.SeedSequence(
                [self.seed, zlib.crc32(name.encode("utf-8"))]
            )
            # This is the one sanctioned default_rng call site: the
            # registry derives every stream from the run seed, which is
            # exactly what the lint rule exists to funnel code towards.
            gen = np.random.default_rng(child)  # repro-lint: disable=seeded-rng
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __iter__(self) -> Iterator[str]:
        return iter(self._streams)

    def __len__(self) -> int:
        return len(self._streams)

    def __repr__(self) -> str:
        return f"<RngRegistry seed={self.seed} streams={len(self._streams)}>"
