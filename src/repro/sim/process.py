"""Generator-driven processes for the discrete-event kernel.

A :class:`Process` wraps a Python generator. Each ``yield``-ed
:class:`~repro.sim.events.Event` suspends the generator until that event is
processed; the event's value is sent back in (or its exception thrown in).
When the generator returns, the process event itself succeeds with the
return value — so processes compose: one process can ``yield`` another.
"""

from __future__ import annotations

from types import GeneratorType
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.errors import Interrupt
from repro.sim.events import Event, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

ProcessGenerator = Generator[Event, Any, Any]


class Initialize(Event):
    """Internal event that starts a process at creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A running generator inside the simulation.

    The process *is* an event: it triggers when the generator finishes
    (succeeds with the ``return`` value) or dies on an unhandled exception
    (fails with it). Other processes may ``yield`` it to join.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(generator, GeneratorType):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: the event this process currently waits on (None when running)
        self._target: Optional[Event] = None
        self.name = name or generator.__name__
        Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not exited."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is detached (it may still fire
        later; its outcome is simply unobserved unless re-yielded).
        Interrupting a finished process raises :class:`RuntimeError`.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
            self._target = None
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume]
        self.env.schedule(interrupt_event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self.triggered:  # e.g. interrupted to completion before a late event
            return
        self.env._active_process = self
        while True:
            try:
                # event is being dispatched, so its outcome is set:
                # read _ok directly instead of the guarded property.
                if event._ok:
                    next_event = self._generator.send(event.value)
                else:
                    # The process takes responsibility for the failure.
                    event.defuse()
                    next_event = self._generator.throw(event.value)
            except StopIteration as exc:
                # Generator finished: the process event succeeds.
                self._target = None
                self.env._active_process = None
                self.succeed(exc.value)
                return
            except BaseException as exc:
                self._target = None
                self.env._active_process = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                # Misuse: inform the generator loudly and keep draining.
                try:
                    self._generator.throw(
                        TypeError(
                            f"process {self.name!r} yielded {next_event!r},"
                            " which is not an Event"
                        )
                    )
                except StopIteration as exc:
                    self._target = None
                    self.env._active_process = None
                    self.succeed(exc.value)
                    return
                except BaseException as exc:
                    self._target = None
                    self.env._active_process = None
                    self.fail(exc)
                    return
                continue

            if next_event.callbacks is not None:
                # Event pending, or triggered but not yet processed: wait.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Event already processed: feed its outcome straight back in.
            event = next_event

        self.env._active_process = None
