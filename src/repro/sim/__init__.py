"""Deterministic discrete-event simulation kernel.

The kernel is the substrate every other subsystem runs on: a virtual clock,
an event queue ordered by ``(time, priority, sequence)``, generator-driven
processes, named seeded RNG streams, and structured tracing.
"""

from repro.sim.engine import Environment
from repro.sim.errors import (
    AlreadyTriggered,
    EmptySchedule,
    Interrupt,
    SimulationError,
    StopSimulation,
)
from repro.sim.events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.tracing import NullTracer, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AlreadyTriggered",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "NullTracer",
    "Process",
    "RngRegistry",
    "SimulationError",
    "StopSimulation",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
