"""The discrete-event simulation environment.

:class:`Environment` owns the virtual clock and the event queue. Events are
ordered by ``(time, priority, sequence)`` — the sequence number makes the
simulation fully deterministic: two runs with the same seed execute the same
events in the same order and produce bit-identical traces.

Two structures back the queue:

* a binary heap for events scheduled into the future (``delay > 0``);
* per-priority FIFO *buckets* for events scheduled at the current
  timestamp (``delay == 0``) — the overwhelmingly common case (every
  ``Event.succeed``, process resumption and zero-delay cascade), which
  would otherwise churn the heap with O(log n) pushes and pops.

Because the sequence number increases monotonically, appending a
zero-delay event to its priority bucket preserves exactly the
``(time, priority, sequence)`` order the heap would have produced:
within one bucket FIFO order *is* sequence order, and :meth:`step`
compares the candidate bucket head against the heap head by the full
key before popping either. The fast path is therefore bit-identical to
the pure-heap engine (property-tested in
``tests/test_sim_engine_fastpath.py``).

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(3)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
3
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Iterable, Optional, Union

from repro.sim.errors import EmptySchedule, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, LATE, NORMAL, URGENT, Timeout
from repro.sim.process import Process, ProcessGenerator


class Environment:
    """Execution environment for a deterministic event-driven simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now: float = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        # Strictly-unique, strictly-increasing per-engine sequence number.
        # Every scheduled event consumes one, so two queue keys can never
        # compare equal and tuple comparison can never fall through to
        # the Event objects (which define no ordering). Kept as a plain
        # int (not itertools.count) so the invariant is explicit and the
        # fast path can allocate inline.
        self._eseq: int = 0
        # Same-timestamp FIFO buckets, one per priority level, valid for
        # time ``_bucket_time``. ``_bucket_count`` tracks total entries
        # so emptiness checks stay O(1).
        self._buckets: tuple[deque, deque, deque] = (deque(), deque(), deque())  # repro-lint: disable=unbounded-queue (same-timestamp staging only: drained to empty before the clock advances)
        self._bucket_time: float = self._now
        self._bucket_count: int = 0
        self._active_process: Optional[Process] = None
        #: Optional scheduling perturbation hook for schedule-space
        #: fuzzing (see :mod:`repro.testkit`). Called as
        #: ``perturb(event, priority, delay) -> delay`` for every event
        #: scheduled with ``delay > 0`` and must return a nonnegative
        #: replacement delay. Zero-delay events (succeed cascades,
        #: process resumptions) are deliberately exempt: their same-step
        #: ordering is a correctness assumption of the protocols, not a
        #: schedule choice. The hook must be deterministic given its own
        #: seed or replays will not be byte-identical.
        self.perturb = None
        #: total number of events processed (diagnostic)
        self.events_processed: int = 0

    #: Optional dispatch hook for subsystem profiling (see
    #: :mod:`repro.obs.profile`). When set, :meth:`step` delegates the
    #: callback loop to ``profile_dispatch(event, callbacks)`` instead of
    #: running it inline, letting the profiler time and attribute each
    #: event without touching scheduling. Class-level on purpose: the
    #: profiler activates for *every* environment in the process
    #: (experiments build several — proposal, baseline, per scenario)
    #: without any constructor threading. Must execute the callbacks
    #: exactly as the inline loop would; purely observational hooks keep
    #: runs bit-identical to unprofiled execution.
    profile_dispatch = None

    # ------------------------------------------------------------------ #
    # clock & inspection
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._bucket_count:
            # Bucket entries live at the current timestamp, which never
            # exceeds the heap minimum while buckets are non-empty.
            return self._bucket_time
        return self._queue[0][0] if self._queue else float("inf")

    def __repr__(self) -> str:
        queued = len(self._queue) + self._bucket_count
        return f"<Environment now={self._now} queued={queued}>"

    # ------------------------------------------------------------------ #
    # factories
    # ------------------------------------------------------------------ #

    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: Optional[str] = None
    ) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every event in ``events`` succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any event in ``events`` succeeded."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------ #
    # scheduling & execution
    # ------------------------------------------------------------------ #

    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Queue ``event`` to be processed after ``delay`` time units."""
        seq = self._eseq
        self._eseq = seq + 1
        if delay == 0.0 and URGENT <= priority <= LATE:
            # Same-timestamp fast path: the new key (now, priority, seq)
            # is strictly greater than every already-queued key with the
            # same (now, priority), so a FIFO append preserves heap
            # order. Rebase the buckets lazily — they are provably empty
            # whenever the clock has advanced past them (step() drains a
            # bucket before the clock can move).
            if not self._bucket_count:
                self._bucket_time = self._now
            self._buckets[priority].append((seq, event))
            self._bucket_count += 1
            return
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        perturb = self.perturb
        if perturb is not None:
            delay = perturb(event, priority, delay)
            if delay < 0:
                raise ValueError(f"perturbation produced negative delay {delay}")
        heappush(self._queue, (self._now + delay, priority, seq, event))

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        event: Optional[Event] = None
        queue = self._queue
        if self._bucket_count:
            buckets = self._buckets
            if buckets[0]:
                prio = 0
            elif buckets[1]:
                prio = 1
            else:
                prio = 2
            bucket = buckets[prio]
            btime = self._bucket_time
            if queue:
                # A heap entry can share the bucket timestamp (a timeout
                # scheduled earlier that lands exactly now) — take
                # whichever is smaller by the full (time, priority, seq)
                # key so tie-breaking matches the pure-heap engine.
                head = queue[0]
                htime = head[0]
                if htime < btime or (
                    htime == btime
                    and (head[1], head[2]) < (prio, bucket[0][0])
                ):
                    self._now, _, _, event = heappop(queue)
            if event is None:
                _, event = bucket.popleft()
                self._bucket_count -= 1
                self._now = btime
        else:
            try:
                self._now, _, _, event = heappop(queue)
            except IndexError:
                raise EmptySchedule("no scheduled events") from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - double-schedule guard
            return
        dispatch = self.profile_dispatch
        if dispatch is not None:
            dispatch(event, callbacks)
        else:
            for callback in callbacks:
                callback(event)
        self.events_processed += 1

        if not event._ok and not event.defused:
            # Nobody handled this failure: crash the simulation loudly.
            exc = event.value
            raise exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the event queue is exhausted;
            a number
                run until the clock reaches that time (the clock is then
                advanced exactly to it);
            an :class:`Event`
                run until that event is processed and return its value.

        Returns
        -------
        The ``until`` event's value, if an event was given; else ``None``.
        """
        stop_at: Optional[float] = None
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed.
                    if until.ok:
                        return until.value
                    raise until.value
                until.callbacks.append(_stop_simulation)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until ({stop_at}) must not be before now ({self._now})"
                    )

        try:
            step = self.step  # bound once: the loop body is one call
            while self._queue or self._bucket_count:
                if stop_at is not None and self.peek() > stop_at:
                    break
                step()
        except StopSimulation as stop:
            return stop.args[0]
        except EmptySchedule:  # pragma: no cover - guarded by while
            pass

        if stop_at is not None:
            self._now = stop_at
        elif isinstance(until, Event) and not until.triggered:
            raise RuntimeError(
                f"simulation ended but {until!r} was never triggered"
            )
        return None


def _stop_simulation(event: Event) -> None:
    """Callback attached to an ``until`` event: halt the run loop."""
    if event.ok:
        raise StopSimulation(event.value)
    event.defuse()
    raise event.value
