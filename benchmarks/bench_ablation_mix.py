"""Ablation E — regular / non-regular product mix.

As the regular (Delay-eligible) fraction shrinks, more updates pay the
full Immediate Update protocol (2(n-1) correspondences each with n
sites). At fraction 0 the system degenerates to the all-immediate
primary-copy baseline — strictly worse than centralized for n = 3,
which is why the checking function matters.
"""

from conftest import once

from repro.experiments import ABLATION_HEADERS, ablate_update_mix
from repro.metrics.report import text_table


def bench_ablation_mix(benchmark, save_result):
    rows = once(
        benchmark, ablate_update_mix,
        fractions=(1.0, 0.75, 0.5, 0.0), n_updates=600, seed=0,
    )
    save_result(
        "ablation_mix",
        text_table(
            ABLATION_HEADERS, rows,
            title="Ablation E — regular-product fraction",
        ),
    )

    # Cost grows monotonically as the delay-eligible share shrinks.
    costs = [row[1] for row in rows]
    assert all(b >= a for a, b in zip(costs, costs[1:])), costs

    # All-immediate pays 2(n-1)=4 correspondences per update (n=3) --
    # modulo occasional contention retries.
    all_imm = rows[-1]
    per_update = all_imm[1] / 600
    assert 3.5 <= per_update <= 5.0, per_update
