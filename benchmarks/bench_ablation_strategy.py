"""Ablation B — selecting strategy (which peer to ask).

The paper targets the believed-richest peer using piggybacked, possibly
stale AV information. This bench compares against blind orders
(round-robin, random, always-maker-first): belief-guided selection finds
volume in fewer asks, which shows up directly as fewer correspondences.
"""

from conftest import once

from repro.experiments import (
    ABLATION_HEADERS,
    ablate_selection_strategy,
    ablate_stale_beliefs,
)
from repro.metrics.report import text_table


def bench_ablation_strategy(benchmark, save_result):
    rows = once(benchmark, ablate_selection_strategy, n_updates=1000, seed=0)
    save_result(
        "ablation_strategy",
        text_table(
            ABLATION_HEADERS, rows, title="Ablation B — selection strategy"
        ),
    )

    by_label = {row[0]: row for row in rows}
    richest = by_label["believed-richest"]
    # Belief-guided selection is at least as message-frugal as any blind
    # strategy on this workload (small tolerance: 3 sites leave little
    # room to out-guess, and ties flip on single transfers).
    for label, row in by_label.items():
        assert richest[1] <= row[1] * 1.15 + 5, (richest, row)
    # And every variant still commits everything it can.
    assert all(row[4] > 0.9 for row in rows)


def bench_ablation_beliefs(benchmark, save_result):
    rows = once(benchmark, ablate_stale_beliefs, n_updates=1000, seed=0)
    save_result(
        "ablation_beliefs",
        text_table(
            ABLATION_HEADERS, rows,
            title="Ablation B' — value of piggybacked beliefs",
        ),
    )
