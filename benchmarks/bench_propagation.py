"""Extension — the cost of eager replica propagation.

The paper counts only "correspondences for update" (the traffic needed
to *complete* updates); replicas reconcile lazily out of band. This
bench turns eager propagation on, accounts it honestly under its own
tag, and shows (a) the update-completion saving is unchanged, and (b)
what full eager convergence would add — with a quiescence check proving
all replicas then equal the ground truth.
"""

from conftest import once

from repro.cluster import DistributedSystem, paper_config
from repro.core.types import TAG_PROPAGATE, UPDATE_TAGS
from repro.experiments import make_paper_trace, run_counted
from repro.metrics.report import text_table


def _run(n_updates=600, n_items=10, seed=0):
    trace = make_paper_trace(n_updates, seed, n_items=n_items)
    system = DistributedSystem.build(
        paper_config(n_items=n_items, seed=seed, propagate=True)
    )
    run = run_counted(system, trace, "propagate", checkpoints=[n_updates])
    system.run()  # drain remaining propagation traffic
    system.check_invariants(quiescent=True)
    return system, run


def bench_propagation(benchmark, save_result):
    system, run = once(benchmark, _run)
    update_corr = system.stats.correspondences_for_tags(UPDATE_TAGS)
    prop_corr = system.stats.correspondences_for_tag(TAG_PROPAGATE)
    n = len(run.results)

    save_result(
        "propagation",
        text_table(
            ["traffic class", "correspondences", "per update"],
            [
                ["update completion (av)", update_corr, round(update_corr / n, 3)],
                ["eager propagation (prop)", prop_corr, round(prop_corr / n, 3)],
                ["total", update_corr + prop_corr,
                 round((update_corr + prop_corr) / n, 3)],
            ],
            title="Extension — eager propagation cost (replicas converge)",
        ),
    )

    # Completion traffic is unchanged by propagation being on.
    assert update_corr / n < 0.5
    # Eager propagation costs one message per peer per committed update
    # = (n_sites - 1)/2 = 1 correspondence per committed update here.
    committed = sum(1 for r in run.results if r.committed)
    assert abs(prop_corr - committed) <= committed * 0.05 + 1
