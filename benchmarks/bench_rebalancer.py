"""Extension — proactive AV circulation (paper §3.4).

The on-demand transfer path moves AV only when an update is already
blocked: the requester pays a round trip *inside* its update latency.
A proactive rebalancer at the minting maker streams surplus toward
believed-poor retailers between updates. This bench measures the trade:
blocked (on-demand) transfers avoided vs proactive pushes spent, and
the effect on update latency.
"""

from conftest import once

from repro.cluster import build_paper_system
from repro.core import AVRebalancer
from repro.core.rebalancer import TAG_REBALANCE
from repro.core.types import TAG_AV
from repro.experiments import make_paper_trace
from repro.metrics.latency import summarize
from repro.metrics.report import text_table
from repro.workload.driver import run_open, split_by_site


def _run(with_rebalancer: bool, n_updates=900, seed=2):
    system = build_paper_system(n_items=10, seed=seed)
    if with_rebalancer:
        rebalancer = AVRebalancer(
            system.maker.accelerator,
            interval=20.0,
            surplus_factor=1.2,
            needy_factor=0.9,
        )
        rebalancer.start()
    trace = make_paper_trace(n_updates, seed, n_items=10)
    per_site = split_by_site(trace)
    # Arrivals end by max-stream x interarrival; daemons run forever,
    # so bound the clock past the last possible completion.
    horizon = max(len(v) for v in per_site.values()) * 5.0 + 200.0
    results = run_open(system, per_site, interarrival=5.0, until=horizon)
    lat = summarize([r.latency for r in results if r.committed])
    return {
        "on_demand": system.stats.correspondences_for_tag(TAG_AV),
        "proactive": system.stats.correspondences_for_tag(TAG_REBALANCE),
        "local_ratio": sum(1 for r in results if r.local_only) / len(results),
        "p90_latency": lat.p90,
        "mean_latency": lat.mean,
        "committed": sum(1 for r in results if r.committed) / len(results),
    }


def bench_rebalancer(benchmark, save_result):
    def run_both():
        return _run(False), _run(True)

    baseline, proactive = once(benchmark, run_both)
    rows = [
        ["on-demand only",
         baseline["on_demand"], baseline["proactive"],
         round(baseline["local_ratio"], 3), round(baseline["mean_latency"], 3),
         round(baseline["committed"], 3)],
        ["with rebalancer",
         proactive["on_demand"], proactive["proactive"],
         round(proactive["local_ratio"], 3), round(proactive["mean_latency"], 3),
         round(proactive["committed"], 3)],
    ]
    save_result(
        "rebalancer",
        text_table(
            ["variant", "blocked corr", "proactive corr",
             "local_ratio", "mean latency", "committed"],
            rows,
            title="Extension — proactive AV circulation (§3.4)",
        ),
    )

    # Proactive circulation converts blocked transfers into background
    # pushes: fewer on-demand correspondences, faster updates.
    assert proactive["on_demand"] < baseline["on_demand"]
    assert proactive["local_ratio"] > baseline["local_ratio"]
    assert proactive["mean_latency"] <= baseline["mean_latency"]
    assert proactive["committed"] >= baseline["committed"] - 0.02
