"""Ablation C — system scale (a negative result, reported honestly).

Hold per-site demand constant and grow the retailer count. The paper
evaluates exactly 3 sites — and this sweep shows why that matters: the
proposal's advantage *erodes* as sites multiply. Each item's AV pool is
split ever thinner, belief staleness grows with the peer count, and a
shortage triggers chains of half-grants from near-empty peers. At the
paper's scale the mechanism wins decisively; by 8 retailers it loses to
centralized on message count (while still keeping its availability and
latency advantages — those are measured elsewhere).
"""

from conftest import once

from repro.experiments import SWEEP_HEADERS, sweep_rows, sweep_scale
from repro.metrics.report import text_table


def bench_ablation_scale(benchmark, save_result):
    points = once(
        benchmark, sweep_scale, retailer_counts=(2, 4, 8), updates_per_site=200
    )
    save_result(
        "ablation_scale",
        text_table(
            SWEEP_HEADERS,
            sweep_rows(points),
            title="Ablation C — scale (retailers; constant per-site demand)",
        ),
    )

    # Decisive win at the paper's scale...
    assert points[0].value == 2 and points[0].reduction > 0.6, points[0]
    # ...and a monotone erosion as the system grows (the finding).
    reductions = [p.reduction for p in points]
    assert all(b < a for a, b in zip(reductions, reductions[1:])), reductions
    # Commit ratio stays healthy throughout — the erosion is message
    # cost, not correctness.
    assert all(p.committed_ratio > 0.85 for p in points)
