"""Disabled-path overhead bound for the runtime protocol sanitizer.

The sanitizer hooks stay in the hot paths even when ``config.sanitize``
is off: AV tables and lock managers check a ``monitor`` slot, protocols
call ``obs.emit`` into an empty event bus, and the network walks an
empty observer list. Same method as ``bench_obs_overhead``:

1. run the Fig. 6 proposal workload unsanitized and time it;
2. replay the workload with counting hooks installed to census how many
   times each hook site fires;
3. micro-time each disabled hook (``monitor is None`` guard, empty-bus
   ``emit``, empty observer loop);
4. assert the summed added cost is under 5% of the run time.
"""

import time
import timeit

from conftest import once

from repro.cluster import build_paper_system
from repro.experiments import make_paper_trace
from repro.obs.hub import Observability
from repro.workload import run_closed

#: the acceptance bound: disabled sanitizer hooks must stay under this
MAX_OVERHEAD = 0.05

N_UPDATES = 1000
SEED = 0
N_ITEMS = 10


class CountingMonitor:
    """Counts every monitor notification (hook-site census)."""

    def __init__(self):
        self.av_events = 0
        self.lock_events = 0

    def av_event(self, table, op, item, amount, hold=None):
        self.av_events += 1

    def lock_event(self, manager, op, item, owner, mode, span_id,
                   holders, queue):
        self.lock_events += 1


def _run_unsanitized() -> float:
    """One unsanitized Fig. 6 workload; returns wall-clock seconds."""
    system = build_paper_system(n_items=N_ITEMS, seed=SEED)
    trace = make_paper_trace(N_UPDATES, seed=SEED, n_items=N_ITEMS)
    t0 = time.perf_counter()
    run_closed(system, trace)
    return time.perf_counter() - t0


def _census():
    """Replay the workload counting every hook-site activation."""
    system = build_paper_system(n_items=N_ITEMS, seed=SEED)
    monitor = CountingMonitor()
    counts = {"emits": 0, "net": 0}

    hub = Observability(enabled=False)
    hub.event_subscribers.append(
        lambda kind, now, fields: counts.__setitem__(
            "emits", counts["emits"] + 1
        )
    )
    for site in system.sites.values():
        site.accelerator.obs = hub
        site.accelerator.av_table.monitor = monitor
        site.accelerator.locks.monitor = monitor
    system.network.observers.append(
        lambda event, now, msg: counts.__setitem__("net", counts["net"] + 1)
    )

    trace = make_paper_trace(N_UPDATES, seed=SEED, n_items=N_ITEMS)
    run_closed(system, trace)
    return monitor.av_events + monitor.lock_events, counts["emits"], counts["net"]


def bench_sanitizer_disabled_overhead(benchmark, save_result):
    run_seconds = min(once(benchmark, _run_unsanitized), _run_unsanitized())

    guards, emits, net_msgs = _census()
    assert guards > 0 and emits > 0 and net_msgs > 0, (
        "hooked paths never fired?"
    )

    reps = 100_000
    table = build_paper_system(n_items=1).site("site0").av_table
    per_guard = timeit.timeit(
        lambda: table.monitor is None, number=reps
    ) / reps
    empty_hub = Observability(enabled=False)
    per_emit = timeit.timeit(
        lambda: empty_hub.emit("av.mint", 0.0, site="s", item="i", amount=1.0),
        number=reps,
    ) / reps
    no_observers = []

    def _walk():
        for fn in no_observers:
            fn(None, None, None)

    per_net = timeit.timeit(_walk, number=reps) / reps

    added = guards * per_guard + emits * per_emit + net_msgs * per_net
    overhead = added / run_seconds
    report = "\n".join([
        f"workload               : fig6 proposal, n={N_UPDATES} updates",
        f"run time (unsanitized) : {run_seconds * 1e3:.1f} ms",
        f"monitor guard checks   : {guards} x {per_guard * 1e9:.0f} ns",
        f"empty-bus emits        : {emits} x {per_emit * 1e9:.0f} ns",
        f"observer-list walks    : {net_msgs} x {per_net * 1e9:.0f} ns",
        f"added cost             : {added * 1e6:.0f} us",
        f"estimated overhead     : {overhead:.3%} (bound {MAX_OVERHEAD:.0%})",
    ])
    save_result("sanitizer_overhead", report)
    assert overhead < MAX_OVERHEAD, report
