"""Extension — read consistency levels: what staleness costs to fix.

After the paper workload runs in lazy mode, replicas lag ground truth
by the unsynced balances. This bench reads every item from a retailer
at each consistency level and reports (a) the error vs the ledger and
(b) the message cost — the quantified version of "you can have the
answer now, or the *right* answer for one correspondence per peer".
"""

from conftest import once

from repro.cluster import DistributedSystem, paper_config
from repro.core.reads import ReadConsistency, TAG_READ
from repro.experiments import make_paper_trace, run_counted
from repro.metrics.report import text_table

N_UPDATES = 600
N_ITEMS = 10


def _run(seed=4):
    trace = make_paper_trace(N_UPDATES, seed, n_items=N_ITEMS)
    system = DistributedSystem.build(paper_config(n_items=N_ITEMS, seed=seed))
    run_counted(system, trace, "warmup", checkpoints=[N_UPDATES])
    ledger = system.collector.ledger
    reader = system.site("site1").accelerator

    outcomes = {}
    for level in (ReadConsistency.LOCAL, ReadConsistency.RECONCILED,
                  ReadConsistency.LOCKED):
        before = system.stats.by_tag.get(TAG_READ, 0)

        def scenario(env, level=level):
            errors = []
            for item in system.catalog.items():
                result = yield reader.read(item, level)
                errors.append(abs(result.value - ledger.true_value(item)))
            return errors

        proc = system.env.process(scenario(system.env))
        system.run(until=proc)
        messages = system.stats.by_tag.get(TAG_READ, 0) - before
        errors = proc.value
        outcomes[level.value] = {
            "mean_error": sum(errors) / len(errors),
            "max_error": max(errors),
            "messages": messages,
        }
    return outcomes


def bench_reads(benchmark, save_result):
    outcomes = once(benchmark, _run)
    rows = [
        [level, round(o["mean_error"], 2), round(o["max_error"], 2),
         o["messages"]]
        for level, o in outcomes.items()
    ]
    save_result(
        "reads",
        text_table(
            ["consistency", "mean |error|", "max |error|",
             f"messages ({N_ITEMS} items)"],
            rows,
            title="Extension — read consistency levels after the paper workload",
        ),
    )

    local = outcomes["local"]
    reconciled = outcomes["reconciled"]
    locked = outcomes["locked"]
    # Local reads are free but stale after a lazy-mode run...
    assert local["messages"] == 0
    assert local["mean_error"] > 0
    # ...reconciled and locked reads are exact at 2(n-1) msgs per item.
    assert reconciled["mean_error"] == 0 and locked["mean_error"] == 0
    assert reconciled["messages"] == 4 * N_ITEMS
