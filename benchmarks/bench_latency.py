"""Update latency — the paper's real-time property, measured.

With one-way latency L: a locally-covered Delay Update completes in 0
simulated time, an AV transfer costs 2L per round trip, and every
centralized update costs exactly 2L. The median proposal latency is
therefore 0 — the quantitative form of "the real-time property of
update at retailers site is given the priority".
"""

from conftest import once

from repro.experiments import LATENCY_HEADERS, run_latency_experiment
from repro.metrics.report import text_table


def bench_latency(benchmark, save_result):
    result = once(benchmark, run_latency_experiment, n_updates=900)
    save_result(
        "latency",
        text_table(LATENCY_HEADERS, result.rows(), title="Update latency")
        + f"\nmean speedup vs centralized: {result.speedup():.1f}x",
    )

    prop = result.summaries["proposal"]
    conv = result.summaries["centralized"]
    assert prop.p50 == 0.0, "median delay update must be instantaneous"
    assert conv.p50 == 2.0, "centralized is always one round trip (2L)"
    assert prop.mean < conv.mean / 2
