"""Table 1 — number of correspondences for update, per site.

Paper claims validated here:
  * "the numbers are almost same between site 1 and site 2" — Jain
    fairness over the retailer columns > 0.95;
  * "increases very slowly" — the proposal's per-retailer late-half
    growth is far below the conventional per-site slope (~1/3
    correspondence per update with three sites).
"""

from conftest import once

from repro.experiments import run_table1


def bench_table1(benchmark, save_result):
    result = once(benchmark, run_table1, n_updates=1000, seed=0, n_items=10)
    save_result("table1", result.render())

    report = result.assurance()
    assert report.retailer_fairness > 0.95, str(report)
    assert report.local_completion_ratio > 0.5, str(report)

    # Conventional per-site slope with 3 sites: each site originates
    # ~1/3 of updates at 1 correspondence each.
    for retailer in result.retailers:
        growth = result.per_site_growth(retailer)
        assert growth < 0.45, (
            f"{retailer} grows at {growth:.3f} corr/update - not 'slow'"
        )

    # Retailers end close to each other (the table's visual claim).
    final = result.proposal.final()
    r_counts = [final.per_site[r] for r in result.retailers]
    assert max(r_counts) - min(r_counts) < 0.25 * max(r_counts) + 10
