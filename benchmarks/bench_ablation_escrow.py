"""Ablation D — AV circulation vs static escrow.

Static escrow (fixed bootstrap split, no transfers) sends zero messages
— and pays for it in rejected updates once a retailer's share runs dry.
The paper's contribution over classic escrow is exactly the circulation,
and this bench shows the trade: a small correspondence budget buys back
the lost commits.
"""

from conftest import once

from repro.experiments import ABLATION_HEADERS, ablate_escrow
from repro.metrics.report import text_table


def bench_ablation_escrow(benchmark, save_result):
    rows = once(benchmark, ablate_escrow, n_updates=1000, seed=0)
    save_result(
        "ablation_escrow",
        text_table(
            ABLATION_HEADERS, rows,
            title="Ablation D — circulation vs static escrow",
        ),
    )

    by_label = {row[0]: row for row in rows}
    circ = by_label["av-circulation"]
    static = by_label["static-escrow"]

    assert static[1] == 0, "static escrow must send no AV traffic"
    assert static[4] < 0.8, "static escrow must visibly reject updates"
    assert circ[4] > static[4] + 0.15, "circulation must buy back commits"
