"""Engine microbenchmarks — raw throughput of the simulation substrate.

Unlike the experiment benches (one deterministic run each), these use
pytest-benchmark's repeated rounds to give stable wall-clock numbers
for the three hot paths every experiment exercises: event dispatch,
process context switching, and the full RPC round trip. Useful as a
performance-regression canary for kernel changes ("no optimization
without measuring").
"""

from repro.net import ConstantLatency, Network
from repro.sim import Environment, RngRegistry


def bench_event_dispatch(benchmark):
    """Schedule + fire 10k bare timeouts."""

    def run():
        env = Environment()
        for i in range(10_000):
            env.timeout(i % 97)
        env.run()
        return env.events_processed

    processed = benchmark(run)
    assert processed == 10_000


def bench_process_switching(benchmark):
    """1k processes x 10 yields each."""

    def run():
        env = Environment()

        def worker(env):
            for _ in range(10):
                yield env.timeout(1)

        for _ in range(1_000):
            env.process(worker(env))
        env.run()
        return env.now

    now = benchmark(run)
    assert now == 10


def bench_rpc_round_trips(benchmark):
    """2k request/reply cycles through the network stack."""

    def run():
        env = Environment()
        net = Network(
            env,
            latency=ConstantLatency(1.0),
            rng=RngRegistry(0).stream("net.latency"),
        )
        a, b = net.endpoint("a"), net.endpoint("b")
        b.on("echo", lambda m: m.payload)

        def client(env):
            for i in range(2_000):
                got = yield a.request("b", "echo", i)
                assert got == i

        env.process(client(env))
        env.run()
        return net.stats.sent_total

    sent = benchmark(run)
    assert sent == 4_000


def bench_paper_system_build(benchmark):
    """Full 3-site system assembly + bootstrap (100 items)."""
    from repro.cluster import build_paper_system

    def run():
        system = build_paper_system(n_items=100)
        return len(system.sites)

    assert benchmark(run) == 3
