"""Extension — 2PC recovery under crash/restart churn.

The paper sketches Immediate Update as primary-copy locking and says
nothing about failures. This bench exercises the full recovery stack we
added — decision logs, idempotent commits, participant watchdogs, the
status-query termination protocol, and restart catch-up — under a
crash/restart churn while immediate updates keep flowing, and then
*proves* the non-regular replicas converged to the ledger.
"""

from conftest import once

from repro.cluster import build_paper_system
from repro.core import UpdateOutcome
from repro.metrics.report import text_table


def _run(seed=9, n_updates=160):
    system = build_paper_system(
        n_items=4,
        initial_stock=400.0,
        regular_fraction=0.0,  # all-immediate: worst case for faults
        seed=seed,
        request_timeout=5.0,
    )
    rng = system.rngs.stream("bench.churn")
    items = system.catalog.items()
    outcomes = {o: 0 for o in UpdateOutcome}

    def workload(env):
        for i in range(n_updates):
            site = f"site{(i % 2) + 1}"
            if system.sites[site].crashed:
                yield env.timeout(5.0)
                continue
            item = items[int(rng.integers(len(items)))]
            result = yield system.update(site, item, -float(rng.integers(1, 4)))
            outcomes[result.outcome] += 1
            yield env.timeout(5.0)

    def churn(env):
        victims = ["site0", "site2"]
        for round_ in range(6):
            yield env.timeout(120.0)
            victim = victims[round_ % 2]
            system.network.faults.crash(victim)
            yield env.timeout(40.0)
            system.sites[victim].restart()

    system.env.process(workload(system.env), name="workload")
    system.env.process(churn(system.env), name="churn")
    system.run()

    # Everyone is alive and drained now: replicas must agree.
    diverged = 0
    ledger = system.collector.ledger
    for item in items:
        values = {s.store.value(item) for s in system.sites.values()}
        if len(values) != 1 or values.pop() != ledger.true_value(item):
            diverged += 1
    pending = sum(
        len(s.accelerator.immediate._pending) for s in system.sites.values()
    )
    retries = sum(
        s.accelerator.immediate.retries for s in system.sites.values()
    )
    return outcomes, diverged, pending, retries


def bench_2pc_recovery(benchmark, save_result):
    outcomes, diverged, pending, retries = once(benchmark, _run)
    rows = [[o.value, n] for o, n in outcomes.items()]
    rows += [
        ["diverged items after churn", diverged],
        ["unresolved provisional txns", pending],
        ["decision resends", retries],
    ]
    save_result(
        "2pc_recovery",
        text_table(
            ["measure", "count"],
            rows,
            title="Extension — 2PC recovery under crash/restart churn",
        ),
    )

    committed = outcomes[UpdateOutcome.COMMITTED]
    assert committed > 0
    assert diverged == 0, "replicas must converge after churn"
    assert pending == 0, "no in-doubt state may survive"
    # Progress despite churn: most attempted updates commit (aborts are
    # the live-membership timeouts during crash races).
    total = sum(outcomes.values())
    assert committed / total > 0.7, outcomes
