"""Fault tolerance — the paper's availability claim, measured.

The autonomous approach keeps retailers serving through a maker outage
(local-AV-covered updates need no communication); the centralized
baseline drops to zero for everyone the moment its server dies.
"""

from conftest import once

from repro.experiments import FAULT_HEADERS, run_fault_experiment
from repro.metrics.report import text_table


def bench_fault_tolerance(benchmark, save_result):
    result = once(
        benchmark,
        run_fault_experiment,
        n_updates=900,
        fault_start=400.0,
        fault_end=1200.0,
    )
    save_result(
        "fault_tolerance",
        text_table(
            FAULT_HEADERS,
            result.rows(),
            title=(
                f"Availability under maker/server crash"
                f" (window t=[{result.fault_start:g}, {result.fault_end:g}])"
            ),
        ),
    )

    retailers = ["site1", "site2"]
    prop = result.retailer_availability_during_fault("proposal", retailers)
    conv = result.retailer_availability_during_fault("centralized", retailers)

    assert conv == 0.0, "centralized retailers must be fully dead"
    assert prop > 0.2, f"proposal retailers should keep committing ({prop:.1%})"
    # Outside the fault window both systems serve normally.
    for label in ("proposal", "centralized"):
        for site in retailers:
            assert result.availability[label][site][0] > 0.8


def bench_partition_tolerance(benchmark, save_result):
    """Partition (maker isolated) instead of crash: the retailer group
    keeps trading AV among itself, so availability is even higher, and
    the isolated maker keeps committing its own local updates too."""
    from repro.experiments import run_partition_experiment

    result = once(
        benchmark,
        run_partition_experiment,
        n_updates=900,
        fault_start=400.0,
        fault_end=1200.0,
    )
    save_result(
        "partition_tolerance",
        text_table(
            FAULT_HEADERS,
            result.rows(),
            title=(
                f"Availability under a maker/server partition"
                f" (window t=[{result.fault_start:g}, {result.fault_end:g}])"
            ),
        ),
    )

    retailers = ["site1", "site2"]
    prop = result.retailer_availability_during_fault("proposal", retailers)
    conv = result.retailer_availability_during_fault("centralized", retailers)
    assert conv == 0.0
    assert prop > 0.4, f"retailer group economy should survive ({prop:.1%})"
    # The isolated maker itself stays available (its updates are local).
    assert result.availability["proposal"]["site0"][1] > 0.9
