"""Shared helpers for the benchmark harness.

Each bench regenerates one table/figure (or ablation) and both prints it
and persists it under ``benchmarks/results/`` so the reproduced artifact
survives pytest's output capture.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Persist a rendered table: ``save_result("fig6", text)``."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    The experiments are deterministic simulations — repeated rounds
    measure the same work, so one round keeps the harness fast while
    still producing a wall-clock figure per experiment.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
