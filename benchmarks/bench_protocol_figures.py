"""Figs. 3-5 — the paper's protocol diagrams, regenerated from execution.

Fig. 3 (Delay Update, local), Fig. 4 (Delay Update with AV transfer)
and Fig. 5 (Immediate Update) are hand-drawn sketches in the paper.
Here each is produced by actually running the protocol and rendering
the captured message sequence — the saved diagrams in
``benchmarks/results/`` are guaranteed faithful to the implementation.
"""

from conftest import once

from repro.analysis import record_scenario
from repro.cluster import build_paper_system


def _fig3():
    """Delay Update covered by local AV: the diagram is EMPTY of
    messages — the paper's whole point."""
    system = build_paper_system(n_items=1, initial_stock=90.0, seed=0)

    def scenario(env):
        result = yield system.update("site1", "item0", -10)
        assert result.committed and result.local_only

    return record_scenario(system, scenario, width=24)


def _fig4():
    """Delay Update needing one AV transfer."""
    system = build_paper_system(n_items=1, initial_stock=90.0, seed=0)

    def scenario(env):
        result = yield system.update("site1", "item0", -45)
        assert result.committed and result.av_requests == 1

    return record_scenario(system, scenario, width=24)


def _fig5():
    """Immediate Update: prepare/ready + commit/ack at every site."""
    system = build_paper_system(
        n_items=1, initial_stock=90.0, regular_fraction=0.0, seed=0
    )

    def scenario(env):
        result = yield system.update("site1", "item0", -5)
        assert result.committed

    return record_scenario(system, scenario, width=24)


def bench_protocol_figures(benchmark, save_result):
    def run_all():
        return _fig3(), _fig4(), _fig5()

    fig3, fig4, fig5 = once(benchmark, run_all)
    save_result(
        "fig3_delay_local",
        "Fig. 3 — Delay Update within the local site (no messages)\n\n" + fig3,
    )
    save_result(
        "fig4_delay_transfer",
        "Fig. 4 — Delay Update with AV transfer\n\n" + fig4,
    )
    save_result(
        "fig5_immediate",
        "Fig. 5 — Immediate Update (primary-copy commit)\n\n" + fig5,
    )

    # Fig. 3: zero message rows (header + lifeline only).
    assert len(fig3.splitlines()) == 2

    # Fig. 4: exactly one request/grant exchange.
    assert fig4.count("av.request") == 2  # request + its reply row
    assert "imm." not in fig4

    # Fig. 5: the textbook order — all prepares before any commit.
    lines = fig5.splitlines()
    prepare_rows = [i for i, l in enumerate(lines) if "imm.prepare" in l]
    commit_rows = [i for i, l in enumerate(lines) if "imm.commit" in l]
    assert len(prepare_rows) == 4 and len(commit_rows) == 4
    assert max(prepare_rows) < min(commit_rows)
