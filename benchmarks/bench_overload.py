"""Calm-workload cost bound for the overload/degradation layer.

The overload machinery (admission check per update, breaker consult on
the 2PC path, pressure evaluation on protocol edges) must be essentially
free when the workload is gentle — the layer exists for surges, and a
calm system should not pay for it. Two assertions over the Fig. 6
proposal workload, run A/B with ``overload=None`` (the seed path) and
with the layer attached at default budgets:

1. **Accounting is untouched**: the paper's metric — update-tag
   (``av``/``imm``/``central``) message counts — is identical in both
   runs, and the calm run sheds nothing, demotes nothing, and never
   leaves NORMAL (the §4 walk never gets near a default budget).
2. **Wall time stays within 5%** (min-of-2 per side, with a small
   absolute floor so sub-millisecond jitter on a fast run cannot flake
   the job).
"""

import time

from conftest import once

from repro.cluster import build_paper_system
from repro.core import UPDATE_TAGS
from repro.core.overload import DegradationState, OverloadParams
from repro.experiments import make_paper_trace
from repro.workload import run_closed

#: relative bound on added wall time with the layer on, calm workload
MAX_OVERHEAD = 0.05
#: absolute slack (seconds) under which the relative bound is waived
ABS_FLOOR = 0.050

N_UPDATES = 1000
SEED = 0
N_ITEMS = 10


def _run(overload):
    """One Fig. 6 workload; returns (wall s, tag counts, controllers)."""
    system = build_paper_system(
        n_items=N_ITEMS, seed=SEED, overload=overload
    )
    trace = make_paper_trace(N_UPDATES, seed=SEED, n_items=N_ITEMS)
    t0 = time.perf_counter()
    run_closed(system, trace)
    elapsed = time.perf_counter() - t0
    counts = {tag: system.stats.by_tag[tag] for tag in sorted(UPDATE_TAGS)}
    controllers = [
        system.sites[name].accelerator.overload
        for name in sorted(system.sites)
    ]
    return elapsed, counts, controllers


def bench_overload_overhead(benchmark, save_result):
    base_time, base_counts, _ = once(benchmark, _run, None)
    base_time = min(base_time, _run(None)[0])

    on_time, on_counts, controllers = _run(OverloadParams())
    on_time = min(on_time, _run(OverloadParams())[0])

    sheds = sum(c.shed for c in controllers)
    demotions = sum(c.demotions for c in controllers)
    transitions = sum(len(c.transitions) for c in controllers)
    states = [c.state for c in controllers]

    added = on_time - base_time
    overhead = added / base_time
    report = "\n".join([
        f"workload             : fig6 proposal, n={N_UPDATES} updates",
        f"run time (seed path) : {base_time * 1e3:.1f} ms",
        f"run time (overload)  : {on_time * 1e3:.1f} ms",
        f"update-tag messages  : off={base_counts} on={on_counts}",
        f"layer activity       : sheds={sheds} demotions={demotions}"
        f" transitions={transitions}",
        f"added wall time      : {added * 1e3:.1f} ms"
        f" ({overhead:.3%}, bound {MAX_OVERHEAD:.0%}"
        f" or {ABS_FLOOR * 1e3:.0f} ms floor)",
    ])
    save_result("overload_overhead", report)

    assert base_counts == on_counts, report
    assert sheds == 0 and demotions == 0 and transitions == 0, report
    assert all(s is DegradationState.NORMAL for s in states), report
    assert overhead < MAX_OVERHEAD or added < ABS_FLOOR, report
