"""Fault-free cost bound for the robustness layer.

The reliability machinery (ack/retransmit sessions, AV grant leases,
the rejoin gate check in every update) must be essentially free when
nothing fails. Two assertions over the Fig. 6 proposal workload, run
A/B with ``reliability`` off (the seed path) and on:

1. **Accounting is untouched**: the paper's metric — update-tag
   (``av``/``imm``/``central``) message counts — is identical in both
   runs. Session control traffic rides other tags (``rel``, ``lease``)
   and the propagation acks double existing ``prop`` replies, none of
   which Fig. 6 counts.
2. **Wall time stays within 5%** (min-of-2 per side, with a small
   absolute floor so sub-millisecond jitter on a fast run cannot flake
   the job).
"""

import time

from conftest import once

from repro.cluster import build_paper_system
from repro.core import UPDATE_TAGS
from repro.experiments import make_paper_trace
from repro.net import ReliabilityParams
from repro.workload import run_closed

#: relative bound on added wall time with reliability on, fault-free
MAX_OVERHEAD = 0.05
#: absolute slack (seconds) under which the relative bound is waived
ABS_FLOOR = 0.050

N_UPDATES = 1000
SEED = 0
N_ITEMS = 10


def _run(reliability):
    """One Fig. 6 workload; returns (wall seconds, update-tag counts)."""
    system = build_paper_system(
        n_items=N_ITEMS, seed=SEED, reliability=reliability
    )
    trace = make_paper_trace(N_UPDATES, seed=SEED, n_items=N_ITEMS)
    t0 = time.perf_counter()
    run_closed(system, trace)
    elapsed = time.perf_counter() - t0
    counts = {tag: system.stats.by_tag[tag] for tag in sorted(UPDATE_TAGS)}
    return elapsed, counts


def bench_reliability_overhead(benchmark, save_result):
    base_time, base_counts = once(benchmark, _run, None)
    base_time = min(base_time, _run(None)[0])

    on_time, on_counts = _run(ReliabilityParams())
    on_time = min(on_time, _run(ReliabilityParams())[0])

    added = on_time - base_time
    overhead = added / base_time
    report = "\n".join([
        f"workload              : fig6 proposal, n={N_UPDATES} updates",
        f"run time (seed path)  : {base_time * 1e3:.1f} ms",
        f"run time (reliability): {on_time * 1e3:.1f} ms",
        f"update-tag messages   : off={base_counts} on={on_counts}",
        f"added wall time       : {added * 1e3:.1f} ms"
        f" ({overhead:.3%}, bound {MAX_OVERHEAD:.0%}"
        f" or {ABS_FLOOR * 1e3:.0f} ms floor)",
    ])
    save_result("reliability_overhead", report)

    assert base_counts == on_counts, report
    assert overhead < MAX_OVERHEAD or added < ABS_FLOOR, report
