"""Calibration sweeps.

The scan lost the paper's item count and Fig. 1's AV split, so two
inputs are calibrated rather than copied:

  * item count — swept here; ``n_items=10`` lands on the paper's ≈75%
    reduction (fewer items = more per-item pressure = more transfers);
  * AV fraction — swept here; the reduction is robust across the range,
    so the headline result does not hinge on the lost Fig. 1 numbers.
"""

from conftest import once

from repro.experiments import (
    SWEEP_HEADERS,
    sweep_av_fraction,
    sweep_items,
    sweep_rows,
)
from repro.metrics.report import text_table


def bench_sweep_items(benchmark, save_result):
    points = once(benchmark, sweep_items, item_counts=(5, 10, 20, 50, 100))
    save_result(
        "sweep_items",
        text_table(
            SWEEP_HEADERS, sweep_rows(points),
            title="Calibration — item count vs reduction",
        ),
    )
    # Overall trend: more items -> less per-item pressure -> larger
    # reduction (individual small-count cells are noisy).
    reductions = [p.reduction for p in points]
    assert reductions[-1] > reductions[0]
    assert max(reductions) == reductions[-1]
    # The calibrated point (10 items) sits in the paper's band.
    ten = next(p for p in points if p.value == 10)
    assert 0.55 <= ten.reduction <= 0.95


def bench_sweep_av_fraction(benchmark, save_result):
    points = once(benchmark, sweep_av_fraction, fractions=(0.25, 0.5, 0.75, 1.0))
    save_result(
        "sweep_av_fraction",
        text_table(
            SWEEP_HEADERS, sweep_rows(points),
            title="Robustness — initial AV fraction",
        ),
    )
    # The proposal wins at every fraction, and more initial headroom
    # distributed means fewer transfers needed later.
    reductions = [p.reduction for p in points]
    assert all(r > 0.2 for r in reductions), reductions
    assert all(b >= a for a, b in zip(reductions, reductions[1:])), reductions
