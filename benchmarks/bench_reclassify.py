"""Extension — adapting to changing requirements (the paper's abstract claim).

"The system can achieve the adaptation to unpredictable user
requirements": we make that concrete. An item starts non-regular
(every update pays the full Immediate protocol: 2(n-1)=4
correspondences), demand heats up, the maker reclassifies it to regular
(one 2(n-1)-correspondence management operation), and updates drop to
the near-free Delay path. The bench measures per-phase cost and the
breakeven point of the conversion.
"""

from conftest import once

from repro.cluster import build_paper_system
from repro.core.types import UPDATE_TAGS
from repro.metrics.report import text_table

PHASE_UPDATES = 60


def _run(seed=4):
    system = build_paper_system(
        n_items=1, initial_stock=500.0, regular_fraction=0.0, seed=seed
    )
    ITEM = "item0"
    rng = system.rngs.stream("bench.reclassify")
    costs = {}

    def phase(label):
        before = system.stats.correspondences_for_tags(UPDATE_TAGS)

        def driver(env):
            for i in range(PHASE_UPDATES):
                site = f"site{(i % 2) + 1}"
                result = yield system.update(site, ITEM, -float(rng.integers(1, 4)))
                assert result.committed
            # the maker restocks once per phase
            result = yield system.update("site0", ITEM, +200.0)
            assert result.committed

        proc = system.env.process(driver(system.env))
        system.run()
        assert proc.ok
        after = system.stats.correspondences_for_tags(UPDATE_TAGS)
        costs[label] = (after - before) / (PHASE_UPDATES + 1)

    phase("phase1: non-regular")

    cls_before = system.stats.by_tag["cls"]
    proc = system.maker.accelerator.make_regular(ITEM)
    system.run()
    assert proc.ok
    reclass_cost = (system.stats.by_tag["cls"] - cls_before) / 2

    phase("phase2: regular")
    system.check_invariants()

    proc = system.maker.accelerator.make_non_regular(ITEM)
    system.run()
    assert proc.ok

    phase("phase3: non-regular again")
    system.check_invariants()
    return costs, reclass_cost


def bench_reclassify(benchmark, save_result):
    costs, reclass_cost = once(benchmark, _run)

    saving = costs["phase1: non-regular"] - costs["phase2: regular"]
    breakeven = reclass_cost / saving if saving > 0 else float("inf")
    rows = [[label, round(cost, 3)] for label, cost in costs.items()]
    rows.append(["reclassification op", reclass_cost])
    save_result(
        "reclassify",
        text_table(
            ["phase", "correspondences / update"],
            rows,
            title="Extension — dynamic reclassification",
        )
        + f"\nbreakeven after {breakeven:.1f} updates at the new class",
    )

    # Immediate phase costs the textbook 2(n-1)=4 corr/update; the
    # regular phase is near-free; the conversion pays for itself within
    # a handful of updates.
    assert 3.5 <= costs["phase1: non-regular"] <= 4.5
    assert costs["phase2: regular"] < 1.0
    assert costs["phase3: non-regular again"] >= 3.5
    assert breakeven < 5
