"""Overhead bounds for the observability layer, census-style.

Two bounds, both using the same technique — count the hook invocations
a workload makes, micro-time one invocation, and assert ``calls ×
per-call cost`` stays under 5% of the workload's run time. This is
tighter than timing two runs A/B (which mostly measures OS noise at
these durations) because it isolates exactly the added work.

1. **Disabled instrumentation** (``bench_obs_disabled_overhead``): the
   span calls that stay in the protocol hot paths when
   ``config.observe`` is off all hit the null recorder; bound their
   total cost.
2. **Active profiler** (``bench_profiler_overhead``): with a
   :class:`~repro.obs.profile.Profiler` attached, every kernel event
   pays the step-timer + classification bookkeeping; bound that cost
   against the fig6-small workload (the CI ``profile-smoke`` shape).
"""

import time
import timeit

from conftest import once

from repro.cluster import build_paper_system
from repro.experiments import make_paper_trace
from repro.obs.hub import Observability
from repro.obs.spans import NULL_SPAN, NullSpanRecorder
from repro.workload import run_closed

#: the acceptance bound: disabled instrumentation must stay under this
MAX_OVERHEAD = 0.05

N_UPDATES = 1000
SEED = 0
N_ITEMS = 10


class CountingNullRecorder(NullSpanRecorder):
    """Null recorder that counts ``start`` calls (overhead census)."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def start(self, name, site, now, trace=None, parent=None, **attrs):
        self.calls += 1
        return NULL_SPAN


def _run_unobserved() -> float:
    """One unobserved Fig. 6 workload; returns wall-clock seconds."""
    system = build_paper_system(n_items=N_ITEMS, seed=SEED)
    trace = make_paper_trace(N_UPDATES, seed=SEED, n_items=N_ITEMS)
    t0 = time.perf_counter()
    run_closed(system, trace)
    return time.perf_counter() - t0


def _count_null_calls() -> int:
    """Replay the same workload counting every null-recorder call."""
    system = build_paper_system(n_items=N_ITEMS, seed=SEED)
    counting = Observability(enabled=False)
    counting.recorder = CountingNullRecorder()
    for site in system.sites.values():
        site.accelerator.obs = counting
    trace = make_paper_trace(N_UPDATES, seed=SEED, n_items=N_ITEMS)
    run_closed(system, trace)
    return counting.recorder.calls


def bench_obs_disabled_overhead(benchmark, save_result):
    run_seconds = min(once(benchmark, _run_unobserved), _run_unobserved())

    calls = _count_null_calls()
    assert calls > 0, "instrumented paths made no recorder calls?"

    null = NullSpanRecorder()
    reps = 100_000
    per_call = (
        timeit.timeit(lambda: null.start("x", "s", 0.0), number=reps) / reps
    )

    added = calls * per_call
    overhead = added / run_seconds
    report = "\n".join([
        f"workload             : fig6 proposal, n={N_UPDATES} updates",
        f"run time (unobserved): {run_seconds * 1e3:.1f} ms",
        f"null recorder calls  : {calls}",
        f"per-call cost        : {per_call * 1e9:.0f} ns",
        f"added cost           : {added * 1e6:.0f} us",
        f"estimated overhead   : {overhead:.3%} (bound {MAX_OVERHEAD:.0%})",
    ])
    save_result("obs_overhead", report)
    assert overhead < MAX_OVERHEAD, report


# -------------------------------------------------------------------- #
# active profiler overhead (the CI profile-smoke workload)
# -------------------------------------------------------------------- #

PROFILE_UPDATES = 200  # fig6-small profile shape (repro profile fig6 --small)


def _run_profile_workload() -> float:
    """One fig6-small workload without the profiler; wall seconds."""
    from repro.experiments import run_fig6

    t0 = time.perf_counter()
    run_fig6(n_updates=PROFILE_UPDATES, seed=SEED, n_items=N_ITEMS)
    return time.perf_counter() - t0


def _count_profiled_events() -> int:
    """Events the profiler attributes on the same workload."""
    from repro.experiments import run_fig6
    from repro.obs.profile import Profiler

    profiler = Profiler()
    with profiler:
        run_fig6(n_updates=PROFILE_UPDATES, seed=SEED, n_items=N_ITEMS)
    return profiler.events_attributed


def _per_event_profiler_cost() -> float:
    """Micro-time the profiler's per-event bookkeeping.

    Replicates exactly what the step wrapper and dispatch hook add per
    kernel event: a (cached) classification of the event's code object
    plus two clock reads and the stats update. The generator below plays
    the resumed process; its code object is cache-warm after the first
    call, matching the steady state of a real run.
    """
    from repro.obs.profile import Profiler

    profiler = Profiler()

    def _workload_gen():
        yield  # pragma: no cover - never driven, only classified

    generator = _workload_gen()

    class _Event:
        _generator = generator

    event = _Event()
    stats = profiler._stats
    perf = time.perf_counter

    def tick():
        current = profiler._classify(event, ())
        start = perf()
        elapsed = perf() - start
        stat = stats.get(current)
        if stat is None:
            stat = stats[current] = [0, 0.0]
        stat[0] += 1
        stat[1] += elapsed

    tick()  # warm the code-object cache
    reps = 100_000
    return timeit.timeit(tick, number=reps) / reps


def bench_profiler_overhead(benchmark, save_result):
    run_seconds = min(
        once(benchmark, _run_profile_workload), _run_profile_workload()
    )

    events = _count_profiled_events()
    assert events > 0, "profiler attributed no events?"

    per_event = _per_event_profiler_cost()
    added = events * per_event
    overhead = added / run_seconds
    report = "\n".join([
        f"workload             : fig6 proposal, n={PROFILE_UPDATES} updates",
        f"run time (unprofiled): {run_seconds * 1e3:.1f} ms",
        f"profiled events      : {events}",
        f"per-event cost       : {per_event * 1e9:.0f} ns",
        f"added cost           : {added * 1e6:.0f} us",
        f"estimated overhead   : {overhead:.3%} (bound {MAX_OVERHEAD:.0%})",
    ])
    save_result("profiler_overhead", report)
    assert overhead < MAX_OVERHEAD, report
