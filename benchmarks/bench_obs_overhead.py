"""Disabled-instrumentation overhead bound for the observability layer.

The span instrumentation stays in the protocol hot paths even when
``config.observe`` is off — every update makes a handful of calls into
the null recorder. This bench bounds that cost directly:

1. run the Fig. 6 proposal workload unobserved and time it;
2. count the null-recorder calls the same workload makes (by swapping a
   counting recorder into each accelerator — protocols fetch
   ``obs.recorder`` at call time, so the swap is faithful);
3. micro-time one null-recorder call;
4. assert ``calls × per-call cost`` is under 5% of the run time.

This is tighter than timing two runs A/B (which mostly measures OS
noise at these durations) because it isolates exactly the added work.
"""

import time
import timeit

from conftest import once

from repro.cluster import build_paper_system
from repro.experiments import make_paper_trace
from repro.obs.hub import Observability
from repro.obs.spans import NULL_SPAN, NullSpanRecorder
from repro.workload import run_closed

#: the acceptance bound: disabled instrumentation must stay under this
MAX_OVERHEAD = 0.05

N_UPDATES = 1000
SEED = 0
N_ITEMS = 10


class CountingNullRecorder(NullSpanRecorder):
    """Null recorder that counts ``start`` calls (overhead census)."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def start(self, name, site, now, trace=None, parent=None, **attrs):
        self.calls += 1
        return NULL_SPAN


def _run_unobserved() -> float:
    """One unobserved Fig. 6 workload; returns wall-clock seconds."""
    system = build_paper_system(n_items=N_ITEMS, seed=SEED)
    trace = make_paper_trace(N_UPDATES, seed=SEED, n_items=N_ITEMS)
    t0 = time.perf_counter()
    run_closed(system, trace)
    return time.perf_counter() - t0


def _count_null_calls() -> int:
    """Replay the same workload counting every null-recorder call."""
    system = build_paper_system(n_items=N_ITEMS, seed=SEED)
    counting = Observability(enabled=False)
    counting.recorder = CountingNullRecorder()
    for site in system.sites.values():
        site.accelerator.obs = counting
    trace = make_paper_trace(N_UPDATES, seed=SEED, n_items=N_ITEMS)
    run_closed(system, trace)
    return counting.recorder.calls


def bench_obs_disabled_overhead(benchmark, save_result):
    run_seconds = min(once(benchmark, _run_unobserved), _run_unobserved())

    calls = _count_null_calls()
    assert calls > 0, "instrumented paths made no recorder calls?"

    null = NullSpanRecorder()
    reps = 100_000
    per_call = (
        timeit.timeit(lambda: null.start("x", "s", 0.0), number=reps) / reps
    )

    added = calls * per_call
    overhead = added / run_seconds
    report = "\n".join([
        f"workload             : fig6 proposal, n={N_UPDATES} updates",
        f"run time (unobserved): {run_seconds * 1e3:.1f} ms",
        f"null recorder calls  : {calls}",
        f"per-call cost        : {per_call * 1e9:.0f} ns",
        f"added cost           : {added * 1e6:.0f} us",
        f"estimated overhead   : {overhead:.3%} (bound {MAX_OVERHEAD:.0%})",
    ])
    save_result("obs_overhead", report)
    assert overhead < MAX_OVERHEAD, report
