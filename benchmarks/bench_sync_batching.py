"""Extension — the propagation spectrum: eager vs batched vs none.

The paper's metric excludes replica reconciliation; this bench maps the
whole trade. Eager propagation pushes every committed delta (1
correspondence per committed update with 3 sites). Batched sync sends
one net delta per peer per dirty item per interval — the longer the
interval, the fewer the messages and the staler remote replicas get in
between. Staleness is measured as the mean absolute divergence of
replicas from the ground-truth ledger, sampled throughout the run.
"""

from conftest import once

from repro.cluster import build_paper_system
from repro.core import SyncScheduler
from repro.core.types import TAG_PROPAGATE
from repro.experiments import make_paper_trace
from repro.metrics.report import text_table
from repro.workload.driver import run_open, split_by_site

N_UPDATES = 600
INTERARRIVAL = 5.0


def _staleness(system):
    """Mean |replica - truth| per (site, item), normalised by initial."""
    ledger = system.collector.ledger
    total, n = 0.0, 0
    for item in ledger.items():
        truth = ledger.true_value(item)
        for site in system.sites.values():
            total += abs(site.store.value(item) - truth)
            n += 1
    return total / n


def _run(mode, seed=6):
    """mode: 'eager' | ('batch', interval) | 'none'."""
    propagate = mode == "eager"
    system = build_paper_system(n_items=10, seed=seed, propagate=propagate)
    schedulers = []
    if isinstance(mode, tuple):
        for site in system.sites.values():
            scheduler = SyncScheduler(site.accelerator, interval=mode[1])
            scheduler.start()
            schedulers.append(scheduler)

    trace = make_paper_trace(N_UPDATES, seed, n_items=10)
    per_site = split_by_site(trace)
    horizon = max(len(v) for v in per_site.values()) * INTERARRIVAL + 100.0

    # Sample staleness periodically during the run.
    samples = []

    def sampler(env):
        while env.now < horizon:
            yield env.timeout(50.0)
            samples.append(_staleness(system))

    system.env.process(sampler(system.env))
    results = run_open(
        system, per_site, interarrival=INTERARRIVAL, until=horizon
    )
    committed = sum(1 for r in results if r.committed)
    return {
        "prop_corr": system.stats.correspondences_for_tag(TAG_PROPAGATE),
        "per_commit": system.stats.correspondences_for_tag(TAG_PROPAGATE)
        / max(1, committed),
        "staleness": sum(samples) / len(samples) if samples else 0.0,
    }


def bench_sync_batching(benchmark, save_result):
    def run_all():
        return {
            "eager": _run("eager"),
            "batch-25": _run(("batch", 25.0)),
            "batch-100": _run(("batch", 100.0)),
            "none": _run("none"),
        }

    outcomes = once(benchmark, run_all)
    rows = [
        [label, o["prop_corr"], round(o["per_commit"], 3), round(o["staleness"], 2)]
        for label, o in outcomes.items()
    ]
    save_result(
        "sync_batching",
        text_table(
            ["mode", "prop corr", "corr / commit", "mean staleness"],
            rows,
            title="Extension — propagation spectrum (cost vs staleness)",
        ),
    )

    # Messages: eager > frequent batch > rare batch > none.
    assert (
        outcomes["eager"]["prop_corr"]
        > outcomes["batch-25"]["prop_corr"]
        > outcomes["batch-100"]["prop_corr"]
        > outcomes["none"]["prop_corr"]
        == 0.0
    )
    # Staleness runs the other way.
    assert (
        outcomes["eager"]["staleness"]
        <= outcomes["batch-25"]["staleness"]
        <= outcomes["batch-100"]["staleness"]
        <= outcomes["none"]["staleness"]
    )
    # Eager costs ~1 correspondence per committed update (1 push/peer).
    assert 0.8 <= outcomes["eager"]["per_commit"] <= 1.1
