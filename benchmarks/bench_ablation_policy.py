"""Ablation A — deciding policy (grant rule).

The paper adopts the SODA'99 rule (request the shortage, grant half of
holdings). This bench quantifies the choice: *exact* grants leave the
requester with zero slack and explode the transfer count, while
half/all-style grants amortise one transfer over many future updates.
"""

from conftest import once

from repro.experiments import ABLATION_HEADERS, ablate_grant_policy
from repro.metrics.report import text_table


def bench_ablation_policy(benchmark, save_result):
    rows = once(benchmark, ablate_grant_policy, n_updates=1000, seed=0)
    save_result(
        "ablation_policy",
        text_table(ABLATION_HEADERS, rows, title="Ablation A — grant policy"),
    )

    by_label = {row[0]: row for row in rows}
    soda = by_label["soda99-half"]
    exact = by_label["exact"]

    # The paper's rule needs several-fold fewer AV transfers than exact.
    assert soda[2] < exact[2] / 2, (soda, exact)
    # Everything still commits under the paper's rule.
    assert soda[4] >= 0.95
